//! Equivalence suite for the streaming drive path: feeding the pacer from
//! a concurrent DES producer or a spill capture must be *observably
//! indistinguishable* from the materialized `Vec<OpRecord>` path.
//!
//! The contract has two layers:
//!
//! * **Stream identity** — the channel source yields exactly the op
//!   sequence the materialized log holds, record for record, for any
//!   (spec, seed, scheduler, K) — property-tested below. This is the
//!   strong form: the pacer cannot tell which path produced its input.
//! * **Report equality** — at high speedup against an instant loopback
//!   with a queue wide enough to hold the whole stream, every op
//!   completes on both paths, so all `DriveReport` counters and the
//!   latency histogram total must be equal (wall-clock-dependent fields —
//!   `wall_micros`, latency quantiles, `peak_in_flight` — are the only
//!   legitimate divergence).
//!
//! Plus the early-termination satellite: a truncated capture drains what
//! it offered and keeps the conservation identity intact.

use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::sync::Arc;
use uswg_core::experiment::ModelConfig;
use uswg_core::{SchedulerBackend, WorkloadSpec};
use uswg_drive::{
    drive, drive_stream, ChannelSource, DriveConfig, DriveError, DriveReport, LoopbackConfig,
    LoopbackVfs, SourceError, SpillSource,
};
use uswg_usim::{SpillCodec, SpillSink};

fn nz(k: usize) -> NonZeroUsize {
    NonZeroUsize::new(k).expect("positive shard count")
}

/// A small multi-user workload under the given backend and shard count.
fn base_spec(
    users: usize,
    sessions: u32,
    backend: SchedulerBackend,
    shards: usize,
) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run.n_users = users;
    spec.run.sessions_per_user = sessions;
    spec.run.scheduler = Some(backend);
    spec.run.shards = (shards > 1).then(|| nz(shards));
    spec.fsc = spec
        .fsc
        .with_files_per_user(8)
        .unwrap()
        .with_shared_files(12)
        .unwrap();
    spec
}

/// An instant, fault-free loopback: completion is deterministic, so any
/// counter divergence between paths is a streaming bug, not target noise.
fn loopback() -> Arc<LoopbackVfs> {
    Arc::new(LoopbackVfs::new(LoopbackConfig {
        service_micros: 0,
        fail_ppm: 0,
        ..LoopbackConfig::default()
    }))
}

/// High compression, queue wide enough for the whole stream: nothing is
/// shed or expired, so the counters are exactly comparable.
fn wide_config(queue_cap: usize) -> DriveConfig {
    DriveConfig {
        speedup: 1e6,
        max_in_flight: 4,
        queue_cap: queue_cap.max(1),
        ..DriveConfig::default()
    }
}

/// Wraps a live DES producer as a drive source, surfacing its outcome
/// through the finish hook — the same glue the CLI uses.
fn des_source(spec: &WorkloadSpec, model: &ModelConfig, capacity: usize) -> ChannelSource {
    let (rx, handle) = spec.stream_des_ops(model, capacity).into_parts();
    ChannelSource::new(rx).on_finish(Box::new(move || match handle.join() {
        Ok(Ok(_stats)) => Ok(()),
        Ok(Err(e)) => Err(SourceError(format!("DES producer: {e}"))),
        Err(_) => Err(SourceError("DES producer thread panicked".into())),
    }))
}

fn assert_reports_equivalent(streamed: &DriveReport, materialized: &DriveReport, label: &str) {
    assert_eq!(streamed.offered, materialized.offered, "{label}: offered");
    assert_eq!(
        streamed.completed, materialized.completed,
        "{label}: completed"
    );
    assert_eq!(streamed.shed, materialized.shed, "{label}: shed");
    assert_eq!(streamed.expired, materialized.expired, "{label}: expired");
    assert_eq!(streamed.aborted, materialized.aborted, "{label}: aborted");
    assert_eq!(streamed.retries, materialized.retries, "{label}: retries");
    assert_eq!(streamed.target, materialized.target, "{label}: target");
    assert_eq!(
        streamed.max_in_flight, materialized.max_in_flight,
        "{label}: max_in_flight"
    );
    assert_eq!(
        streamed.latency.count(),
        materialized.latency.count(),
        "{label}: histogram total"
    );
}

/// The tentpole contract: for heap/calendar × shards {1, 2}, the streamed
/// drive report equals the Vec-fed report on every counter, and the run
/// really completes everything (the equality is not vacuous).
#[test]
fn streamed_des_drive_matches_materialized_counters() {
    let model = ModelConfig::default_nfs();
    for backend in [SchedulerBackend::Heap, SchedulerBackend::Calendar] {
        for shards in [1usize, 2] {
            let spec = base_spec(3, 2, backend, shards);
            let ops = spec.run_des(&model).unwrap().log.ops().to_vec();
            let total = ops.len();
            assert!(total > 0, "backend {backend}, K={shards}: empty workload");
            let config = wide_config(total);
            let materialized = drive(ops, loopback(), &config).unwrap();
            let streamed = drive_stream(
                des_source(&spec, &model, config.queue_cap),
                loopback(),
                &config,
            )
            .unwrap();
            let label = format!("backend {backend}, K={shards}");
            assert_reports_equivalent(&streamed, &materialized, &label);
            assert_eq!(streamed.completed, total as u64, "{label}: all complete");
            assert_eq!(streamed.shed + streamed.expired + streamed.aborted, 0);
        }
    }
}

/// Replaying a capture through `SpillSource` offers exactly the ops the
/// materialized log drive offers, for both codecs.
#[test]
fn spill_capture_drive_matches_materialized_counters() {
    let dir = std::env::temp_dir().join(format!("uswg-drive-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model = ModelConfig::default_nfs();
    let spec = base_spec(2, 2, SchedulerBackend::Heap, 1);
    let ops = spec.run_des(&model).unwrap().log.ops().to_vec();
    let config = wide_config(ops.len());
    let materialized = drive(ops, loopback(), &config).unwrap();
    for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
        let path = dir.join(format!("capture-{codec:?}.bin"));
        let (sink, _stats) = spec
            .run_des_with_sink(&model, SpillSink::create_with(&path, codec).unwrap())
            .unwrap();
        sink.finish().unwrap();
        let streamed =
            drive_stream(SpillSource::open(&path).unwrap(), loopback(), &config).unwrap();
        assert_reports_equivalent(&streamed, &materialized, &format!("codec {codec:?}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The early-termination satellite: a truncated capture yields a source
/// error, but everything offered before the cut still drains and the
/// conservation identity holds — the drive-side twin of `analyze
/// --salvage`.
#[test]
fn truncated_capture_drains_and_keeps_the_conservation_identity() {
    let dir = std::env::temp_dir().join(format!("uswg-drive-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model = ModelConfig::default_nfs();
    let spec = base_spec(2, 2, SchedulerBackend::Heap, 1);
    let path = dir.join("capture.bin");
    // Tiny frames, so a mid-file cut leaves many intact op frames ahead
    // of it (one default-sized frame would swallow the whole small run).
    let sink = SpillSink::with_options(
        std::io::BufWriter::new(std::fs::File::create(&path).unwrap()),
        SpillCodec::Compressed,
        64,
    )
    .unwrap();
    let (sink, _stats) = spec.run_des_with_sink(&model, sink).unwrap();
    sink.finish().unwrap();
    let full_ops = spec.run_des(&model).unwrap().log.ops().len() as u64;

    // Cut mid-file (the same fixture recipe the analyze salvage tests
    // use): the frame prefix is intact, the tail is gone.
    let bytes = std::fs::read(&path).unwrap();
    let cut = dir.join("cut.bin");
    std::fs::write(&cut, &bytes[..bytes.len() * 2 / 3]).unwrap();

    let config = wide_config(full_ops as usize);
    let err = drive_stream(SpillSource::open(&cut).unwrap(), loopback(), &config).unwrap_err();
    match err {
        DriveError::Source { message, report } => {
            assert!(message.contains("spill"), "{message}");
            assert!(report.offered > 0, "the intact prefix must replay");
            assert!(report.offered < full_ops, "the cut must lose some ops");
            assert_eq!(
                report.offered,
                report.completed + report.shed + report.expired + report.aborted,
                "conservation must hold over the ops actually offered"
            );
        }
        other => panic!("expected a source error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    // Each case runs two full DES runs; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Stream identity: for random small specs, the channel source yields
    /// exactly the op sequence the materialized log holds — same records,
    /// same order — so every downstream consumer is path-agnostic.
    #[test]
    fn channel_source_yields_the_materialized_op_sequence(
        users in 1usize..=3,
        sessions in 1u32..=2,
        seed in 0u64..1_000,
        shards in 1usize..=2,
        calendar in any::<bool>(),
    ) {
        let backend = if calendar {
            SchedulerBackend::Calendar
        } else {
            SchedulerBackend::Heap
        };
        let mut spec = base_spec(users, sessions, backend, shards);
        spec.run.seed = seed;
        let model = ModelConfig::default_local();
        let expected = spec.run_des(&model).unwrap().log.ops().to_vec();
        // A tiny channel forces real backpressure along the way.
        let (rx, handle) = spec.stream_des_ops(&model, 8).into_parts();
        let got: Vec<_> = rx.iter().collect();
        handle.join().expect("producer panicked").expect("producer failed");
        prop_assert_eq!(got, expected);
    }
}
