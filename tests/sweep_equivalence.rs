//! Property suite for the memory-flat sweep mode: `SweepMode::Summary`
//! must reproduce `SweepMode::FullLog` — the Table 5.3 statistics of every
//! sweep point — to 1e-9 relative, across random workload shapes, models,
//! seeds and both scheduler backends. This is the acceptance gate for
//! making the O(1)-memory path the default.

use proptest::prelude::*;
use uswg_core::experiment::{
    run_des_replicated, user_sweep_with, ModelConfig, Parallelism, SweepMode, SweepPoint,
};
use uswg_core::{SchedulerBackend, WorkloadSpec};

fn small_spec(sessions: u32, seed: u64, backend: SchedulerBackend) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run.sessions_per_user = sessions;
    spec.run.seed = seed;
    spec.run.scheduler = Some(backend);
    spec.fsc = spec
        .fsc
        .with_files_per_user(8)
        .unwrap()
        .with_shared_files(12)
        .unwrap();
    spec
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

#[track_caller]
fn assert_points_equivalent(full: &SweepPoint, summary: &SweepPoint) {
    // Counts, extrema, means and the per-byte metric are computed over the
    // identical record stream with the identical accumulation order: exact.
    assert_eq!(full.x, summary.x);
    assert_eq!(full.sessions, summary.sessions);
    assert_eq!(full.access_size.n, summary.access_size.n);
    assert_eq!(full.response.n, summary.response.n);
    assert_eq!(full.response_per_byte, summary.response_per_byte);
    assert_eq!(full.access_size.min, summary.access_size.min);
    assert_eq!(full.access_size.max, summary.access_size.max);
    assert_eq!(full.response.min, summary.response.min);
    assert_eq!(full.response.max, summary.response.max);
    assert!(rel(full.access_size.mean, summary.access_size.mean) < 1e-9);
    assert!(rel(full.response.mean, summary.response.mean) < 1e-9);
    // Standard deviations differ only in accumulation strategy (two-pass
    // vs one-pass sum of squares): 1e-9 relative is the contract.
    assert!(
        rel(full.access_size.std_dev, summary.access_size.std_dev) < 1e-9,
        "access std: {} vs {}",
        full.access_size.std_dev,
        summary.access_size.std_dev
    );
    assert!(
        rel(full.response.std_dev, summary.response.std_dev) < 1e-9,
        "response std: {} vs {}",
        full.response.std_dev,
        summary.response.std_dev
    );
}

const MODELS: [fn() -> ModelConfig; 3] = [
    ModelConfig::default_local,
    ModelConfig::default_nfs,
    ModelConfig::default_whole_file,
];

const BACKENDS: [SchedulerBackend; 2] = [SchedulerBackend::Heap, SchedulerBackend::Calendar];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Tentpole oracle: for any random spec shape, model, seed and
    /// scheduler backend, every point of a Summary-mode user sweep equals
    /// the FullLog-mode point to 1e-9.
    #[test]
    fn summary_sweep_points_match_full_log(
        sessions in 1u32..4,
        seed in 0u64..1_000_000,
        model_idx in 0usize..3,
        backend_idx in 0usize..2,
        max_users in 1usize..3,
    ) {
        let spec = small_spec(sessions, seed, BACKENDS[backend_idx]);
        let model = MODELS[model_idx]();
        let users: Vec<usize> = (1..=max_users).collect();
        let full = user_sweep_with(
            &spec, &model, users.iter().copied(), Parallelism::Serial, SweepMode::FullLog,
        ).unwrap();
        let summary = user_sweep_with(
            &spec, &model, users.iter().copied(), Parallelism::Serial, SweepMode::Summary,
        ).unwrap();
        prop_assert_eq!(full.len(), summary.len());
        for (f, s) in full.iter().zip(&summary) {
            assert_points_equivalent(f, s);
        }
    }

    /// Replication studies agree between modes too — per-replicate points
    /// and the merged (pooled) statistics, which in FullLog mode are
    /// rebuilt post hoc from the materialized logs.
    #[test]
    fn replication_modes_agree(
        seed in 0u64..100_000,
        model_idx in 0usize..3,
        backend_idx in 0usize..2,
    ) {
        let spec = small_spec(2, 1, BACKENDS[backend_idx]);
        let model = MODELS[model_idx]();
        let seeds = [seed, seed ^ 0xABCD, seed.wrapping_add(17)];
        let full = run_des_replicated(
            &spec, &model, seeds, Parallelism::Serial, SweepMode::FullLog,
        ).unwrap();
        let summary = run_des_replicated(
            &spec, &model, seeds, Parallelism::Serial, SweepMode::Summary,
        ).unwrap();
        prop_assert_eq!(full.replicates.len(), summary.replicates.len());
        for (f, s) in full.replicates.iter().zip(&summary.replicates) {
            prop_assert_eq!(f.seed, s.seed);
            assert_points_equivalent(&f.point, &s.point);
        }
        // Pooled reductions: both modes merge sinks over the identical
        // record streams, so they are bitwise-identical, not just close.
        prop_assert_eq!(full.pooled_access_size, summary.pooled_access_size);
        prop_assert_eq!(full.pooled_response, summary.pooled_response);
        prop_assert_eq!(full.mean_response_per_byte, summary.mean_response_per_byte);
    }
}

/// The work-stolen schedule must never change results: serial, 2-worker
/// and 4-worker sweeps are byte-identical point for point (non-proptest
/// because one run already covers the property deterministically).
///
/// On hosts with fewer cores than the requested workers the core cap
/// resolves these to the serial loop, so the comparison is vacuous there;
/// the in-crate `forced_pool_sweep_matches_serial` unit test bypasses the
/// cap and keeps the pooled path covered on every host.
#[test]
fn stolen_schedules_are_byte_identical() {
    let spec = small_spec(2, 42, SchedulerBackend::Heap);
    let model = ModelConfig::default_nfs();
    let users = [1usize, 2, 3, 4, 5];
    let serial = user_sweep_with(
        &spec,
        &model,
        users,
        Parallelism::Serial,
        SweepMode::Summary,
    )
    .unwrap();
    for workers in [2usize, 4, 8] {
        let stolen = user_sweep_with(
            &spec,
            &model,
            users,
            Parallelism::Threads(workers),
            SweepMode::Summary,
        )
        .unwrap();
        assert_eq!(serial, stolen, "workers = {workers}");
    }
}
