//! Equivalence suite for the **streamed** spill pipeline: the sharded
//! full-log path that writes per-shard spill streams and k-way merges them
//! frame-by-frame must be record-for-record identical to the in-memory
//! oracle (`ShardedDesDriver::run`, which materializes per-shard
//! `UsageLog`s and merges with `merge_shard_logs`) — under both scheduler
//! backends, several worker counts and shard counts, and through the
//! `WorkloadSpec` entry point end to end (run → spill file → read back).
//!
//! The shard-env construction bypasses `WorkloadSpec::run_des*` so both
//! halves of each comparison see exactly the same shard plan even when the
//! CI matrix sets `USWG_SHARDS` for the whole process.

use std::num::NonZeroUsize;
use uswg_core::experiment::ModelConfig;
use uswg_core::{
    read_spill_path, LogSink, ResourcePool, SchedulerBackend, ShardEnv, ShardPlan,
    ShardedDesDriver, SpillSink, SummarySink, UsageLog, WorkloadSpec,
};

fn nz(k: usize) -> NonZeroUsize {
    NonZeroUsize::new(k).expect("positive shard count")
}

/// A small multi-user workload (the full paper population — the streamed
/// merge must reproduce the oracle whatever the coupling, since both sides
/// shard identically).
fn base_spec(users: usize, sessions: u32) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run.n_users = users;
    spec.run.sessions_per_user = sessions;
    spec.run.scheduler = Some(SchedulerBackend::Heap);
    spec.fsc = spec
        .fsc
        .with_files_per_user(8)
        .unwrap()
        .with_shared_files(12)
        .unwrap();
    spec
}

/// One fresh environment per active shard, all built from the same seeded
/// spec — the same construction `WorkloadSpec::run_des_sharded` performs.
fn shard_envs(spec: &WorkloadSpec, model: &ModelConfig, active: usize) -> Vec<ShardEnv> {
    (0..active)
        .map(|_| {
            let (vfs, catalog) = spec.generate_fs().unwrap();
            let mut pool = ResourcePool::new();
            let model = model.build(&mut pool);
            ShardEnv {
                vfs,
                catalog,
                model,
                pool,
            }
        })
        .collect()
}

/// Tentpole pin: for every (backend × workers × K) cell, the streamed
/// spill merge produces byte-for-byte the log the materialize-then-merge
/// oracle produces — so replacing the in-memory path with the O(1)-memory
/// path can never change a result.
#[test]
fn streamed_merge_is_byte_identical_to_the_in_memory_oracle() {
    let model = ModelConfig::default_nfs();
    for backend in [SchedulerBackend::Heap, SchedulerBackend::Calendar] {
        let mut spec = base_spec(5, 2);
        spec.run.scheduler = Some(backend);
        for k in [1usize, 2, 3] {
            let plan = ShardPlan::new(spec.run.n_users, nz(k));
            let population = spec.compile().unwrap();
            let oracle = ShardedDesDriver::with_workers(1)
                .run(
                    &population,
                    &spec.run,
                    nz(k),
                    shard_envs(&spec, &model, plan.active_shards()),
                )
                .unwrap();
            for workers in [1usize, 4] {
                let (streamed, stats) = ShardedDesDriver::with_workers(workers)
                    .run_spill_streamed(
                        &population,
                        &spec.run,
                        nz(k),
                        shard_envs(&spec, &model, plan.active_shards()),
                        UsageLog::new(),
                    )
                    .unwrap();
                assert_eq!(
                    streamed.to_json().unwrap(),
                    oracle.log.to_json().unwrap(),
                    "backend {backend}, K={k}, workers={workers}: streamed merge must \
                     reproduce merge_shard_logs byte for byte"
                );
                assert_eq!(stats.events, oracle.events, "backend {backend}, K={k}");
                assert_eq!(stats.duration, oracle.duration, "backend {backend}, K={k}");
                assert_eq!(
                    stats.resources, oracle.resources,
                    "backend {backend}, K={k}"
                );
            }
        }
    }
}

/// The streamed path feeds any `LogSink` shape — here the `(summary,
/// spill)` tee `uswg run --spill` uses — and the spill file on disk reads
/// back as exactly the oracle's merged log.
#[test]
fn sharded_spill_file_reads_back_as_the_merged_log() {
    let dir = std::env::temp_dir().join(format!("uswg-spill-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model = ModelConfig::default_nfs();
    let spec = base_spec(4, 2);
    let population = spec.compile().unwrap();
    for k in [2usize, 4] {
        let plan = ShardPlan::new(spec.run.n_users, nz(k));
        let oracle = ShardedDesDriver::with_workers(1)
            .run(
                &population,
                &spec.run,
                nz(k),
                shard_envs(&spec, &model, plan.active_shards()),
            )
            .unwrap();
        let spill_path = dir.join(format!("k{k}.spill"));
        let sink = (SummarySink::new(), SpillSink::create(&spill_path).unwrap());
        let ((summary, spill), _) = ShardedDesDriver::with_workers(2)
            .run_spill_streamed(
                &population,
                &spec.run,
                nz(k),
                shard_envs(&spec, &model, plan.active_shards()),
                sink,
            )
            .unwrap();
        spill.finish().unwrap();
        let from_disk = read_spill_path(&spill_path).unwrap();
        assert_eq!(
            from_disk.to_json().unwrap(),
            oracle.log.to_json().unwrap(),
            "K={k}: spill file must hold the merged log"
        );
        assert_eq!(summary.ops, oracle.log.ops().len() as u64, "K={k}");
        assert_eq!(
            summary.sessions,
            oracle.log.sessions().len() as u64,
            "K={k}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// End to end through the spec entry point (the CLI's code path): a
/// sharded `run_des_with_sink` streams into the sink exactly what the
/// sharded `run_des` report materializes — ops first, then sessions, in
/// merged order — under whatever `USWG_SHARDS` matrix entry this process
/// runs in (both sides pin the same K explicitly).
#[test]
fn spec_level_streamed_sink_matches_run_des() {
    let model = ModelConfig::default_nfs();
    for k in [1usize, 3] {
        let mut spec = base_spec(3, 2);
        spec.run.shards = Some(nz(k));
        let report = spec.run_des(&model).unwrap();
        let (log, stats) = spec.run_des_with_sink(&model, UsageLog::new()).unwrap();
        assert_eq!(
            log.to_json().unwrap(),
            report.log.to_json().unwrap(),
            "K={k}: the streamed sink must observe the merged log's contents"
        );
        assert_eq!(stats.events, report.events, "K={k}");
    }
}

/// A sink that records arrival order, to pin the replay shape: every op
/// record strictly before every session record.
#[derive(Default)]
struct OrderProbe {
    ops: u64,
    sessions: u64,
    session_before_op: bool,
}

impl LogSink for OrderProbe {
    fn record_op(&mut self, _: &uswg_core::OpRecord) {
        if self.sessions > 0 {
            self.session_before_op = true;
        }
        self.ops += 1;
    }

    fn record_session(&mut self, _: &uswg_core::SessionRecord) {
        self.sessions += 1;
    }
}

#[test]
fn streamed_replay_emits_all_ops_then_all_sessions() {
    let model = ModelConfig::default_nfs();
    let mut spec = base_spec(3, 2);
    spec.run.shards = Some(nz(2));
    let (probe, _) = spec
        .run_des_with_sink(&model, OrderProbe::default())
        .unwrap();
    assert!(probe.ops > 0 && probe.sessions > 0);
    assert!(
        !probe.session_before_op,
        "the merged replay contract: ops first, then sessions"
    );
}
