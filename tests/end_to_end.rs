//! End-to-end integration: the full GDS → FSC → USIM pipeline through the
//! public `uswg-core` API.

use uswg_core::experiment::ModelConfig;
use uswg_core::{
    metrics, presets, FillPattern, OpKind, PopulationSpec, SchedulerBackend, Summary, SummarySink,
    WorkloadSpec,
};

fn small_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run.sessions_per_user = 4;
    spec.run.n_users = 2;
    spec.fsc = spec
        .fsc
        .with_files_per_user(15)
        .unwrap()
        .with_shared_files(25)
        .unwrap();
    spec
}

#[test]
fn pipeline_produces_consistent_catalog_and_log() {
    let spec = small_spec();
    let (vfs, catalog) = spec.generate_fs().unwrap();
    // Catalog entries exist in the file system with matching sizes.
    for file in catalog.files() {
        let md = vfs
            .resolve(&file.path)
            .unwrap_or_else(|e| panic!("{}: {e}", file.path));
        assert_eq!(md.number(), file.ino);
    }
    // The log's referenced inodes are real.
    let log = spec.run_direct().unwrap();
    assert!(!log.ops().is_empty());
    assert_eq!(log.sessions().len(), 8);
}

#[test]
fn generated_file_sizes_track_table_5_1() {
    let mut spec = small_spec();
    spec.fsc = presets::table_5_1_fs_spec()
        .unwrap()
        .with_files_per_user(400)
        .unwrap()
        .with_shared_files(400)
        .unwrap()
        .with_fill(FillPattern::Sparse);
    spec.run.n_users = 2;
    let (_, catalog) = spec.generate_fs().unwrap();
    let characterization = catalog.characterize();
    for &(category, mean_size, _pct) in presets::TABLE_5_1.iter() {
        if !category.preexisting() {
            continue; // NEW/TEMP appear only at runtime
        }
        let (count, measured_mean) = characterization[&category];
        assert!(count > 10, "{category}: only {count} files");
        let rel = (measured_mean - mean_size).abs() / mean_size;
        assert!(
            rel < 0.45,
            "{category}: measured {measured_mean:.0} vs spec {mean_size} ({rel:.2})"
        );
    }
}

#[test]
fn des_response_times_exceed_direct_zero_baseline() {
    let spec = small_spec();
    let report = spec.run_des(&ModelConfig::default_nfs()).unwrap();
    let (_, response) = metrics::data_op_summary(&report.log);
    assert!(response.n > 0);
    assert!(
        response.mean > 500.0,
        "NFS data ops are >0.5 ms, got {}",
        response.mean
    );
}

#[test]
fn usage_measures_have_paper_magnitudes() {
    // Table 5.2-driven sessions should produce access-per-byte near the
    // weighted accesses column and file counts in the tens.
    let mut spec = small_spec();
    spec.run.n_users = 4;
    spec.run.sessions_per_user = 50;
    spec.run.record_ops = false;
    spec.fsc = spec.fsc.with_fill(FillPattern::Sparse);
    let log = spec.run_direct().unwrap();
    let apb = metrics::session_series(&log, metrics::SessionMetric::AccessPerByte);
    let apb_summary = Summary::of(&apb);
    assert!(
        apb_summary.mean > 0.5 && apb_summary.mean < 6.0,
        "access-per-byte mean {:.2} outside the paper's 0-8 range",
        apb_summary.mean
    );
    let files = metrics::session_series(&log, metrics::SessionMetric::FilesReferenced);
    let files_summary = Summary::of(&files);
    assert!(
        files_summary.mean > 3.0 && files_summary.mean < 100.0,
        "files referenced mean {:.1} implausible",
        files_summary.mean
    );
}

#[test]
fn populations_mix_in_des_runs() {
    let mut spec = small_spec();
    spec.run.n_users = 5;
    spec.population = presets::heavy_light_population(0.8).unwrap();
    let report = spec.run_des(&ModelConfig::default_local()).unwrap();
    let types: std::collections::HashSet<usize> =
        report.log.sessions().iter().map(|s| s.user_type).collect();
    assert_eq!(types.len(), 2, "both user types must appear");
    // 4 heavy users, 1 light user.
    let heavy_users: std::collections::HashSet<usize> = report
        .log
        .sessions()
        .iter()
        .filter(|s| s.user_type == 0)
        .map(|s| s.user)
        .collect();
    assert_eq!(heavy_users.len(), 4);
}

#[test]
fn temp_usage_class_cleans_up_in_full_pipeline() {
    let mut spec = small_spec();
    spec.population = PopulationSpec::single(presets::heavy_user()).unwrap();
    spec.run.sessions_per_user = 6;
    let (mut vfs, catalog) = spec.generate_fs().unwrap();
    let inodes_before = vfs.statfs().used_inodes;
    let population = spec.compile().unwrap();
    let log = uswg_core::DirectDriver::new()
        .run(&mut vfs, &catalog, &population, &spec.run)
        .unwrap();
    let creates = log.ops().iter().filter(|o| o.op == OpKind::Create).count();
    let unlinks = log.ops().iter().filter(|o| o.op == OpKind::Unlink).count();
    assert!(creates >= unlinks);
    // NEW files persist, TEMP files do not; inode growth equals the
    // difference.
    let growth = vfs.statfs().used_inodes - inodes_before;
    assert_eq!(growth, (creates - unlinks) as u64);
}

#[test]
fn run_survives_a_nearly_full_file_system() {
    // Failure injection: a device with almost no block capacity. Writes hit
    // ENOSPC mid-session; the session engine degrades tasks instead of
    // failing the run, and the log stays self-consistent.
    let mut spec = small_spec();
    spec.vfs.max_blocks = 220; // Table 5.1 population barely fits
    spec.vfs.block_size = 8_192;
    spec.fsc = spec.fsc.with_fill(FillPattern::Sparse);
    let log = spec.run_direct().expect("run must degrade, not fail");
    assert_eq!(log.sessions().len(), 8);
    let session_ops: u64 = log.sessions().iter().map(|s| s.ops).sum();
    assert_eq!(session_ops as usize, log.ops().len());
    // Some writing was attempted; the device cap keeps totals bounded.
    let written: u64 = log.sessions().iter().map(|s| s.bytes_written).sum();
    assert!(written <= 220 * 8_192 * (1 + log.sessions().len() as u64));
}

#[test]
fn run_survives_inode_exhaustion() {
    let mut spec = small_spec();
    spec.vfs.max_inodes = 130; // just above the generated population
    spec.fsc = spec.fsc.with_fill(FillPattern::Sparse);
    let log = spec.run_direct().expect("inode exhaustion must degrade");
    assert_eq!(log.sessions().len(), 8);
}

#[test]
fn spec_json_survives_and_runs() {
    let spec = small_spec();
    let json = spec.to_json().unwrap();
    let parsed = WorkloadSpec::from_json(&json).unwrap();
    let log = parsed.run_direct().unwrap();
    assert_eq!(log.sessions().len(), 8);
}

#[test]
fn des_usage_log_is_byte_identical_across_scheduler_backends() {
    // The tentpole's end-to-end oracle: same seed + same WorkloadSpec must
    // serialize to byte-identical UsageLogs whether the DES hot loop runs
    // on the binary heap or the calendar queue.
    let run = |backend| {
        let mut spec = small_spec();
        spec.run.scheduler = Some(backend);
        let report = spec.run_des(&ModelConfig::default_nfs()).unwrap();
        (
            report.events,
            report.duration,
            report.log.to_json().unwrap(),
        )
    };
    let (heap_events, heap_duration, heap_json) = run(SchedulerBackend::Heap);
    let (cal_events, cal_duration, cal_json) = run(SchedulerBackend::Calendar);
    assert_eq!(heap_events, cal_events, "event counts diverged");
    assert_eq!(heap_duration, cal_duration, "simulated clocks diverged");
    assert!(heap_json.contains("\"ops\""));
    assert_eq!(heap_json, cal_json, "serialized usage logs diverged");
    // (The direct driver is left out on purpose: it stamps each record with
    // wall-clock `Instant` timings, so two direct runs are never
    // byte-identical — with or without a scheduler.)
}

#[test]
fn summary_sink_matches_post_hoc_aggregation() {
    // Table 5.3 measures access-size and response-time means/std-devs of
    // the heavy-I/O population against NFS. The streaming SummarySink must
    // reproduce, to within 1e-9 relative, what post-hoc aggregation of a
    // fully materialized UsageLog computes for the same run.
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run.n_users = 3;
    spec.run.sessions_per_user = 8;
    spec.fsc = spec
        .fsc
        .with_files_per_user(15)
        .unwrap()
        .with_shared_files(25)
        .unwrap();
    let model = ModelConfig::default_nfs();

    // Collected path: the standard run with a materialized log.
    let report = spec.run_des(&model).unwrap();
    let (access_size, response) = metrics::data_op_summary(&report.log);

    // Streaming path: identical pipeline, SummarySink instead of a log.
    // Through the spec (not the raw driver), so both paths run the same
    // simulation even when a USWG_SHARDS matrix entry shards them.
    let (sink, stats) = spec.run_des_with_sink(&model, SummarySink::new()).unwrap();

    assert_eq!(stats.events, report.events);
    assert_eq!(sink.data_ops as usize, access_size.n);
    let close = |streamed: f64, post_hoc: f64, what: &str| {
        let tol = 1e-9 * post_hoc.abs().max(1.0);
        assert!(
            (streamed - post_hoc).abs() <= tol,
            "{what}: streamed {streamed} vs post-hoc {post_hoc}"
        );
    };
    close(
        sink.mean_access_size(),
        access_size.mean,
        "access-size mean",
    );
    close(
        sink.std_dev_access_size(),
        access_size.std_dev,
        "access-size std dev",
    );
    close(sink.mean_response(), response.mean, "response mean");
    close(
        sink.std_dev_response(),
        response.std_dev,
        "response std dev",
    );
    close(
        sink.response_per_byte(),
        metrics::response_time_per_byte(&report.log),
        "response per byte",
    );
}

#[test]
fn usage_log_json_round_trip_at_scale() {
    let spec = small_spec();
    let log = spec.run_direct().unwrap();
    let json = log.to_json().unwrap();
    let back = uswg_core::UsageLog::from_json(&json).unwrap();
    assert_eq!(back.ops().len(), log.ops().len());
    let apb_a = metrics::response_time_per_byte(&log);
    let apb_b = metrics::response_time_per_byte(&back);
    assert!((apb_a - apb_b).abs() < 1e-12);
}
