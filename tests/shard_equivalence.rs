//! Determinism-and-equivalence suite for the sharded DES driver: the tests
//! that pin down exactly **what sharding preserves**.
//!
//! * **Exactly**: a one-shard run is byte-identical (serialized
//!   [`UsageLog`]) to the unsharded driver; for any K the merged log is a
//!   pure function of (spec, seed, K) — independent of worker count and
//!   scheduler backend; and for workloads whose cross-user coupling is
//!   read-only (shared files never written, device never full) every
//!   statistic derived from the operation streams alone — counts, access
//!   sizes, bytes, sessions — matches the unsharded run to 1e-9.
//! * **Statistically**: response times. Each shard owns a private copy of
//!   the timing model's resources, so K > 1 queues users only behind their
//!   own shard — the documented approximation of one globally contended
//!   model. `shards: None` (or K = 1) remains the exact path.
//!
//! The unsharded oracle is always the raw [`DesDriver`], bypassing
//! `WorkloadSpec::run_des`, so the baseline stays exact even when the CI
//! matrix sets `USWG_SHARDS` for the whole process.

use proptest::prelude::*;
use std::num::NonZeroUsize;
use uswg_core::experiment::ModelConfig;
use uswg_core::{
    merge_shard_logs, shard_model_seed, DesDriver, DesReport, OpRecord, Owner, PopulationSpec,
    ResourcePool, SchedulerBackend, ShardPlan, SummarySink, UsageClass, UsageLog, WorkloadSpec,
};

fn nz(k: usize) -> NonZeroUsize {
    NonZeroUsize::new(k).expect("positive shard count")
}

/// A small but multi-user workload. `shared_read_only` strips the
/// `REG/OTHER/RD-WRT` category from the paper's heavy user: shared
/// read-write files couple users through the file system itself (one
/// user's write moves another user's EOF), which is exactly the coupling
/// sharding severs — so the op-stream-exactness tests run without it,
/// while byte-identity tests keep the full paper workload.
fn base_spec(users: usize, sessions: u32, shared_read_only: bool) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run.n_users = users;
    spec.run.sessions_per_user = sessions;
    spec.run.scheduler = Some(SchedulerBackend::Heap);
    spec.fsc = spec
        .fsc
        .with_files_per_user(8)
        .unwrap()
        .with_shared_files(12)
        .unwrap();
    if shared_read_only {
        let mut heavy = spec.population.types()[0].0.clone();
        heavy.categories.retain(|usage| {
            !(usage.category.owner == Owner::Other && usage.category.usage == UsageClass::ReadWrite)
        });
        spec.population = PopulationSpec::single(heavy).unwrap();
    }
    spec
}

/// The unsharded oracle: one DES instance, one globally contended model.
fn unsharded_report(spec: &WorkloadSpec, model: &ModelConfig) -> DesReport {
    let (vfs, catalog) = spec.generate_fs().unwrap();
    let population = spec.compile().unwrap();
    let mut pool = ResourcePool::new();
    let m = model.build(&mut pool);
    DesDriver::new()
        .run(vfs, catalog, &population, m, pool, &spec.run)
        .unwrap()
}

/// The unsharded oracle's streaming summary (identical record stream to
/// [`unsharded_report`], just folded instead of materialized).
fn unsharded_summary(spec: &WorkloadSpec, model: &ModelConfig) -> SummarySink {
    let (vfs, catalog) = spec.generate_fs().unwrap();
    let population = spec.compile().unwrap();
    let mut pool = ResourcePool::new();
    let m = model.build(&mut pool);
    let (sink, _) = DesDriver::new()
        .run_with_sink(
            vfs,
            catalog,
            &population,
            m,
            pool,
            &spec.run,
            SummarySink::new(),
        )
        .unwrap();
    sink
}

fn sharded_report(spec: &WorkloadSpec, model: &ModelConfig, k: usize) -> DesReport {
    let mut s = spec.clone();
    s.run.shards = Some(nz(k));
    s.run_des(model).unwrap()
}

fn sharded_summary(spec: &WorkloadSpec, model: &ModelConfig, k: usize) -> SummarySink {
    let mut s = spec.clone();
    s.run.shards = Some(nz(k));
    s.run_des_summary(model).unwrap().0
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// K = 1 through the sharded driver replays the unsharded simulation byte
/// for byte: same serialized log, same resource statistics, same event
/// count and duration — under both scheduler backends and with the full
/// paper workload (shared read-write files included; one shard holds the
/// whole population, so no coupling is severed).
#[test]
fn one_shard_is_byte_identical_to_the_unsharded_driver() {
    for backend in [SchedulerBackend::Heap, SchedulerBackend::Calendar] {
        let mut spec = base_spec(3, 2, false);
        spec.run.scheduler = Some(backend);
        let model = ModelConfig::default_nfs();
        let exact = unsharded_report(&spec, &model);
        let sharded = sharded_report(&spec, &model, 1);
        assert_eq!(
            exact.log.to_json().unwrap(),
            sharded.log.to_json().unwrap(),
            "backend {backend}: K=1 must replay the unsharded log byte for byte"
        );
        assert_eq!(exact.resources, sharded.resources, "backend {backend}");
        assert_eq!(exact.events, sharded.events, "backend {backend}");
        assert_eq!(exact.duration, sharded.duration, "backend {backend}");
        // The streaming summary path agrees bit for bit too (merge of a
        // single sink into an empty one is the identity).
        assert_eq!(
            unsharded_summary(&spec, &model),
            sharded_summary(&spec, &model, 1),
            "backend {backend}"
        );
    }
}

/// For K in {2, 4, 7}: every statistic the merged summary derives from the
/// operation streams alone matches the unsharded run to 1e-9 (counts and
/// integer tallies exactly), because per-user streams are seeded by global
/// id and the workload's cross-user coupling is read-only. Response-time
/// statistics are the documented approximation: asserted close (same
/// workload, same service demands, less queueing), not equal.
#[test]
fn merged_summaries_match_unsharded_op_stream_stats() {
    let spec = base_spec(8, 2, true);
    let model = ModelConfig::default_nfs();
    let exact = unsharded_summary(&spec, &model);
    for k in [2usize, 4, 7] {
        let merged = sharded_summary(&spec, &model, k);
        // Integer tallies of the op streams: exact.
        assert_eq!(merged.ops, exact.ops, "K={k}");
        assert_eq!(merged.data_ops, exact.data_ops, "K={k}");
        assert_eq!(merged.data_bytes, exact.data_bytes, "K={k}");
        assert_eq!(merged.sessions, exact.sessions, "K={k}");
        assert_eq!(
            merged.session_bytes_accessed, exact.session_bytes_accessed,
            "K={k}"
        );
        // Float moments of access sizes: 1e-9 (merge order only).
        assert!(
            rel(merged.mean_access_size(), exact.mean_access_size()) < 1e-9,
            "K={k}: access mean {} vs {}",
            merged.mean_access_size(),
            exact.mean_access_size()
        );
        assert!(
            rel(merged.std_dev_access_size(), exact.std_dev_access_size()) < 1e-9,
            "K={k}"
        );
        assert_eq!(merged.min_access_size(), exact.min_access_size(), "K={k}");
        assert_eq!(merged.max_access_size(), exact.max_access_size(), "K={k}");
        // Response times: statistically preserved only. Sharding removes
        // cross-shard queueing, so the merged mean must stay in the same
        // regime (between the service floor and the fully contended mean)
        // — a loose, deterministic sanity band, not an equality.
        assert!(merged.mean_response() > 0.0, "K={k}");
        assert!(
            merged.mean_response() <= exact.mean_response() * 1.05,
            "K={k}: sharding must not add contention ({} vs {})",
            merged.mean_response(),
            exact.mean_response()
        );
        assert!(
            rel(merged.mean_response(), exact.mean_response()) < 0.5,
            "K={k}: response regime shifted: {} vs {}",
            merged.mean_response(),
            exact.mean_response()
        );
    }
}

/// The merged full log is a pure function of (spec, seed, K): worker count
/// and scheduler backend never change a byte. This is the "global sequence
/// rewrite" guarantee — shard results merge in shard-index order by
/// completion time, regardless of which worker finished first.
#[test]
fn merged_log_is_worker_and_backend_invariant() {
    let model = ModelConfig::default_nfs();
    let reference = {
        let spec = base_spec(6, 2, false);
        sharded_report(&spec, &model, 4).log.to_json().unwrap()
    };
    for backend in [SchedulerBackend::Heap, SchedulerBackend::Calendar] {
        for workers in [1usize, 2, 3, 8] {
            let mut spec = base_spec(6, 2, false);
            spec.run.scheduler = Some(backend);
            let population = spec.compile().unwrap();
            let plan = ShardPlan::new(spec.run.n_users, nz(4));
            let envs: Vec<uswg_core::ShardEnv> = (0..plan.active_shards())
                .map(|_| {
                    let (vfs, catalog) = spec.generate_fs().unwrap();
                    let mut pool = ResourcePool::new();
                    let m = model.build(&mut pool);
                    uswg_core::ShardEnv {
                        vfs,
                        catalog,
                        model: m,
                        pool,
                    }
                })
                .collect();
            let report = uswg_core::ShardedDesDriver::with_workers(workers)
                .run(&population, &spec.run, nz(4), envs)
                .unwrap();
            assert_eq!(
                report.log.to_json().unwrap(),
                reference,
                "workers={workers} backend={backend}"
            );
        }
    }
}

/// Full-log and summary retention of the *same sharded run* agree: folding
/// the merged log into a sink reproduces the merged per-shard sinks —
/// counts and integer tallies exactly, float moments to 1e-9 (the two
/// paths accumulate in different orders).
#[test]
fn sharded_full_log_and_summary_modes_agree() {
    let spec = base_spec(5, 2, false);
    let model = ModelConfig::default_nfs();
    for k in [2usize, 3] {
        let report = sharded_report(&spec, &model, k);
        let mut replayed = SummarySink::new();
        for op in report.log.ops() {
            uswg_core::LogSink::record_op(&mut replayed, op);
        }
        for session in report.log.sessions() {
            uswg_core::LogSink::record_session(&mut replayed, session);
        }
        let merged = sharded_summary(&spec, &model, k);
        assert_eq!(replayed.ops, merged.ops, "K={k}");
        assert_eq!(replayed.data_ops, merged.data_ops, "K={k}");
        assert_eq!(replayed.data_bytes, merged.data_bytes, "K={k}");
        assert_eq!(replayed.total_response, merged.total_response, "K={k}");
        assert_eq!(replayed.sessions, merged.sessions, "K={k}");
        assert!(rel(replayed.mean_access_size(), merged.mean_access_size()) < 1e-9);
        assert!(rel(replayed.std_dev_response(), merged.std_dev_response()) < 1e-9);
        assert_eq!(replayed.min_response(), merged.min_response(), "K={k}");
        assert_eq!(replayed.max_response(), merged.max_response(), "K={k}");
    }
}

/// Sharded runs nest under the existing experiment harness: a sweep with
/// `shards` pinned produces the identical points under serial and stolen
/// schedules (the outer pool) and under both retention modes' count
/// fields — sharding composes with, rather than disturbs, PR 3's
/// parallelism contracts.
#[test]
fn sharded_sweeps_are_schedule_invariant() {
    use uswg_core::experiment::{user_sweep_with, Parallelism, SweepMode};
    let mut spec = base_spec(2, 2, false);
    spec.run.shards = Some(nz(2));
    let model = ModelConfig::default_nfs();
    let serial = user_sweep_with(
        &spec,
        &model,
        [1usize, 2, 3],
        Parallelism::Serial,
        SweepMode::Summary,
    )
    .unwrap();
    let stolen = user_sweep_with(
        &spec,
        &model,
        [1usize, 2, 3],
        Parallelism::Threads(3),
        SweepMode::Summary,
    )
    .unwrap();
    assert_eq!(serial, stolen);
}

fn op(at: u64, response: u64, user: usize) -> OpRecord {
    OpRecord {
        at,
        user,
        session: 0,
        op: uswg_core::OpKind::Read,
        ino: 1,
        bytes: 8,
        file_size: 64,
        response,
        category: uswg_core::FileCategory::REG_USER_RDONLY,
        retries: 0,
        aborted: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partitioning: every user lands in exactly one shard, the populated
    /// shards are exactly `0..active_shards()`, and membership is a pure
    /// function of the user id and K.
    #[test]
    fn every_user_lands_in_exactly_one_shard(n in 1usize..200, k in 1usize..16) {
        let plan = ShardPlan::new(n, nz(k));
        let mut owner = vec![usize::MAX; n];
        for s in 0..plan.shards() {
            for u in plan.members(s) {
                prop_assert_eq!(owner[u], usize::MAX, "user {} in two shards", u);
                owner[u] = s;
                prop_assert_eq!(plan.shard_of(u), s);
            }
            prop_assert_eq!(plan.members(s).count(), plan.shard_len(s));
        }
        prop_assert!(owner.iter().all(|&s| s != usize::MAX));
        prop_assert!(owner.iter().all(|&s| s < plan.active_shards()));
        // Stability under K: a bigger population never reassigns a user.
        let bigger = ShardPlan::new(n + 7, nz(k));
        for u in 0..n {
            prop_assert_eq!(plan.shard_of(u), bigger.shard_of(u));
        }
    }

    /// Per-shard model seeds are distinct across shards, stable (a pure
    /// function of root seed and shard index — K never enters), and shard
    /// 0 replays the unsharded stream.
    #[test]
    fn shard_seeds_distinct_and_stable(seed in any::<u64>(), a in 0usize..10_000, b in 0usize..10_000) {
        prop_assert_eq!(shard_model_seed(seed, a), shard_model_seed(seed, a));
        if a != b {
            prop_assert_ne!(shard_model_seed(seed, a), shard_model_seed(seed, b));
        }
    }

    /// The k-way merge preserves global `(completion time, shard)` order
    /// and keeps each shard's records as a subsequence — for arbitrary
    /// sorted shard streams, not just ones a simulation happened to emit.
    #[test]
    fn merge_preserves_global_time_order(
        streams in prop::collection::vec(
            prop::collection::vec((0u64..1_000, 0u64..50), 0..20),
            1..6,
        ),
    ) {
        let logs: Vec<UsageLog> = streams
            .iter()
            .enumerate()
            .map(|(shard, pairs)| {
                let mut sorted: Vec<(u64, u64)> = pairs.clone();
                // Shard streams are sorted by completion time, as the DES
                // emits them.
                sorted.sort_by_key(|&(at, response)| at + response);
                let mut log = UsageLog::new();
                for &(at, response) in &sorted {
                    log.push_op(op(at, response, shard));
                }
                log
            })
            .collect();
        let expected_total: usize = logs.iter().map(|l| l.ops().len()).sum();
        let per_shard: Vec<Vec<OpRecord>> =
            logs.iter().map(|l| l.ops().to_vec()).collect();
        let merged = merge_shard_logs(logs);
        prop_assert_eq!(merged.ops().len(), expected_total);
        // Global order: nondecreasing completion time.
        let completion =
            |o: &OpRecord| o.at + o.response;
        for w in merged.ops().windows(2) {
            prop_assert!(completion(&w[0]) <= completion(&w[1]));
        }
        // Within-shard order survives: restricting the merged stream to
        // one shard's records (tagged via `user`) yields that shard's
        // stream verbatim.
        for (shard, original) in per_shard.iter().enumerate() {
            let restricted: Vec<OpRecord> = merged
                .ops()
                .iter()
                .filter(|o| o.user == shard)
                .copied()
                .collect();
            prop_assert_eq!(&restricted, original);
        }
    }
}

proptest! {
    // Real simulations are expensive; a handful of random shapes suffices
    // on top of the deterministic tests above.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Across random small specs: sharded runs are rerun-deterministic,
    /// preserve the session count exactly, and preserve the op-stream
    /// tallies of the read-only-coupled workload against the unsharded
    /// oracle for whatever K the generator picked.
    #[test]
    fn random_specs_preserve_op_streams(
        users in 1usize..6,
        k in 1usize..5,
        seed in 0u64..100_000,
    ) {
        let mut spec = base_spec(users, 1, true);
        spec.run.seed = seed;
        let model = ModelConfig::default_local();
        let exact = unsharded_summary(&spec, &model);
        let merged = sharded_summary(&spec, &model, k);
        prop_assert_eq!(merged.ops, exact.ops);
        prop_assert_eq!(merged.data_ops, exact.data_ops);
        prop_assert_eq!(merged.data_bytes, exact.data_bytes);
        prop_assert_eq!(merged.sessions, exact.sessions);
        // Determinism: the identical sharded run replays bit for bit.
        prop_assert_eq!(merged, sharded_summary(&spec, &model, k));
        let log_a = sharded_report(&spec, &model, k).log.to_json().unwrap();
        let log_b = sharded_report(&spec, &model, k).log.to_json().unwrap();
        prop_assert_eq!(log_a, log_b);
    }
}
