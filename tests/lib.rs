//! Integration-test package for the `uswg` workspace.
//!
//! The library target is intentionally empty; the test targets
//! (`end_to_end`, `experiments`, `paper_properties`) exercise the public
//! API of `uswg-core` across every crate boundary.
