//! The fit round-trip oracle: `run --spill` a known spec, `fit` the
//! capture into a synthesized spec, run the synthesized spec, and pin
//! that the regenerated workload statistically matches the original —
//! op mix, access sizes, op interarrivals and session lengths all within
//! KS / fraction acceptance bands. This is the paper's whole premise
//! (measure a system, characterize the users, regenerate an equivalent
//! workload), closed as an executable loop.
//!
//! The matrix covers both scheduler backends, unsharded and sharded
//! captures (K ∈ {1, 2}), both spill codecs, and a footer-less capture
//! (no index — the fit collector's streamed fallback), across two
//! distinct source specs. Everything is seeded, so the acceptance bands
//! are deterministic gates, not flaky tolerances.

use std::num::NonZeroUsize;
use std::path::Path;
use uswg_core::experiment::ModelConfig;
use uswg_core::{
    collect_fit, gof, presets, synthesize_spec, FitObservation, OpKind, PopulationSpec,
    ScanOptions, SchedulerBackend, SpillCodec, SpillSink, SynthesisOptions, WorkloadSpec,
};

/// Source spec 1: the paper-default heavy-user population, shrunk to a
/// quick multi-user run.
fn paper_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run.n_users = 4;
    spec.run.sessions_per_user = 6;
    spec.fsc = spec
        .fsc
        .with_files_per_user(8)
        .unwrap()
        .with_shared_files(12)
        .unwrap();
    spec
}

/// Source spec 2: a genuinely different workload — a heavy/light mix with
/// different think times and access sizes, and a different seed.
fn mixed_spec() -> WorkloadSpec {
    let mut spec = paper_spec();
    spec.population = presets::heavy_light_population(0.5).unwrap();
    spec.run.seed = 0xFEED_F00D;
    spec
}

/// A distinct population to prove `fit` recovers more than one type.
fn two_type_spec() -> WorkloadSpec {
    let mut spec = paper_spec();
    spec.population = PopulationSpec::new(vec![
        (presets::heavy_user(), 0.5),
        (presets::user_type_with("light", 12_000_000.0, 512.0), 0.5),
    ])
    .unwrap();
    spec.run.n_users = 6;
    spec
}

fn unique_dir(label: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "uswg-fit-rt-{label}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `spec` under the local-disk model, spilling the full log to
/// `path` with the requested codec (and optionally without the index
/// footer, to force the fit collector's streamed fallback).
fn capture(spec: &WorkloadSpec, path: &Path, codec: SpillCodec, indexed: bool) {
    let sink = SpillSink::create_with(path, codec).unwrap();
    let sink = if indexed { sink } else { sink.without_index() };
    let (sink, _stats) = spec
        .run_des_with_sink(&ModelConfig::default_local(), sink)
        .unwrap();
    sink.finish().unwrap();
}

fn observe(path: &Path) -> FitObservation {
    collect_fit(path, &ScanOptions::default())
        .unwrap()
        .observation
}

/// The capture-wide op-mix fractions, aggregated over user types.
fn op_mix(obs: &FitObservation) -> Vec<f64> {
    let mut counts = vec![0u64; OpKind::ALL.len()];
    for t in &obs.types {
        for (c, &n) in counts.iter_mut().zip(t.op_mix.iter()) {
            *c += n;
        }
    }
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "capture has no classified ops");
    counts
        .into_iter()
        .map(|n| n as f64 / total as f64)
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Two-sample KS acceptance: D below `max_d`, and the means within a
/// factor band. Loose enough for a 4-user resample, tight enough that a
/// mis-synthesized spec (wrong family, wrong scale, dropped measure)
/// fails decisively.
fn assert_measure_close(label: &str, a: &[f64], b: &[f64], max_d: f64, ratio: f64) {
    assert!(!a.is_empty() && !b.is_empty(), "{label}: empty sample");
    let ks = gof::ks_two_sample(a, b).unwrap();
    assert!(
        ks.statistic <= max_d,
        "{label}: two-sample KS D = {:.3} > {max_d}",
        ks.statistic
    );
    let (ma, mb) = (mean(a), mean(b));
    assert!(
        ma <= mb * ratio && mb <= ma * ratio,
        "{label}: means {ma:.1} vs {mb:.1} beyond {ratio}x"
    );
}

/// The oracle: capture `spec`, fit it, run the fitted spec, and pin the
/// regenerated capture against the original.
fn roundtrip(
    label: &str,
    spec: &WorkloadSpec,
    scheduler: SchedulerBackend,
    shards: usize,
    codec: SpillCodec,
    indexed: bool,
) {
    let dir = unique_dir(label);
    let source_path = dir.join("source.bin");
    let refit_path = dir.join("refit.bin");

    let mut spec = spec.clone();
    spec.run.scheduler = Some(scheduler);
    spec.run.shards = NonZeroUsize::new(shards);
    capture(&spec, &source_path, codec, indexed);

    let source = observe(&source_path);
    assert_eq!(source.users, spec.run.n_users, "{label}: users observed");
    let fitted = synthesize_spec(&source, &SynthesisOptions::default())
        .unwrap_or_else(|e| panic!("{label}: synthesize failed: {e}"));
    assert_eq!(fitted.spec.run.n_users, spec.run.n_users);
    assert_eq!(fitted.spec.run.sessions_per_user, spec.run.sessions_per_user);

    // The fitted spec runs unsharded on its own seed — the oracle compares
    // workload statistics, not event interleavings.
    capture(&fitted.spec, &refit_path, SpillCodec::Compressed, true);
    let refit = observe(&refit_path);
    assert!(!refit.is_empty(), "{label}: regenerated capture is empty");

    // Op mix: per-kind fraction drift.
    let (mix_a, mix_b) = (op_mix(&source), op_mix(&refit));
    for (kind, (fa, fb)) in OpKind::ALL.iter().zip(mix_a.iter().zip(mix_b.iter())) {
        assert!(
            (fa - fb).abs() <= 0.12,
            "{label}: op-mix fraction for {kind:?} drifted: {fa:.3} vs {fb:.3}"
        );
    }

    // Access sizes, interarrival gaps and session lengths: two-sample KS
    // plus a mean band, concatenated across user types.
    let acc = |obs: &FitObservation| -> Vec<f64> {
        obs.types
            .iter()
            .flat_map(|t| t.access_size.samples().to_vec())
            .collect()
    };
    let gaps = |obs: &FitObservation| -> Vec<f64> {
        obs.types
            .iter()
            .flat_map(|t| t.interarrival.samples().to_vec())
            .collect()
    };
    let lens = |obs: &FitObservation| -> Vec<f64> {
        obs.types
            .iter()
            .flat_map(|t| t.session_length.samples().to_vec())
            .collect()
    };
    assert_measure_close(
        &format!("{label}/access-size"),
        &acc(&source),
        &acc(&refit),
        0.35,
        2.5,
    );
    assert_measure_close(
        &format!("{label}/interarrival"),
        &gaps(&source),
        &gaps(&refit),
        0.45,
        3.0,
    );
    assert_measure_close(
        &format!("{label}/session-length"),
        &lens(&source),
        &lens(&refit),
        0.45,
        3.0,
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn roundtrip_paper_heap_unsharded_compressed() {
    roundtrip(
        "paper-heap-k1-v2",
        &paper_spec(),
        SchedulerBackend::Heap,
        1,
        SpillCodec::Compressed,
        true,
    );
}

#[test]
fn roundtrip_paper_calendar_unsharded_raw() {
    roundtrip(
        "paper-cal-k1-v1",
        &paper_spec(),
        SchedulerBackend::Calendar,
        1,
        SpillCodec::Raw,
        true,
    );
}

#[test]
fn roundtrip_paper_heap_sharded_footerless() {
    // K = 2 sharded capture, no index footer: the fit collector must take
    // its whole-file streamed fallback over the merged shard streams.
    roundtrip(
        "paper-heap-k2-nofooter",
        &paper_spec(),
        SchedulerBackend::Heap,
        2,
        SpillCodec::Compressed,
        false,
    );
}

#[test]
fn roundtrip_mixed_calendar_sharded_compressed() {
    roundtrip(
        "mixed-cal-k2-v2",
        &mixed_spec(),
        SchedulerBackend::Calendar,
        2,
        SpillCodec::Compressed,
        true,
    );
}

#[test]
fn roundtrip_mixed_heap_unsharded_raw_footerless() {
    roundtrip(
        "mixed-heap-k1-v1-nofooter",
        &mixed_spec(),
        SchedulerBackend::Heap,
        1,
        SpillCodec::Raw,
        false,
    );
}

#[test]
fn roundtrip_recovers_two_user_types() {
    let dir = unique_dir("two-types");
    let path = dir.join("source.bin");
    let spec = two_type_spec();
    capture(&spec, &path, SpillCodec::Compressed, true);
    let obs = observe(&path);
    assert_eq!(obs.types.len(), 2, "both user types observed");
    let fitted = synthesize_spec(&obs, &SynthesisOptions::default()).unwrap();
    assert_eq!(fitted.spec.population.types().len(), 2);
    // The population fractions mirror the observed per-type user counts.
    let total: f64 = fitted.spec.population.types().iter().map(|&(_, f)| f).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // And the fitted spec runs.
    let report = fitted
        .spec
        .run_des(&ModelConfig::default_local())
        .unwrap();
    assert!(!report.log.sessions().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn windowed_fit_matches_the_full_pass_on_a_full_window() {
    // A window covering the whole capture must observe exactly what the
    // unwindowed pass observes — the indexed and streamed collectors agree.
    let dir = unique_dir("window-full");
    let path = dir.join("source.bin");
    capture(&paper_spec(), &path, SpillCodec::Compressed, true);
    let full = observe(&path);
    let windowed = collect_fit(
        &path,
        &ScanOptions {
            since: Some(0),
            until: Some(u64::MAX),
            ..ScanOptions::default()
        },
    )
    .unwrap();
    assert_eq!(windowed.observation.ops, full.ops);
    assert_eq!(windowed.observation.sessions, full.sessions);
    assert_eq!(windowed.observation.users, full.users);
    assert!(windowed.frames_total.is_some(), "index footer was used");
    std::fs::remove_dir_all(&dir).ok();
}
