//! Property-based integration tests: workload-model invariants that must
//! hold for arbitrary (valid) specifications, not just the paper presets.

use proptest::prelude::*;
use uswg_core::experiment::ModelConfig;
use uswg_core::{
    metrics, CategorySpec, CategoryUsage, DistributionSpec, FileCategory, FillPattern, FscSpec,
    PopulationSpec, RunConfig, UserTypeSpec, VfsConfig, WorkloadSpec,
};

/// A small random-but-valid workload spec.
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        500.0f64..20_000.0, // mean file size
        0.2f64..4.0,        // access-per-byte
        1.0f64..4.0,        // mean files per session
        128.0f64..4_096.0,  // mean access size
        0.0f64..10_000.0,   // mean think time
        1u64..1_000,        // seed
        1usize..4,          // users
    )
        .prop_map(|(size, apb, files, access, think, seed, users)| {
            let fsc = FscSpec::new(vec![
                CategorySpec::new(
                    FileCategory::REG_USER_RDONLY,
                    0.6,
                    DistributionSpec::exponential(size),
                ),
                CategorySpec::new(
                    FileCategory::REG_OTHER_RDONLY,
                    0.4,
                    DistributionSpec::exponential(size * 2.0),
                ),
            ])
            .expect("valid fractions")
            .with_files_per_user(8)
            .expect("positive")
            .with_shared_files(10)
            .expect("positive")
            .with_fill(FillPattern::Sparse);
            let utype = UserTypeSpec::new(
                "prop user",
                if think < 1.0 {
                    DistributionSpec::constant(0.0)
                } else {
                    DistributionSpec::exponential(think)
                },
                DistributionSpec::exponential(access),
                vec![
                    CategoryUsage::exponential(
                        FileCategory::REG_USER_RDONLY,
                        apb,
                        size,
                        files,
                        1.0,
                    ),
                    CategoryUsage::exponential(FileCategory::REG_USER_TEMP, apb, size, files, 0.5),
                ],
            );
            WorkloadSpec {
                fsc,
                population: PopulationSpec::single(utype).expect("valid population"),
                run: RunConfig {
                    n_users: users,
                    sessions_per_user: 2,
                    seed,
                    record_ops: true,
                    cdf_resolution: 128,
                    ..RunConfig::default()
                },
                vfs: VfsConfig::default(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid spec runs to completion and its log is self-consistent.
    #[test]
    fn any_valid_spec_runs_direct(spec in spec_strategy()) {
        let log = spec.run_direct().expect("run succeeds");
        prop_assert_eq!(
            log.sessions().len(),
            spec.run.n_users * spec.run.sessions_per_user as usize
        );
        // Op-level byte totals equal session-level byte totals.
        let op_bytes: u64 = log
            .ops()
            .iter()
            .filter(|o| o.op.is_data())
            .map(|o| o.bytes)
            .sum();
        let session_bytes: u64 = log.sessions().iter().map(|s| s.bytes_accessed).sum();
        prop_assert_eq!(op_bytes, session_bytes);
        // Session ops equal op records.
        let session_ops: u64 = log.sessions().iter().map(|s| s.ops).sum();
        prop_assert_eq!(session_ops as usize, log.ops().len());
    }

    /// DES runs produce non-negative responses and monotone issue times per
    /// user, under every model.
    #[test]
    fn any_valid_spec_runs_des(spec in spec_strategy(), model_idx in 0usize..3) {
        let model = match model_idx {
            0 => ModelConfig::default_local(),
            1 => ModelConfig::default_nfs(),
            _ => ModelConfig::default_whole_file(),
        };
        let report = spec.run_des(&model).expect("run succeeds");
        let mut last_at = std::collections::HashMap::new();
        for op in report.log.ops() {
            let prev = last_at.insert(op.user, op.at).unwrap_or(0);
            prop_assert!(op.at >= prev, "issue times must be monotone per user");
        }
        // Total simulated duration bounds every op's completion.
        for op in report.log.ops() {
            prop_assert!(op.at + op.response <= report.duration.micros());
        }
    }

    /// The same spec is bit-for-bit reproducible.
    #[test]
    fn runs_are_deterministic(spec in spec_strategy()) {
        let a = spec.run_direct().expect("first run");
        let b = spec.run_direct().expect("second run");
        prop_assert_eq!(a.ops().len(), b.ops().len());
        for (x, y) in a.ops().iter().zip(b.ops()) {
            prop_assert_eq!(x.op, y.op);
            prop_assert_eq!(x.bytes, y.bytes);
            prop_assert_eq!(x.ino, y.ino);
        }
    }

    /// Response-time-per-byte is finite and positive whenever data moved.
    #[test]
    fn response_per_byte_is_sane(spec in spec_strategy()) {
        let report = spec.run_des(&ModelConfig::default_nfs()).expect("run succeeds");
        let rpb = metrics::response_time_per_byte(&report.log);
        let moved: u64 = report
            .log
            .ops()
            .iter()
            .filter(|o| o.op.is_data())
            .map(|o| o.bytes)
            .sum();
        if moved > 0 {
            prop_assert!(rpb.is_finite());
            prop_assert!(rpb > 0.0);
            // An NFS data byte cannot be cheaper than the wire alone.
            prop_assert!(rpb >= 0.1, "rpb {rpb} below physical floor");
        }
    }
}
