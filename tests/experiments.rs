//! Integration tests of the Chapter 5 experiment shapes at reduced scale:
//! these are the acceptance criteria of DESIGN.md §4 (who wins, slopes,
//! crossovers), run small enough for CI.

use uswg_core::experiment::{access_size_sweep, compare_models, user_sweep, ModelConfig};
use uswg_core::{presets, FillPattern, NfsParams, PopulationSpec, WorkloadSpec};

fn base_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    // 8 sessions per point: enough samples that the shape assertions below
    // (growth ratios, model orderings) hold with real margin rather than
    // riding the small-sample noise of a particular RNG stream.
    spec.run.sessions_per_user = 8;
    // These tests assert the paper's *contended* queueing shapes (response
    // grows with users because everyone queues behind one server), so they
    // pin the single-shard path: K = 1 replays the exact fully contended
    // simulation even under a USWG_SHARDS matrix entry, whereas K > 1
    // deliberately severs cross-shard contention and would flatten every
    // curve measured here. The sharded regime has its own suite
    // (tests/shard_equivalence.rs).
    spec.run.shards = Some(std::num::NonZeroUsize::new(1).unwrap());
    spec.fsc = spec
        .fsc
        .with_files_per_user(15)
        .unwrap()
        .with_shared_files(30)
        .unwrap()
        .with_fill(FillPattern::Sparse);
    spec
}

#[test]
fn figure_5_6_shape_linear_growth_under_saturation() {
    let spec = base_spec()
        .with_population(PopulationSpec::single(presets::extremely_heavy_user()).unwrap());
    let points = user_sweep(&spec, &ModelConfig::default_nfs(), [1, 2, 4, 6]).unwrap();
    let rpb: Vec<f64> = points.iter().map(|p| p.response_per_byte).collect();
    // Strictly increasing.
    for w in rpb.windows(2) {
        assert!(w[1] > w[0], "response/byte must grow with users: {rpb:?}");
    }
    // Roughly linear: 6 users ≥ 3× 1 user under zero think time.
    assert!(
        rpb[3] >= 3.0 * rpb[0],
        "saturation growth too shallow: {rpb:?}"
    );
}

#[test]
fn figures_5_7_to_5_11_shape_think_time_flattens_curves() {
    let heavy_spec = base_spec()
        .with_population(PopulationSpec::single(presets::extremely_heavy_user()).unwrap());
    let light_spec = base_spec().with_population(presets::heavy_light_population(0.0).unwrap());
    let heavy = user_sweep(&heavy_spec, &ModelConfig::default_nfs(), [1, 6]).unwrap();
    let light = user_sweep(&light_spec, &ModelConfig::default_nfs(), [1, 6]).unwrap();
    let heavy_slope = heavy[1].response_per_byte - heavy[0].response_per_byte;
    let light_slope = light[1].response_per_byte - light[0].response_per_byte;
    assert!(
        light_slope < 0.6 * heavy_slope,
        "think time must flatten the curve: light {light_slope:.2} vs heavy {heavy_slope:.2}"
    );
}

#[test]
fn paper_observation_5000_and_20000_think_times_are_similar() {
    // "a 5000-microsecond think time is not much different from a
    // 20000-microsecond think time" (Section 5.2).
    let heavy = base_spec().with_population(presets::heavy_light_population(1.0).unwrap());
    let light = base_spec().with_population(presets::heavy_light_population(0.0).unwrap());
    let h = user_sweep(&heavy, &ModelConfig::default_nfs(), [4]).unwrap();
    let l = user_sweep(&light, &ModelConfig::default_nfs(), [4]).unwrap();
    let ratio = h[0].response_per_byte / l[0].response_per_byte;
    assert!(
        (0.5..=2.2).contains(&ratio),
        "4-user response/byte should be similar across think times, ratio {ratio:.2}"
    );
}

#[test]
fn figure_5_12_shape_larger_accesses_amortize() {
    let spec = base_spec();
    let points = access_size_sweep(
        &spec,
        &ModelConfig::default_nfs(),
        [128.0, 256.0, 512.0, 1024.0, 2048.0],
    )
    .unwrap();
    let rpb: Vec<f64> = points.iter().map(|p| p.response_per_byte).collect();
    for w in rpb.windows(2) {
        assert!(
            w[1] < w[0],
            "per-byte response must fall with access size: {rpb:?}"
        );
    }
    // Convex and strong: 128 B is several times costlier per byte than 2 KiB.
    assert!(rpb[0] > 3.0 * rpb[4], "amortization too weak: {rpb:?}");
}

#[test]
fn table_5_3_shape_response_grows_and_spreads() {
    let spec = base_spec().with_population(presets::heavy_light_population(1.0).unwrap());
    let points = user_sweep(&spec, &ModelConfig::default_nfs(), [1, 6]).unwrap();
    // Mean access size tracks the exp(1024) spec within sampling noise,
    // regardless of user count (paper's access-size column is flat).
    for p in &points {
        assert!(
            (p.access_size.mean - 1024.0).abs() / 1024.0 < 0.25,
            "access size drifted: {}",
            p.access_size.mean
        );
        // Exponential signature: std within a factor ~2 of the mean.
        assert!(p.access_size.std_dev > 0.4 * p.access_size.mean);
    }
    // Response grows in users, with std of the same order as the mean
    // (the paper's huge standard deviations).
    assert!(points[1].response.mean > points[0].response.mean);
    assert!(points[1].response.std_dev > 0.3 * points[1].response.mean);
}

#[test]
fn section_5_3_model_ranking_depends_on_workload() {
    // Sliver readers: touch 5% of large read-only files, working set larger
    // than the whole-file cache. Whole-file caching pays to fetch entire
    // files it barely uses and thrashes; NFS reads only what is asked.
    // (Write-heavy categories are excluded — batched write-back would
    // legitimately favor whole-file caching there, which is the point of
    // the second half of this test.)
    let sliver_cats = vec![
        uswg_core::CategoryUsage::exponential(
            uswg_core::FileCategory::REG_USER_RDONLY,
            0.05,
            2_608.0,
            4.0,
            1.0,
        ),
        uswg_core::CategoryUsage::exponential(
            uswg_core::FileCategory::REG_OTHER_RDONLY,
            0.05,
            53_965.0,
            8.0,
            1.0,
        ),
    ];
    let sliver = uswg_core::UserTypeSpec::new(
        "sliver",
        uswg_core::DistributionSpec::exponential(5_000.0),
        uswg_core::DistributionSpec::exponential(1_024.0),
        sliver_cats,
    );
    let mut spec = base_spec().with_population(PopulationSpec::single(sliver).unwrap());
    spec.fsc = spec
        .fsc
        .with_files_per_user(40)
        .unwrap()
        .with_shared_files(80)
        .unwrap();
    let small_cache = uswg_core::WholeFileCacheParams {
        cache_files: 8,
        ..uswg_core::WholeFileCacheParams::default()
    };
    let results = compare_models(
        &spec,
        &[
            ModelConfig::default_nfs(),
            ModelConfig::WholeFile(small_cache),
        ],
    )
    .unwrap();
    let nfs = results[0].1.response_per_byte;
    let afs = results[1].1.response_per_byte;
    assert!(
        afs > nfs,
        "sliver workload should favor NFS: nfs {nfs:.2} vs whole-file {afs:.2}"
    );

    // Heavy re-reading: whole-file caching wins.
    let mut reread_cats = presets::table_5_2_usages();
    for c in &mut reread_cats {
        c.access_per_byte = 8.0;
    }
    let rereader = uswg_core::UserTypeSpec::new(
        "re-reader",
        uswg_core::DistributionSpec::exponential(5_000.0),
        uswg_core::DistributionSpec::exponential(1_024.0),
        reread_cats,
    );
    let spec = base_spec().with_population(PopulationSpec::single(rereader).unwrap());
    let results = compare_models(
        &spec,
        &[
            ModelConfig::default_nfs(),
            ModelConfig::default_whole_file(),
        ],
    )
    .unwrap();
    let nfs = results[0].1.response_per_byte;
    let afs = results[1].1.response_per_byte;
    assert!(
        afs < nfs,
        "re-read workload should favor whole-file caching: nfs {nfs:.2} vs whole-file {afs:.2}"
    );
}

#[test]
fn distributed_nfs_flattens_the_user_sweep() {
    // Section 4.2's distributed-file-system extension: spreading the files
    // over more servers relieves the disk bottleneck, so the Figure 5.6
    // saturation curve flattens as servers are added.
    let spec = base_spec()
        .with_population(PopulationSpec::single(presets::extremely_heavy_user()).unwrap());
    let one = user_sweep(&spec, &ModelConfig::distributed_nfs(1), [1, 6]).unwrap();
    let three = user_sweep(&spec, &ModelConfig::distributed_nfs(3), [1, 6]).unwrap();
    let growth_one = one[1].response_per_byte / one[0].response_per_byte;
    let growth_three = three[1].response_per_byte / three[0].response_per_byte;
    assert!(
        growth_three < growth_one,
        "3 servers must flatten saturation: {growth_three:.2} vs {growth_one:.2}"
    );
    // Single-user cost is unchanged (no contention to relieve).
    let rel =
        (one[0].response_per_byte - three[0].response_per_byte).abs() / one[0].response_per_byte;
    assert!(
        rel < 0.15,
        "1-user cost should not depend on server count: {rel:.2}"
    );
}

#[test]
fn random_access_pattern_costs_more_per_byte() {
    // Database-style direct access issues an lseek per data op; per-byte
    // cost rises relative to sequential scans of the same budget.
    let mk = |pattern| {
        let mut cats = presets::table_5_2_usages();
        for c in &mut cats {
            c.access_pattern = pattern;
        }
        let user = uswg_core::UserTypeSpec::new(
            "pattern user",
            uswg_core::DistributionSpec::exponential(5_000.0),
            uswg_core::DistributionSpec::exponential(1_024.0),
            cats,
        );
        base_spec().with_population(PopulationSpec::single(user).unwrap())
    };
    let seq = user_sweep(
        &mk(uswg_core::AccessPattern::Sequential),
        &ModelConfig::default_nfs(),
        [2],
    )
    .unwrap();
    let rnd = user_sweep(
        &mk(uswg_core::AccessPattern::Random),
        &ModelConfig::default_nfs(),
        [2],
    )
    .unwrap();
    assert!(
        rnd[0].response_per_byte > seq[0].response_per_byte,
        "random access must cost more per byte: {:.3} vs {:.3}",
        rnd[0].response_per_byte,
        seq[0].response_per_byte
    );
}

#[test]
fn client_cache_ablation_reduces_response() {
    let spec = base_spec().with_population(presets::heavy_light_population(1.0).unwrap());
    let without = user_sweep(&spec, &ModelConfig::Nfs(NfsParams::default()), [2]).unwrap();
    let with = user_sweep(&spec, &ModelConfig::Nfs(NfsParams::with_cache(4_096)), [2]).unwrap();
    assert!(
        with[0].response_per_byte < without[0].response_per_byte,
        "client cache must help: {} vs {}",
        with[0].response_per_byte,
        without[0].response_per_byte
    );
}

#[test]
fn local_disk_always_beats_remote_models() {
    let spec = base_spec().with_population(presets::heavy_light_population(1.0).unwrap());
    let results = compare_models(
        &spec,
        &[
            ModelConfig::default_local(),
            ModelConfig::default_nfs(),
            ModelConfig::default_whole_file(),
        ],
    )
    .unwrap();
    let local = results[0].1.response_per_byte;
    for (name, point) in &results[1..] {
        assert!(
            local < point.response_per_byte,
            "local must beat {name}: {local:.2} vs {:.2}",
            point.response_per_byte
        );
    }
}

#[test]
fn parallel_sweeps_match_serial() {
    use uswg_core::experiment::{
        access_size_sweep_with, compare_models_with, mix_sweep_with, user_sweep_with, Parallelism,
        SweepMode,
    };

    let spec = base_spec()
        .with_population(PopulationSpec::single(presets::extremely_heavy_user()).unwrap());

    // Every point is independently seeded from run.seed, so fanning points
    // across threads must reproduce the serial results byte for byte.
    let serial = user_sweep_with(
        &spec,
        &ModelConfig::default_nfs(),
        [1, 2, 3, 4],
        Parallelism::Serial,
        SweepMode::Summary,
    )
    .unwrap();
    let parallel = user_sweep_with(
        &spec,
        &ModelConfig::default_nfs(),
        [1, 2, 3, 4],
        Parallelism::Threads(4),
        SweepMode::Summary,
    )
    .unwrap();
    assert_eq!(serial, parallel);

    let serial = access_size_sweep_with(
        &spec,
        &ModelConfig::default_nfs(),
        [128.0, 512.0, 2048.0],
        Parallelism::Serial,
        SweepMode::Summary,
    )
    .unwrap();
    let parallel = access_size_sweep_with(
        &spec,
        &ModelConfig::default_nfs(),
        [128.0, 512.0, 2048.0],
        Parallelism::Threads(3),
        SweepMode::Summary,
    )
    .unwrap();
    assert_eq!(serial, parallel);

    let serial = mix_sweep_with(
        &base_spec(),
        &ModelConfig::default_nfs(),
        [0.0, 0.5, 1.0],
        Parallelism::Serial,
        SweepMode::Summary,
    )
    .unwrap();
    let parallel = mix_sweep_with(
        &base_spec(),
        &ModelConfig::default_nfs(),
        [0.0, 0.5, 1.0],
        Parallelism::Threads(3),
        SweepMode::Summary,
    )
    .unwrap();
    assert_eq!(serial, parallel);

    let models = [ModelConfig::default_local(), ModelConfig::default_nfs()];
    let serial =
        compare_models_with(&spec, &models, Parallelism::Serial, SweepMode::Summary).unwrap();
    let parallel =
        compare_models_with(&spec, &models, Parallelism::Threads(2), SweepMode::Summary).unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn replicated_runs_quantify_seed_spread() {
    use uswg_core::experiment::{run_des_replicated, Parallelism, SweepMode};

    let spec = base_spec()
        .with_population(PopulationSpec::single(presets::extremely_heavy_user()).unwrap());
    let study = run_des_replicated(
        &spec,
        &ModelConfig::default_nfs(),
        [101u64, 202, 303, 404],
        Parallelism::Auto,
        SweepMode::Summary,
    )
    .unwrap();
    assert_eq!(study.replicates.len(), 4);
    assert!(study.mean_response_per_byte > 0.0);
    assert!(study.std_dev_response_per_byte >= 0.0);
    // The CI must bracket every reasonable re-estimate of the mean: here
    // just check it is positive and smaller than the mean itself (the
    // response-per-byte spread across seeds is far from degenerate but far
    // from 100% either).
    assert!(study.ci95_half_width > 0.0);
    assert!(study.ci95_half_width < study.mean_response_per_byte);
}
