//! Determinism suite for fault injection: the oracle that a faulted run is
//! a **pure function of (spec, seed, K)** — the same contract the shard
//! suite pins for clean runs, extended to the fault path.
//!
//! * The per-op fault/spike/backoff draws come from the per-user PRNG, so
//!   they are program-ordered per user and therefore partition-invariant:
//!   worker count and scheduler backend never change a byte of the merged
//!   log, faults on or off.
//! * `FaultSpec::default()` draws **zero** random values, so a spec without
//!   a fault section behaves byte-for-byte as it did before fault injection
//!   existed (the existing golden and equivalence suites double as that
//!   oracle; here we assert the observable half — no retries, no aborts,
//!   zero fault tallies).
//! * Retries and aborts are first-class log outcomes: the streaming
//!   summary's fault tallies must equal a fold of the full log, at any K.

use proptest::prelude::*;
use std::num::NonZeroUsize;
use uswg_core::experiment::ModelConfig;
use uswg_core::{
    DesDriver, DesReport, FaultSpec, ResourcePool, RetryPolicy, SchedulerBackend, SummarySink,
    WorkloadSpec,
};

fn nz(k: usize) -> NonZeroUsize {
    NonZeroUsize::new(k).expect("positive shard count")
}

/// A small multi-user workload with the given fault spec (full paper
/// population: shared read-write coupling included, since byte-identity
/// claims here are per-K, not cross-K).
fn fault_spec(users: usize, sessions: u32, faults: FaultSpec) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run.n_users = users;
    spec.run.sessions_per_user = sessions;
    spec.run.scheduler = Some(SchedulerBackend::Heap);
    spec.run.faults = faults;
    spec.fsc = spec
        .fsc
        .with_files_per_user(8)
        .unwrap()
        .with_shared_files(12)
        .unwrap();
    spec
}

/// An aggressive-but-valid fault mix: ~15% transient faults, ~10% latency
/// spikes, small retry budget so aborts actually happen.
fn heavy_faults() -> FaultSpec {
    FaultSpec {
        fault_ppm: 150_000,
        spike_ppm: 100_000,
        spike_micros: 2_500,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_micros: 200,
            max_backoff_micros: 1_600,
        },
    }
}

/// The unsharded oracle: one DES instance, one globally contended model.
fn unsharded_report(spec: &WorkloadSpec, model: &ModelConfig) -> DesReport {
    let (vfs, catalog) = spec.generate_fs().unwrap();
    let population = spec.compile().unwrap();
    let mut pool = ResourcePool::new();
    let m = model.build(&mut pool);
    DesDriver::new()
        .run(vfs, catalog, &population, m, pool, &spec.run)
        .unwrap()
}

fn sharded_report(spec: &WorkloadSpec, model: &ModelConfig, k: usize) -> DesReport {
    let mut s = spec.clone();
    s.run.shards = Some(nz(k));
    s.run_des(model).unwrap()
}

fn sharded_summary(spec: &WorkloadSpec, model: &ModelConfig, k: usize) -> SummarySink {
    let mut s = spec.clone();
    s.run.shards = Some(nz(k));
    s.run_des_summary(model).unwrap().0
}

/// With faults enabled, K = 1 through the sharded driver still replays the
/// unsharded simulation byte for byte, under both scheduler backends.
#[test]
fn faulted_one_shard_is_byte_identical_to_the_unsharded_driver() {
    for backend in [SchedulerBackend::Heap, SchedulerBackend::Calendar] {
        let mut spec = fault_spec(3, 2, heavy_faults());
        spec.run.scheduler = Some(backend);
        let model = ModelConfig::default_nfs();
        let exact = unsharded_report(&spec, &model);
        let sharded = sharded_report(&spec, &model, 1);
        assert_eq!(
            exact.log.to_json().unwrap(),
            sharded.log.to_json().unwrap(),
            "backend {backend}: faulted K=1 must replay the unsharded log byte for byte"
        );
        // The faulted run really is faulted — the oracle is not vacuous.
        assert!(
            exact.log.ops().iter().any(|op| op.retries > 0),
            "backend {backend}: heavy fault mix must produce retries"
        );
        assert!(
            exact.log.ops().iter().any(|op| op.aborted),
            "backend {backend}: max_attempts=2 at 15% fault rate must abort some op"
        );
    }
}

/// The faulted merged log is a pure function of (spec, seed, K): worker
/// count and scheduler backend never change a byte, exactly as for clean
/// runs — fault, spike and backoff draws ride the per-user streams.
#[test]
fn faulted_merged_log_is_worker_and_backend_invariant() {
    let model = ModelConfig::default_nfs();
    let reference = {
        let spec = fault_spec(6, 2, heavy_faults());
        sharded_report(&spec, &model, 4).log.to_json().unwrap()
    };
    for backend in [SchedulerBackend::Heap, SchedulerBackend::Calendar] {
        for workers in [1usize, 3, 8] {
            let mut spec = fault_spec(6, 2, heavy_faults());
            spec.run.scheduler = Some(backend);
            let population = spec.compile().unwrap();
            let plan = uswg_core::ShardPlan::new(spec.run.n_users, nz(4));
            let envs: Vec<uswg_core::ShardEnv> = (0..plan.active_shards())
                .map(|_| {
                    let (vfs, catalog) = spec.generate_fs().unwrap();
                    let mut pool = ResourcePool::new();
                    let m = model.build(&mut pool);
                    uswg_core::ShardEnv {
                        vfs,
                        catalog,
                        model: m,
                        pool,
                    }
                })
                .collect();
            let report = uswg_core::ShardedDesDriver::with_workers(workers)
                .run(&population, &spec.run, nz(4), envs)
                .unwrap();
            assert_eq!(
                report.log.to_json().unwrap(),
                reference,
                "workers={workers} backend={backend}"
            );
        }
    }
}

/// A default (disabled) fault spec produces a log with zero fault
/// outcomes and zero fault tallies — the observable half of "byte-identical
/// to pre-fault behavior" (the golden suites pin the bytes themselves).
#[test]
fn default_fault_spec_produces_no_fault_outcomes() {
    let spec = fault_spec(3, 2, FaultSpec::default());
    assert!(!spec.run.faults.enabled());
    let model = ModelConfig::default_nfs();
    let report = unsharded_report(&spec, &model);
    assert!(report
        .log
        .ops()
        .iter()
        .all(|op| op.retries == 0 && !op.aborted));
    let summary = sharded_summary(&spec, &model, 2);
    assert_eq!(summary.retries, 0);
    assert_eq!(summary.aborted_ops, 0);
    assert_eq!(summary.aborted_bytes, 0);
    assert_eq!(summary.abort_rate(), 0.0);
    assert_eq!(summary.goodput_bytes(), summary.data_bytes);
}

/// The streaming summary's fault tallies equal a fold of the merged full
/// log at every K — retries and aborts are first-class, not an artifact of
/// one retention mode.
#[test]
fn fault_tallies_agree_between_log_and_summary_at_any_k() {
    let spec = fault_spec(5, 2, heavy_faults());
    let model = ModelConfig::default_nfs();
    for k in [1usize, 2, 3] {
        let report = sharded_report(&spec, &model, k);
        let mut replayed = SummarySink::new();
        for op in report.log.ops() {
            uswg_core::LogSink::record_op(&mut replayed, op);
        }
        let merged = sharded_summary(&spec, &model, k);
        assert_eq!(replayed.retries, merged.retries, "K={k}");
        assert_eq!(replayed.aborted_ops, merged.aborted_ops, "K={k}");
        assert_eq!(replayed.aborted_bytes, merged.aborted_bytes, "K={k}");
        assert!(merged.retries > 0, "K={k}: heavy mix must retry");
        assert!(merged.aborted_ops > 0, "K={k}: heavy mix must abort");
        assert!(
            merged.goodput_bytes() < merged.data_bytes,
            "K={k}: aborted data ops must cost goodput"
        );
        let rate = merged.abort_rate();
        assert!(rate > 0.0 && rate < 1.0, "K={k}: abort rate {rate}");
    }
}

proptest! {
    // Each case runs several full simulations; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary valid fault specs, seeds and K: two runs of the same
    /// (spec, seed, K) are byte-identical, and the scheduler backend is
    /// never observable in the merged log.
    #[test]
    fn faulted_runs_are_pure_functions_of_spec_seed_and_k(
        fault_ppm in 0u32..300_000,
        spike_ppm in 0u32..200_000,
        spike_micros in 0u64..5_000,
        max_attempts in 1u32..4,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let faults = FaultSpec {
            fault_ppm,
            spike_ppm,
            spike_micros,
            retry: RetryPolicy {
                max_attempts,
                base_backoff_micros: 100,
                max_backoff_micros: 3_200,
            },
        };
        let model = ModelConfig::default_nfs();
        let mut spec = fault_spec(4, 1, faults);
        spec.run.seed = seed;
        let first = sharded_report(&spec, &model, k).log.to_json().unwrap();
        let second = sharded_report(&spec, &model, k).log.to_json().unwrap();
        prop_assert_eq!(&first, &second, "same (spec, seed, K) must replay");
        spec.run.scheduler = Some(SchedulerBackend::Calendar);
        let calendar = sharded_report(&spec, &model, k).log.to_json().unwrap();
        prop_assert_eq!(&first, &calendar, "backend must be unobservable");
    }
}
