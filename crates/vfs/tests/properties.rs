//! Property-based tests: the file system is exercised with random operation
//! sequences and checked against a simple in-memory model (a map from path
//! to byte vector), plus standalone invariants like space accounting.

use proptest::prelude::*;
use std::collections::HashMap;
use uswg_vfs::{FsError, OpenFlags, SeekFrom, Vfs, VfsConfig};

/// Random workload operations applied both to the Vfs and to the model.
#[derive(Debug, Clone)]
enum Op {
    WriteFile { name: u8, payload: Vec<u8> },
    AppendFile { name: u8, payload: Vec<u8> },
    ReadFile { name: u8 },
    Unlink { name: u8 },
    Truncate { name: u8, len: u16 },
    Stat { name: u8 },
    Rename { from: u8, to: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, prop::collection::vec(any::<u8>(), 0..600))
            .prop_map(|(name, payload)| Op::WriteFile { name, payload }),
        (0u8..12, prop::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(name, payload)| Op::AppendFile { name, payload }),
        (0u8..12).prop_map(|name| Op::ReadFile { name }),
        (0u8..12).prop_map(|name| Op::Unlink { name }),
        (0u8..12, any::<u16>()).prop_map(|(name, len)| Op::Truncate { name, len }),
        (0u8..12).prop_map(|name| Op::Stat { name }),
        (0u8..12, 0u8..12).prop_map(|(from, to)| Op::Rename { from, to }),
    ]
}

fn path(name: u8) -> String {
    format!("/w/f{name}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Vfs agrees byte-for-byte with a trivial map model under random
    /// whole-file operations.
    #[test]
    fn vfs_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut fs = Vfs::new(VfsConfig::default());
        fs.mkdir("/w").unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::WriteFile { name, payload } => {
                    fs.write_file(&path(name), &payload).unwrap();
                    model.insert(path(name), payload);
                }
                Op::AppendFile { name, payload } => {
                    let p = path(name);
                    if model.contains_key(&p) {
                        let mut proc = fs.new_process();
                        let fd = fs.open(&mut proc, &p, OpenFlags::append_only()).unwrap();
                        fs.write(&mut proc, fd, &payload).unwrap();
                        fs.close(&mut proc, fd).unwrap();
                        model.get_mut(&p).unwrap().extend_from_slice(&payload);
                    } else {
                        let mut proc = fs.new_process();
                        prop_assert_eq!(
                            fs.open(&mut proc, &p, OpenFlags::append_only()),
                            Err(FsError::NotFound)
                        );
                    }
                }
                Op::ReadFile { name } => {
                    let p = path(name);
                    match model.get(&p) {
                        Some(expect) => prop_assert_eq!(&fs.read_file(&p).unwrap(), expect),
                        None => prop_assert!(fs.read_file(&p).is_err()),
                    }
                }
                Op::Unlink { name } => {
                    let p = path(name);
                    if model.remove(&p).is_some() {
                        fs.unlink(&p).unwrap();
                    } else {
                        prop_assert_eq!(fs.unlink(&p), Err(FsError::NotFound));
                    }
                }
                Op::Truncate { name, len } => {
                    let p = path(name);
                    if let Some(content) = model.get_mut(&p) {
                        fs.truncate(&p, len as u64).unwrap();
                        content.resize(len as usize, 0);
                    } else {
                        prop_assert!(fs.truncate(&p, len as u64).is_err());
                    }
                }
                Op::Stat { name } => {
                    let p = path(name);
                    match model.get(&p) {
                        Some(content) => {
                            let md = fs.stat(&p).unwrap();
                            prop_assert_eq!(md.size, content.len() as u64);
                            prop_assert!(md.is_file());
                        }
                        None => prop_assert!(fs.stat(&p).is_err()),
                    }
                }
                Op::Rename { from, to } => {
                    let (pf, pt) = (path(from), path(to));
                    if model.contains_key(&pf) {
                        fs.rename(&pf, &pt).unwrap();
                        let v = model.remove(&pf).unwrap();
                        model.insert(pt, v);
                    } else {
                        prop_assert!(fs.rename(&pf, &pt).is_err());
                    }
                }
            }
        }

        // Final sweep: every model file matches; the directory lists exactly
        // the model's keys.
        let mut listed: Vec<String> = fs.readdir("/w").unwrap().into_iter().map(|e| format!("/w/{}", e.name)).collect();
        listed.sort();
        let mut expected: Vec<String> = model.keys().cloned().collect();
        expected.sort();
        prop_assert_eq!(listed, expected);
        for (p, content) in &model {
            prop_assert_eq!(&fs.read_file(p).unwrap(), content);
        }
    }

    /// Blocks never leak: after unlinking everything, allocation returns to
    /// zero regardless of the operation sequence.
    #[test]
    fn space_is_reclaimed(sizes in prop::collection::vec(0usize..100_000, 1..20)) {
        let mut fs = Vfs::new(VfsConfig::default());
        for (i, size) in sizes.iter().enumerate() {
            let payload = vec![0xA5u8; *size];
            fs.write_file(&format!("/f{i}"), &payload).unwrap();
        }
        prop_assert!(fs.block_stats().allocated > 0 || sizes.iter().all(|&s| s == 0));
        for i in 0..sizes.len() {
            fs.unlink(&format!("/f{i}")).unwrap();
        }
        prop_assert_eq!(fs.block_stats().allocated, 0);
        let st = fs.statfs();
        prop_assert_eq!(st.free_blocks, st.total_blocks);
    }

    /// Sequential chunked reads reassemble exactly what one write stored,
    /// for arbitrary chunk sizes.
    #[test]
    fn chunked_reads_reassemble(payload in prop::collection::vec(any::<u8>(), 1..40_000), chunk in 1usize..5_000) {
        let mut fs = Vfs::new(VfsConfig::default());
        fs.write_file("/data", &payload).unwrap();
        let mut proc = fs.new_process();
        let fd = fs.open(&mut proc, "/data", OpenFlags::read_only()).unwrap();
        let mut out = Vec::new();
        let mut buf = vec![0u8; chunk];
        loop {
            let n = fs.read(&mut proc, fd, &mut buf).unwrap();
            if n == 0 { break; }
            out.extend_from_slice(&buf[..n]);
        }
        fs.close(&mut proc, fd).unwrap();
        prop_assert_eq!(out, payload);
    }

    /// Writing at random offsets then reading back behaves like a sparse
    /// byte array.
    #[test]
    fn random_offset_writes(segments in prop::collection::vec((0u32..200_000, prop::collection::vec(any::<u8>(), 1..500)), 1..10)) {
        let mut fs = Vfs::new(VfsConfig::default());
        let mut proc = fs.new_process();
        let fd = fs.creat(&mut proc, "/sparse").unwrap();
        let mut model: Vec<u8> = Vec::new();
        for (offset, data) in &segments {
            let offset = *offset as usize;
            fs.lseek(&mut proc, fd, SeekFrom::Start(offset as u64)).unwrap();
            fs.write(&mut proc, fd, data).unwrap();
            if model.len() < offset + data.len() {
                model.resize(offset + data.len(), 0);
            }
            model[offset..offset + data.len()].copy_from_slice(data);
        }
        fs.close(&mut proc, fd).unwrap();
        prop_assert_eq!(fs.read_file("/sparse").unwrap(), model);
    }
}
