//! Inodes and file metadata.

use crate::block::BlockId;
use serde::{Deserialize, Serialize};

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ino(pub(crate) u64);

impl Ino {
    /// The raw inode number.
    pub fn number(self) -> u64 {
        self.0
    }
}

/// What kind of object an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileKind {
    /// A regular file with data blocks.
    Regular,
    /// A directory with named entries.
    Directory,
}

/// The in-memory inode.
#[derive(Debug, Clone)]
pub(crate) struct Inode {
    pub ino: Ino,
    pub kind: FileKind,
    /// Logical file size in bytes (directories: entry count).
    pub size: u64,
    /// Number of directory entries referencing this inode.
    pub nlink: u32,
    /// Number of open descriptors referencing this inode.
    pub open_count: u32,
    /// Owner id recorded at creation (workload-level classification).
    pub uid: u32,
    /// Data blocks; `None` entries are holes that read as zeros.
    pub blocks: Vec<Option<BlockId>>,
    /// Last access time, microseconds of the file-system clock.
    pub atime: u64,
    /// Last modification time.
    pub mtime: u64,
    /// Inode change time.
    pub ctime: u64,
}

impl Inode {
    pub(crate) fn new(ino: Ino, kind: FileKind, uid: u32, now: u64) -> Self {
        Self {
            ino,
            kind,
            size: 0,
            nlink: 1,
            open_count: 0,
            uid,
            blocks: Vec::new(),
            atime: now,
            mtime: now,
            ctime: now,
        }
    }

    pub(crate) fn metadata(&self, block_size: usize) -> Metadata {
        Metadata {
            ino: self.ino,
            kind: self.kind,
            size: self.size,
            nlink: self.nlink,
            uid: self.uid,
            blocks: self.blocks.iter().flatten().count() as u64,
            block_size: block_size as u32,
            atime: self.atime,
            mtime: self.mtime,
            ctime: self.ctime,
        }
    }
}

/// The result of `stat`/`fstat`: a snapshot of an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metadata {
    /// Inode number.
    pub ino: Ino,
    /// Object kind.
    pub kind: FileKind,
    /// Logical size in bytes.
    pub size: u64,
    /// Link count.
    pub nlink: u32,
    /// Owner id.
    pub uid: u32,
    /// Number of allocated data blocks (holes excluded).
    pub blocks: u64,
    /// Block size of the containing file system.
    pub block_size: u32,
    /// Last access time (µs).
    pub atime: u64,
    /// Last modification time (µs).
    pub mtime: u64,
    /// Inode change time (µs).
    pub ctime: u64,
}

impl Metadata {
    /// Whether this is a directory.
    pub fn is_dir(&self) -> bool {
        self.kind == FileKind::Directory
    }

    /// Whether this is a regular file.
    pub fn is_file(&self) -> bool {
        self.kind == FileKind::Regular
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_snapshot() {
        let mut inode = Inode::new(Ino(7), FileKind::Regular, 42, 1_000);
        inode.size = 100;
        inode.blocks = vec![None, None];
        let md = inode.metadata(4096);
        assert_eq!(md.ino.number(), 7);
        assert!(md.is_file());
        assert!(!md.is_dir());
        assert_eq!(md.size, 100);
        assert_eq!(md.blocks, 0, "holes are not allocated blocks");
        assert_eq!(md.uid, 42);
        assert_eq!(md.atime, 1_000);
    }
}
