use std::fmt;

/// Errno-style errors returned by the file-system system calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FsError {
    /// A path component does not exist (`ENOENT`).
    NotFound,
    /// A non-final path component is not a directory (`ENOTDIR`).
    NotADirectory,
    /// The operation needs a regular file but got a directory (`EISDIR`).
    IsADirectory,
    /// Exclusive create of a path that already exists (`EEXIST`).
    AlreadyExists,
    /// The file descriptor is not open (`EBADF`).
    BadFd,
    /// The descriptor is open but not for the requested access (`EBADF`).
    BadAccessMode,
    /// The per-process descriptor table is full (`EMFILE`).
    TooManyOpenFiles,
    /// The block store or inode table is exhausted (`ENOSPC`).
    NoSpace,
    /// Removing a directory that still has entries (`ENOTEMPTY`).
    DirectoryNotEmpty,
    /// A path component exceeds the name length limit (`ENAMETOOLONG`).
    NameTooLong,
    /// A malformed argument: empty path, relative path, bad seek (`EINVAL`).
    InvalidArgument,
    /// Removing or overwriting the root directory (`EBUSY`).
    Busy,
    /// A write would exceed the maximum file size (`EFBIG`).
    FileTooLarge,
}

impl FsError {
    /// The closest classic UNIX errno name, for logs and reports.
    pub fn errno_name(self) -> &'static str {
        match self {
            FsError::NotFound => "ENOENT",
            FsError::NotADirectory => "ENOTDIR",
            FsError::IsADirectory => "EISDIR",
            FsError::AlreadyExists => "EEXIST",
            FsError::BadFd | FsError::BadAccessMode => "EBADF",
            FsError::TooManyOpenFiles => "EMFILE",
            FsError::NoSpace => "ENOSPC",
            FsError::DirectoryNotEmpty => "ENOTEMPTY",
            FsError::NameTooLong => "ENAMETOOLONG",
            FsError::InvalidArgument => "EINVAL",
            FsError::Busy => "EBUSY",
            FsError::FileTooLarge => "EFBIG",
        }
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            FsError::NotFound => "no such file or directory",
            FsError::NotADirectory => "not a directory",
            FsError::IsADirectory => "is a directory",
            FsError::AlreadyExists => "file exists",
            FsError::BadFd => "bad file descriptor",
            FsError::BadAccessMode => "file not open for requested access",
            FsError::TooManyOpenFiles => "too many open files",
            FsError::NoSpace => "no space left on device",
            FsError::DirectoryNotEmpty => "directory not empty",
            FsError::NameTooLong => "file name too long",
            FsError::InvalidArgument => "invalid argument",
            FsError::Busy => "device or resource busy",
            FsError::FileTooLarge => "file too large",
        };
        write!(f, "{msg} ({})", self.errno_name())
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_errno() {
        assert_eq!(
            FsError::NotFound.to_string(),
            "no such file or directory (ENOENT)"
        );
        assert_eq!(FsError::NoSpace.errno_name(), "ENOSPC");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<FsError>();
    }
}
