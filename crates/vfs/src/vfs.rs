//! The file system proper: superblock, inode table, directory tree and the
//! system-call API.

use crate::block::{BlockStats, BlockStore};
use crate::fd::{Fd, OpenFile, OpenFlags, Process, SeekFrom};
use crate::inode::{FileKind, Ino, Inode, Metadata};
use crate::path::{components, split_parent};
use crate::FsError;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Geometry and limits of a [`Vfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VfsConfig {
    /// Data block size in bytes.
    pub block_size: usize,
    /// Maximum number of data blocks (total capacity).
    pub max_blocks: usize,
    /// Maximum number of inodes.
    pub max_inodes: usize,
    /// Maximum open descriptors per process.
    pub max_fds_per_process: usize,
    /// Maximum size of a single file in bytes.
    pub max_file_size: u64,
}

impl Default for VfsConfig {
    /// 8 KiB blocks (the classic BSD FFS size), 1 GiB capacity, 64 Ki inodes.
    fn default() -> Self {
        Self {
            block_size: 8192,
            max_blocks: 131_072,
            max_inodes: 65_536,
            max_fds_per_process: 256,
            max_file_size: 256 * 1024 * 1024,
        }
    }
}

/// One `readdir` entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Entry name within its directory.
    pub name: String,
    /// Inode the entry references.
    pub ino: Ino,
    /// Kind of the referenced object.
    pub kind: FileKind,
}

/// `statfs`-style snapshot of the file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsStats {
    /// Block size in bytes.
    pub block_size: u32,
    /// Total data blocks.
    pub total_blocks: u64,
    /// Free data blocks.
    pub free_blocks: u64,
    /// Inodes in use.
    pub used_inodes: u64,
    /// Total inodes.
    pub total_inodes: u64,
}

/// Cumulative system-call counters, used for workload characterization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    /// `open` calls (including `creat`).
    pub opens: u64,
    /// `close` calls.
    pub closes: u64,
    /// `read` calls.
    pub reads: u64,
    /// `write` calls.
    pub writes: u64,
    /// `lseek` calls.
    pub seeks: u64,
    /// `stat`/`fstat` calls.
    pub stats: u64,
    /// `unlink` calls.
    pub unlinks: u64,
    /// `mkdir` calls.
    pub mkdirs: u64,
    /// `rmdir` calls.
    pub rmdirs: u64,
    /// `readdir` calls.
    pub readdirs: u64,
    /// `rename` calls.
    pub renames: u64,
    /// `truncate` calls.
    pub truncates: u64,
    /// Bytes returned by `read`.
    pub bytes_read: u64,
    /// Bytes accepted by `write`.
    pub bytes_written: u64,
}

impl OpCounters {
    /// Total system calls recorded.
    pub fn total_calls(&self) -> u64 {
        self.opens
            + self.closes
            + self.reads
            + self.writes
            + self.seeks
            + self.stats
            + self.unlinks
            + self.mkdirs
            + self.rmdirs
            + self.readdirs
            + self.renames
            + self.truncates
    }
}

/// The in-memory UNIX-like file system. See the [crate docs](crate) for an
/// example.
#[derive(Debug)]
pub struct Vfs {
    config: VfsConfig,
    clock: u64,
    inodes: Vec<Option<Inode>>,
    free_inodes: Vec<usize>,
    dirs: HashMap<Ino, BTreeMap<String, Ino>>,
    store: BlockStore,
    counters: OpCounters,
    root: Ino,
}

impl Vfs {
    /// Creates an empty file system containing only the root directory.
    pub fn new(config: VfsConfig) -> Self {
        let mut fs = Self {
            config,
            clock: 0,
            inodes: Vec::new(),
            free_inodes: Vec::new(),
            dirs: HashMap::new(),
            store: BlockStore::new(config.block_size, config.max_blocks),
            counters: OpCounters::default(),
            root: Ino(0),
        };
        let root = fs
            .alloc_inode(FileKind::Directory, 0)
            .expect("fresh fs has inode space");
        let node = fs.inode_mut(root);
        node.nlink = 2;
        fs.dirs.insert(root, BTreeMap::new());
        fs.root = root;
        fs
    }

    /// Creates a new simulated process with an empty descriptor table.
    pub fn new_process(&self) -> Process {
        Process::new(self.config.max_fds_per_process)
    }

    /// The root directory inode.
    pub fn root(&self) -> Ino {
        self.root
    }

    /// The configured geometry.
    pub fn config(&self) -> &VfsConfig {
        &self.config
    }

    /// Sets the file-system clock (microseconds); timestamps of subsequent
    /// operations use this value. The User Simulator drives it from the
    /// simulation clock.
    pub fn set_clock(&mut self, micros: u64) {
        self.clock = micros;
    }

    /// The current file-system clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Cumulative system-call counters.
    pub fn counters(&self) -> OpCounters {
        self.counters
    }

    /// Resets the system-call counters.
    pub fn reset_counters(&mut self) {
        self.counters = OpCounters::default();
    }

    /// Block-allocation statistics.
    pub fn block_stats(&self) -> BlockStats {
        self.store.stats()
    }

    /// `statfs`: capacity snapshot.
    pub fn statfs(&self) -> FsStats {
        FsStats {
            block_size: self.config.block_size as u32,
            total_blocks: self.config.max_blocks as u64,
            free_blocks: self.store.free_blocks(),
            used_inodes: self.used_inodes() as u64,
            total_inodes: self.config.max_inodes as u64,
        }
    }

    // ------------------------------------------------------------------
    // Inode plumbing
    // ------------------------------------------------------------------

    fn alloc_inode(&mut self, kind: FileKind, uid: u32) -> Result<Ino, FsError> {
        // Every `None` slot is on the free list exactly once, so the used
        // count is a subtraction — scanning the table here would make bulk
        // creation (the FSC populating millions of inodes) quadratic.
        let used = self.used_inodes();
        if used >= self.config.max_inodes {
            return Err(FsError::NoSpace);
        }
        let now = self.clock;
        if let Some(slot) = self.free_inodes.pop() {
            let ino = Ino(slot as u64);
            self.inodes[slot] = Some(Inode::new(ino, kind, uid, now));
            return Ok(ino);
        }
        let ino = Ino(self.inodes.len() as u64);
        self.inodes.push(Some(Inode::new(ino, kind, uid, now)));
        Ok(ino)
    }

    /// Live inode count in O(1): allocated slots minus the free list.
    fn used_inodes(&self) -> usize {
        self.inodes.len() - self.free_inodes.len()
    }

    fn inode(&self, ino: Ino) -> &Inode {
        self.inodes[ino.0 as usize]
            .as_ref()
            .expect("reference to freed inode")
    }

    fn inode_mut(&mut self, ino: Ino) -> &mut Inode {
        self.inodes[ino.0 as usize]
            .as_mut()
            .expect("reference to freed inode")
    }

    /// Frees an inode and its data blocks.
    fn free_inode(&mut self, ino: Ino) {
        let node = self.inodes[ino.0 as usize]
            .take()
            .expect("double free of inode");
        for block in node.blocks.into_iter().flatten() {
            self.store.free(block);
        }
        self.dirs.remove(&ino);
        self.free_inodes.push(ino.0 as usize);
    }

    fn drop_link(&mut self, ino: Ino) {
        let clock = self.clock;
        let node = self.inode_mut(ino);
        node.nlink = node.nlink.saturating_sub(1);
        node.ctime = clock;
        if node.nlink == 0 && node.open_count == 0 {
            self.free_inode(ino);
        }
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    /// Resolves a path to an inode.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for missing components, [`FsError::NotADirectory`]
    /// when a non-final component is a file, plus path-syntax errors.
    pub fn resolve(&self, path: &str) -> Result<Ino, FsError> {
        let comps = components(path)?;
        let mut cur = self.root;
        for comp in comps {
            let dir = self.dirs.get(&cur).ok_or(FsError::NotADirectory)?;
            cur = *dir.get(comp).ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `path`, returning `(dir_ino, name)`.
    fn resolve_parent<'p>(&self, path: &'p str) -> Result<(Ino, &'p str), FsError> {
        let (parent_comps, name) = split_parent(path)?;
        let mut cur = self.root;
        for comp in parent_comps {
            let dir = self.dirs.get(&cur).ok_or(FsError::NotADirectory)?;
            cur = *dir.get(comp).ok_or(FsError::NotFound)?;
        }
        if !self.dirs.contains_key(&cur) {
            return Err(FsError::NotADirectory);
        }
        Ok((cur, name))
    }

    /// Whether a path currently resolves to an object.
    pub fn exists(&self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    // ------------------------------------------------------------------
    // Directory calls
    // ------------------------------------------------------------------

    /// `mkdir(2)`: creates a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] if the name is taken, [`FsError::NoSpace`]
    /// when out of inodes, plus resolution errors for the parent.
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        self.counters.mkdirs += 1;
        let (parent, name) = self.resolve_parent(path)?;
        if self.dirs[&parent].contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.alloc_inode(FileKind::Directory, 0)?;
        self.inode_mut(ino).nlink = 2;
        self.dirs.insert(ino, BTreeMap::new());
        self.dirs
            .get_mut(&parent)
            .expect("parent checked")
            .insert(name.to_string(), ino);
        let clock = self.clock;
        let p = self.inode_mut(parent);
        p.nlink += 1;
        p.mtime = clock;
        p.size += 1;
        Ok(())
    }

    /// Creates every missing directory along `path` (like `mkdir -p`).
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] if an existing component is a file, plus
    /// allocation errors.
    pub fn mkdir_all(&mut self, path: &str) -> Result<(), FsError> {
        let comps = components(path)?;
        let mut cur = String::new();
        for comp in comps {
            cur.push('/');
            cur.push_str(comp);
            match self.mkdir(&cur) {
                Ok(()) | Err(FsError::AlreadyExists) => {
                    if !self.dirs.contains_key(&self.resolve(&cur)?) {
                        return Err(FsError::NotADirectory);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// `rmdir(2)`: removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::DirectoryNotEmpty`] if it has entries, [`FsError::Busy`]
    /// for the root, [`FsError::NotADirectory`] for files.
    pub fn rmdir(&mut self, path: &str) -> Result<(), FsError> {
        self.counters.rmdirs += 1;
        let ino = self.resolve(path)?;
        if ino == self.root {
            return Err(FsError::Busy);
        }
        let entries = self.dirs.get(&ino).ok_or(FsError::NotADirectory)?;
        if !entries.is_empty() {
            return Err(FsError::DirectoryNotEmpty);
        }
        let (parent, name) = self.resolve_parent(path)?;
        self.dirs
            .get_mut(&parent)
            .expect("parent checked")
            .remove(name);
        let clock = self.clock;
        let p = self.inode_mut(parent);
        p.nlink -= 1;
        p.mtime = clock;
        p.size = p.size.saturating_sub(1);
        // Directories have nlink 2 when empty; force the free.
        self.inode_mut(ino).nlink = 0;
        self.free_inode(ino);
        Ok(())
    }

    /// `readdir`: lists a directory in name order.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] when `path` is a file, plus resolution
    /// errors.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<DirEntry>, FsError> {
        self.counters.readdirs += 1;
        let ino = self.resolve(path)?;
        let entries = self.dirs.get(&ino).ok_or(FsError::NotADirectory)?;
        let out = entries
            .iter()
            .map(|(name, &child)| DirEntry {
                name: name.clone(),
                ino: child,
                kind: self.inode(child).kind,
            })
            .collect();
        let clock = self.clock;
        self.inode_mut(ino).atime = clock;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // File calls
    // ------------------------------------------------------------------

    /// `open(2)`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] without `create`, [`FsError::AlreadyExists`]
    /// with `exclusive`, [`FsError::IsADirectory`] when opening a directory
    /// for writing, [`FsError::TooManyOpenFiles`] when the process table is
    /// full, [`FsError::InvalidArgument`] for flags with neither read nor
    /// write access.
    pub fn open(
        &mut self,
        proc: &mut Process,
        path: &str,
        flags: OpenFlags,
    ) -> Result<Fd, FsError> {
        self.counters.opens += 1;
        if !flags.read && !flags.write {
            return Err(FsError::InvalidArgument);
        }
        let ino = match self.resolve(path) {
            Ok(ino) => {
                if flags.create && flags.exclusive {
                    return Err(FsError::AlreadyExists);
                }
                ino
            }
            Err(FsError::NotFound) if flags.create => {
                let (parent, name) = self.resolve_parent(path)?;
                let ino = self.alloc_inode(FileKind::Regular, 0)?;
                self.dirs
                    .get_mut(&parent)
                    .expect("parent checked")
                    .insert(name.to_string(), ino);
                let clock = self.clock;
                let p = self.inode_mut(parent);
                p.mtime = clock;
                p.size += 1;
                ino
            }
            Err(e) => return Err(e),
        };
        if self.inode(ino).kind == FileKind::Directory {
            if flags.write {
                return Err(FsError::IsADirectory);
            }
            // Reading a directory through read(2) is not supported.
            return Err(FsError::IsADirectory);
        }
        if flags.truncate {
            self.truncate_inode(ino, 0)?;
        }
        let open = OpenFile {
            ino,
            offset: 0,
            flags,
        };
        let fd = proc.insert(open).ok_or(FsError::TooManyOpenFiles)?;
        let clock = self.clock;
        let node = self.inode_mut(ino);
        node.open_count += 1;
        node.atime = clock;
        Ok(fd)
    }

    /// `creat(2)`: shorthand for `open` with create+write+truncate.
    ///
    /// # Errors
    ///
    /// Same as [`Vfs::open`].
    pub fn creat(&mut self, proc: &mut Process, path: &str) -> Result<Fd, FsError> {
        self.open(proc, path, OpenFlags::create_write())
    }

    /// `close(2)`.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] for an unknown descriptor.
    pub fn close(&mut self, proc: &mut Process, fd: Fd) -> Result<(), FsError> {
        self.counters.closes += 1;
        let open = proc.remove(fd).ok_or(FsError::BadFd)?;
        let node = self.inode_mut(open.ino);
        node.open_count = node.open_count.saturating_sub(1);
        if node.nlink == 0 && node.open_count == 0 {
            self.free_inode(open.ino);
        }
        Ok(())
    }

    /// `read(2)`: reads up to `buf.len()` bytes at the descriptor's cursor.
    /// Returns the number of bytes read; 0 at end-of-file.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] / [`FsError::BadAccessMode`] for bad descriptors.
    pub fn read(&mut self, proc: &mut Process, fd: Fd, buf: &mut [u8]) -> Result<usize, FsError> {
        self.counters.reads += 1;
        let open = proc.get_mut(fd).ok_or(FsError::BadFd)?;
        if !open.flags.read {
            return Err(FsError::BadAccessMode);
        }
        let (ino, offset) = (open.ino, open.offset);
        let n = self.read_at(ino, offset, buf);
        open.offset += n as u64;
        let clock = self.clock;
        self.inode_mut(ino).atime = clock;
        self.counters.bytes_read += n as u64;
        Ok(n)
    }

    /// `write(2)`: writes `data` at the descriptor's cursor (or at EOF with
    /// append mode). Returns the number of bytes written, which may be short
    /// if the device fills mid-write.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] / [`FsError::BadAccessMode`] for bad descriptors,
    /// [`FsError::NoSpace`] when nothing could be written,
    /// [`FsError::FileTooLarge`] beyond the maximum file size.
    pub fn write(&mut self, proc: &mut Process, fd: Fd, data: &[u8]) -> Result<usize, FsError> {
        self.counters.writes += 1;
        let open = proc.get_mut(fd).ok_or(FsError::BadFd)?;
        if !open.flags.write {
            return Err(FsError::BadAccessMode);
        }
        let ino = open.ino;
        let offset = if open.flags.append {
            self.inode(ino).size
        } else {
            open.offset
        };
        if offset.saturating_add(data.len() as u64) > self.config.max_file_size {
            return Err(FsError::FileTooLarge);
        }
        let n = self.write_at(ino, offset, data)?;
        let open = proc.get_mut(fd).expect("still open");
        open.offset = offset + n as u64;
        let clock = self.clock;
        let node = self.inode_mut(ino);
        node.mtime = clock;
        node.ctime = clock;
        self.counters.bytes_written += n as u64;
        Ok(n)
    }

    /// `lseek(2)`: repositions the cursor; returns the new offset.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] for unknown descriptors,
    /// [`FsError::InvalidArgument`] for seeks before the start of the file.
    pub fn lseek(&mut self, proc: &mut Process, fd: Fd, pos: SeekFrom) -> Result<u64, FsError> {
        self.counters.seeks += 1;
        let size = {
            let open = proc.get(fd).ok_or(FsError::BadFd)?;
            self.inode(open.ino).size
        };
        let open = proc.get_mut(fd).ok_or(FsError::BadFd)?;
        let new = match pos {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::Current(d) => open.offset as i128 + d as i128,
            SeekFrom::End(d) => size as i128 + d as i128,
        };
        if new < 0 || new > u64::MAX as i128 {
            return Err(FsError::InvalidArgument);
        }
        open.offset = new as u64;
        Ok(open.offset)
    }

    /// `stat(2)`.
    ///
    /// # Errors
    ///
    /// Resolution errors for `path`.
    pub fn stat(&mut self, path: &str) -> Result<Metadata, FsError> {
        self.counters.stats += 1;
        let ino = self.resolve(path)?;
        Ok(self.inode(ino).metadata(self.config.block_size))
    }

    /// `fstat(2)`.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] for unknown descriptors.
    pub fn fstat(&mut self, proc: &Process, fd: Fd) -> Result<Metadata, FsError> {
        self.counters.stats += 1;
        let open = proc.get(fd).ok_or(FsError::BadFd)?;
        Ok(self.inode(open.ino).metadata(self.config.block_size))
    }

    /// `unlink(2)`: removes a file name. Data is freed when the last open
    /// descriptor closes.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories (use [`Vfs::rmdir`]), plus
    /// resolution errors.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        self.counters.unlinks += 1;
        let ino = self.resolve(path)?;
        if self.inode(ino).kind == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        let (parent, name) = self.resolve_parent(path)?;
        self.dirs
            .get_mut(&parent)
            .expect("parent checked")
            .remove(name)
            .ok_or(FsError::NotFound)?;
        let clock = self.clock;
        let p = self.inode_mut(parent);
        p.mtime = clock;
        p.size = p.size.saturating_sub(1);
        self.drop_link(ino);
        Ok(())
    }

    /// `rename(2)`: moves `old` to `new`, replacing an existing file at
    /// `new` (but never a directory).
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] when `new` names an existing directory,
    /// [`FsError::InvalidArgument`] when moving a directory into its own
    /// subtree, plus resolution errors.
    pub fn rename(&mut self, old: &str, new: &str) -> Result<(), FsError> {
        self.counters.renames += 1;
        let ino = self.resolve(old)?;
        if ino == self.root {
            return Err(FsError::Busy);
        }
        let (old_parent, old_name) = self.resolve_parent(old)?;
        let (new_parent, new_name) = self.resolve_parent(new)?;
        if old_parent == new_parent && old_name == new_name {
            return Ok(());
        }
        let is_dir = self.inode(ino).kind == FileKind::Directory;
        if is_dir && self.is_same_or_descendant(ino, new_parent) {
            return Err(FsError::InvalidArgument);
        }
        // Handle an existing target.
        if let Some(&target) = self.dirs[&new_parent].get(new_name) {
            if self.inode(target).kind == FileKind::Directory {
                return Err(FsError::IsADirectory);
            }
            if target == ino {
                // Hard-link aliasing cannot happen (no link(2)); same-file
                // rename to a different parent entry: remove old name below.
            } else {
                self.dirs
                    .get_mut(&new_parent)
                    .expect("parent checked")
                    .remove(new_name);
                self.drop_link(target);
            }
        }
        self.dirs
            .get_mut(&old_parent)
            .expect("parent checked")
            .remove(old_name);
        self.dirs
            .get_mut(&new_parent)
            .expect("parent checked")
            .insert(new_name.to_string(), ino);
        let clock = self.clock;
        if old_parent != new_parent {
            if is_dir {
                self.inode_mut(old_parent).nlink -= 1;
                self.inode_mut(new_parent).nlink += 1;
            }
            self.inode_mut(old_parent).size = self.inode(old_parent).size.saturating_sub(1);
            self.inode_mut(new_parent).size += 1;
        }
        self.inode_mut(old_parent).mtime = clock;
        self.inode_mut(new_parent).mtime = clock;
        self.inode_mut(ino).ctime = clock;
        Ok(())
    }

    /// `truncate(2)`: sets the file length, freeing or holing blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories,
    /// [`FsError::FileTooLarge`] beyond the maximum file size, plus
    /// resolution errors.
    pub fn truncate(&mut self, path: &str, len: u64) -> Result<(), FsError> {
        self.counters.truncates += 1;
        let ino = self.resolve(path)?;
        if self.inode(ino).kind == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        if len > self.config.max_file_size {
            return Err(FsError::FileTooLarge);
        }
        self.truncate_inode(ino, len)?;
        let clock = self.clock;
        let node = self.inode_mut(ino);
        node.mtime = clock;
        node.ctime = clock;
        Ok(())
    }

    /// Reads a whole file by path (a convenience wrapper over
    /// open/read/close, used by tests and examples).
    ///
    /// # Errors
    ///
    /// Same as the underlying calls.
    pub fn read_file(&mut self, path: &str) -> Result<Vec<u8>, FsError> {
        let mut proc = self.new_process();
        let fd = self.open(&mut proc, path, OpenFlags::read_only())?;
        let size = self.fstat(&proc, fd)?.size as usize;
        let mut buf = vec![0u8; size];
        let mut done = 0;
        while done < size {
            let n = self.read(&mut proc, fd, &mut buf[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        self.close(&mut proc, fd)?;
        buf.truncate(done);
        Ok(buf)
    }

    /// Writes a whole file by path, creating or replacing it (a convenience
    /// wrapper over creat/write/close).
    ///
    /// # Errors
    ///
    /// Same as the underlying calls.
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let mut proc = self.new_process();
        let fd = self.creat(&mut proc, path)?;
        let mut done = 0;
        while done < data.len() {
            let n = self.write(&mut proc, fd, &data[done..])?;
            done += n;
        }
        self.close(&mut proc, fd)
    }

    // ------------------------------------------------------------------
    // Data plumbing
    // ------------------------------------------------------------------

    fn read_at(&self, ino: Ino, offset: u64, buf: &mut [u8]) -> usize {
        let node = self.inode(ino);
        if offset >= node.size {
            return 0;
        }
        let n = buf.len().min((node.size - offset) as usize);
        let bs = self.config.block_size as u64;
        let mut done = 0usize;
        while done < n {
            let pos = offset + done as u64;
            let block_idx = (pos / bs) as usize;
            let in_block = (pos % bs) as usize;
            let chunk = (n - done).min(bs as usize - in_block);
            match node.blocks.get(block_idx).copied().flatten() {
                Some(id) => {
                    let data = self.store.data(id);
                    buf[done..done + chunk].copy_from_slice(&data[in_block..in_block + chunk]);
                }
                None => {
                    // Hole: zeros.
                    buf[done..done + chunk].fill(0);
                }
            }
            done += chunk;
        }
        n
    }

    fn write_at(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        let bs = self.config.block_size as u64;
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let block_idx = (pos / bs) as usize;
            let in_block = (pos % bs) as usize;
            let chunk = (data.len() - done).min(bs as usize - in_block);
            // Ensure the block exists.
            if self.inode(ino).blocks.len() <= block_idx {
                self.inode_mut(ino).blocks.resize(block_idx + 1, None);
            }
            if self.inode(ino).blocks[block_idx].is_none() {
                match self.store.alloc() {
                    Ok(id) => self.inode_mut(ino).blocks[block_idx] = Some(id),
                    Err(e) => {
                        return if done > 0 {
                            self.bump_size(ino, offset + done as u64);
                            Ok(done)
                        } else {
                            Err(e)
                        };
                    }
                }
            }
            let id = self.inode(ino).blocks[block_idx].expect("just ensured");
            let block = self.store.data_mut(id);
            block[in_block..in_block + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
        }
        self.bump_size(ino, offset + done as u64);
        Ok(done)
    }

    fn bump_size(&mut self, ino: Ino, end: u64) {
        let node = self.inode_mut(ino);
        if end > node.size {
            node.size = end;
        }
    }

    fn truncate_inode(&mut self, ino: Ino, len: u64) -> Result<(), FsError> {
        let bs = self.config.block_size as u64;
        let keep_blocks = (len.div_ceil(bs)) as usize;
        let freed: Vec<_> = {
            let node = self.inode_mut(ino);
            if node.blocks.len() > keep_blocks {
                node.blocks.drain(keep_blocks..).flatten().collect()
            } else {
                Vec::new()
            }
        };
        for id in freed {
            self.store.free(id);
        }
        // Zero the tail of the boundary block so re-extension reads zeros.
        let node_size = self.inode(ino).size;
        if len < node_size && !len.is_multiple_of(bs) {
            if let Some(Some(id)) = self.inode(ino).blocks.get(keep_blocks - 1).copied() {
                let from = (len % bs) as usize;
                self.store.data_mut(id)[from..].fill(0);
            }
        }
        self.inode_mut(ino).size = len;
        Ok(())
    }

    /// Whether `candidate` is `dir` itself or lives anywhere below it.
    fn is_same_or_descendant(&self, dir: Ino, candidate: Ino) -> bool {
        if dir == candidate {
            return true;
        }
        let Some(entries) = self.dirs.get(&dir) else {
            return false;
        };
        entries.values().any(|&child| {
            self.dirs.contains_key(&child) && self.is_same_or_descendant(child, candidate)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Vfs {
        Vfs::new(VfsConfig::default())
    }

    fn small_fs() -> Vfs {
        Vfs::new(VfsConfig {
            block_size: 128,
            max_blocks: 8,
            max_inodes: 16,
            max_fds_per_process: 4,
            max_file_size: 4096,
        })
    }

    #[test]
    fn fresh_fs_has_empty_root() {
        let mut f = fs();
        assert_eq!(f.readdir("/").unwrap(), vec![]);
        assert!(f.exists("/"));
        let st = f.statfs();
        assert_eq!(st.used_inodes, 1);
        assert_eq!(st.free_blocks, st.total_blocks);
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut f = fs();
        let mut p = f.new_process();
        let fd = f.creat(&mut p, "/a.txt").unwrap();
        assert_eq!(f.write(&mut p, fd, b"hello world").unwrap(), 11);
        f.close(&mut p, fd).unwrap();
        assert_eq!(f.read_file("/a.txt").unwrap(), b"hello world");
        assert_eq!(f.stat("/a.txt").unwrap().size, 11);
    }

    #[test]
    fn multi_block_files() {
        let mut f = small_fs(); // 128-byte blocks
        let data: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
        f.write_file("/big", &data).unwrap();
        assert_eq!(f.read_file("/big").unwrap(), data);
        assert_eq!(f.stat("/big").unwrap().blocks, 5); // ceil(600/128)
    }

    #[test]
    fn sequential_reads_advance_cursor() {
        let mut f = fs();
        f.write_file("/seq", b"abcdefghij").unwrap();
        let mut p = f.new_process();
        let fd = f.open(&mut p, "/seq", OpenFlags::read_only()).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(f.read(&mut p, fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"abcd");
        assert_eq!(f.read(&mut p, fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"efgh");
        assert_eq!(f.read(&mut p, fd, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ij");
        assert_eq!(f.read(&mut p, fd, &mut buf).unwrap(), 0, "EOF");
        f.close(&mut p, fd).unwrap();
    }

    #[test]
    fn lseek_moves_cursor_and_creates_holes() {
        let mut f = fs();
        let mut p = f.new_process();
        let fd = f.creat(&mut p, "/holey").unwrap();
        f.write(&mut p, fd, b"head").unwrap();
        f.lseek(&mut p, fd, SeekFrom::Start(100_000)).unwrap();
        f.write(&mut p, fd, b"tail").unwrap();
        f.close(&mut p, fd).unwrap();
        let data = f.read_file("/holey").unwrap();
        assert_eq!(data.len(), 100_004);
        assert_eq!(&data[..4], b"head");
        assert!(data[4..100_000].iter().all(|&b| b == 0));
        assert_eq!(&data[100_000..], b"tail");
        // Only the two touched blocks are allocated; the hole costs nothing.
        let md = f.stat("/holey").unwrap();
        assert_eq!(md.blocks, 2);
        assert!(md.blocks < md.size / u64::from(md.block_size) + 1);
    }

    #[test]
    fn lseek_variants() {
        let mut f = fs();
        f.write_file("/s", b"0123456789").unwrap();
        let mut p = f.new_process();
        let fd = f.open(&mut p, "/s", OpenFlags::read_only()).unwrap();
        assert_eq!(f.lseek(&mut p, fd, SeekFrom::End(-3)).unwrap(), 7);
        assert_eq!(f.lseek(&mut p, fd, SeekFrom::Current(2)).unwrap(), 9);
        assert_eq!(
            f.lseek(&mut p, fd, SeekFrom::Current(-100)),
            Err(FsError::InvalidArgument)
        );
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let mut f = fs();
        f.write_file("/log", b"one\n").unwrap();
        let mut p = f.new_process();
        let fd = f.open(&mut p, "/log", OpenFlags::append_only()).unwrap();
        f.write(&mut p, fd, b"two\n").unwrap();
        f.close(&mut p, fd).unwrap();
        assert_eq!(f.read_file("/log").unwrap(), b"one\ntwo\n");
    }

    #[test]
    fn open_flags_validated() {
        let mut f = fs();
        let mut p = f.new_process();
        let none = OpenFlags {
            read: false,
            write: false,
            create: false,
            truncate: false,
            append: false,
            exclusive: false,
        };
        assert_eq!(f.open(&mut p, "/x", none), Err(FsError::InvalidArgument));
        assert_eq!(
            f.open(&mut p, "/missing", OpenFlags::read_only()),
            Err(FsError::NotFound)
        );
        f.write_file("/x", b"..").unwrap();
        let fd = f.open(&mut p, "/x", OpenFlags::read_only()).unwrap();
        assert_eq!(f.write(&mut p, fd, b"no"), Err(FsError::BadAccessMode));
        let mut buf = [0u8; 1];
        let wfd = f.open(&mut p, "/x", OpenFlags::create_write()).unwrap();
        assert_eq!(f.read(&mut p, wfd, &mut buf), Err(FsError::BadAccessMode));
    }

    #[test]
    fn exclusive_create() {
        let mut f = fs();
        let mut p = f.new_process();
        let flags = OpenFlags::create_write().with_exclusive();
        let fd = f.open(&mut p, "/once", flags).unwrap();
        f.close(&mut p, fd).unwrap();
        assert_eq!(f.open(&mut p, "/once", flags), Err(FsError::AlreadyExists));
    }

    #[test]
    fn truncate_on_open_clears_data() {
        let mut f = fs();
        f.write_file("/t", b"old contents").unwrap();
        f.write_file("/t", b"new").unwrap(); // creat truncates
        assert_eq!(f.read_file("/t").unwrap(), b"new");
    }

    #[test]
    fn directories_nest_and_list() {
        let mut f = fs();
        f.mkdir("/a").unwrap();
        f.mkdir("/a/b").unwrap();
        f.write_file("/a/b/f1", b"1").unwrap();
        f.write_file("/a/b/f2", b"2").unwrap();
        let names: Vec<String> = f
            .readdir("/a/b")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["f1", "f2"]);
        assert!(f.stat("/a/b").unwrap().is_dir());
        assert_eq!(f.stat("/a").unwrap().nlink, 3); // ., .., b
    }

    #[test]
    fn mkdir_all_builds_chains() {
        let mut f = fs();
        f.mkdir_all("/u/kao/projects").unwrap();
        assert!(f.exists("/u/kao/projects"));
        // Idempotent.
        f.mkdir_all("/u/kao/projects").unwrap();
        // File in the way.
        f.write_file("/u/file", b"x").unwrap();
        assert!(f.mkdir_all("/u/file/sub").is_err());
    }

    #[test]
    fn mkdir_errors() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        assert_eq!(f.mkdir("/d"), Err(FsError::AlreadyExists));
        assert_eq!(f.mkdir("/missing/child"), Err(FsError::NotFound));
        assert_eq!(f.mkdir("/"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn rmdir_semantics() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        f.write_file("/d/f", b"x").unwrap();
        assert_eq!(f.rmdir("/d"), Err(FsError::DirectoryNotEmpty));
        f.unlink("/d/f").unwrap();
        f.rmdir("/d").unwrap();
        assert!(!f.exists("/d"));
        assert_eq!(f.rmdir("/"), Err(FsError::Busy));
        f.write_file("/f", b"x").unwrap();
        assert_eq!(f.rmdir("/f"), Err(FsError::NotADirectory));
    }

    #[test]
    fn unlink_frees_space() {
        let mut f = small_fs();
        f.write_file("/a", &[1u8; 256]).unwrap(); // 2 blocks
        let before = f.statfs().free_blocks;
        f.unlink("/a").unwrap();
        assert_eq!(f.statfs().free_blocks, before + 2);
        assert_eq!(f.unlink("/a"), Err(FsError::NotFound));
        f.mkdir("/d").unwrap();
        assert_eq!(f.unlink("/d"), Err(FsError::IsADirectory));
    }

    #[test]
    fn unlinked_open_file_remains_readable() {
        // The TEMP usage class: creat, write, unlink, keep reading.
        let mut f = fs();
        let mut p = f.new_process();
        let fd = f.creat(&mut p, "/tmp1").unwrap();
        f.write(&mut p, fd, b"scratch").unwrap();
        f.unlink("/tmp1").unwrap();
        assert!(!f.exists("/tmp1"));
        f.lseek(&mut p, fd, SeekFrom::Start(0)).unwrap();
        // fd was write-only (creat); fstat still works and data is retained.
        assert_eq!(f.fstat(&p, fd).unwrap().size, 7);
        let allocated_before = f.block_stats().allocated;
        assert!(allocated_before > 0);
        f.close(&mut p, fd).unwrap();
        // Now the data is gone.
        assert_eq!(f.block_stats().allocated, 0);
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut f = fs();
        f.mkdir("/a").unwrap();
        f.mkdir("/b").unwrap();
        f.write_file("/a/f", b"payload").unwrap();
        f.rename("/a/f", "/b/g").unwrap();
        assert!(!f.exists("/a/f"));
        assert_eq!(f.read_file("/b/g").unwrap(), b"payload");
        // Replace existing file.
        f.write_file("/b/h", b"old").unwrap();
        f.rename("/b/g", "/b/h").unwrap();
        assert_eq!(f.read_file("/b/h").unwrap(), b"payload");
        // Renaming onto a directory fails.
        f.write_file("/x", b"x").unwrap();
        assert_eq!(f.rename("/x", "/a"), Err(FsError::IsADirectory));
    }

    #[test]
    fn rename_directory_updates_links() {
        let mut f = fs();
        f.mkdir("/a").unwrap();
        f.mkdir("/b").unwrap();
        f.mkdir("/a/sub").unwrap();
        let a_links = f.stat("/a").unwrap().nlink;
        f.rename("/a/sub", "/b/sub").unwrap();
        assert_eq!(f.stat("/a").unwrap().nlink, a_links - 1);
        assert!(f.exists("/b/sub"));
    }

    #[test]
    fn rename_into_own_subtree_rejected() {
        let mut f = fs();
        f.mkdir_all("/d/inner").unwrap();
        assert_eq!(f.rename("/d", "/d/inner/d2"), Err(FsError::InvalidArgument));
        assert_eq!(f.rename("/", "/d/root"), Err(FsError::Busy));
    }

    #[test]
    fn rename_to_same_path_is_noop() {
        let mut f = fs();
        f.write_file("/same", b"x").unwrap();
        f.rename("/same", "/same").unwrap();
        assert_eq!(f.read_file("/same").unwrap(), b"x");
    }

    #[test]
    fn truncate_shrinks_and_grows() {
        let mut f = small_fs();
        f.write_file("/t", &[7u8; 300]).unwrap();
        f.truncate("/t", 100).unwrap();
        assert_eq!(f.stat("/t").unwrap().size, 100);
        let data = f.read_file("/t").unwrap();
        assert!(data.iter().all(|&b| b == 7));
        // Grow back: the new tail must be zeros, not stale data.
        f.truncate("/t", 300).unwrap();
        let data = f.read_file("/t").unwrap();
        assert_eq!(data.len(), 300);
        assert!(data[..100].iter().all(|&b| b == 7));
        assert!(data[100..].iter().all(|&b| b == 0), "stale data leaked");
    }

    #[test]
    fn no_space_behaviour() {
        let mut f = small_fs(); // 8 blocks of 128 B
        let mut p = f.new_process();
        let fd = f.creat(&mut p, "/fill").unwrap();
        // 8 * 128 = 1024 bytes fit; the rest doesn't.
        let n = f.write(&mut p, fd, &[1u8; 2048]).unwrap();
        assert_eq!(n, 1024, "short write at device full");
        assert_eq!(f.write(&mut p, fd, &[1u8; 10]), Err(FsError::NoSpace));
        f.close(&mut p, fd).unwrap();
        f.unlink("/fill").unwrap();
        assert_eq!(f.statfs().free_blocks, 8);
    }

    #[test]
    fn max_file_size_enforced() {
        let mut f = small_fs(); // max_file_size 4096
        let mut p = f.new_process();
        let fd = f.creat(&mut p, "/cap").unwrap();
        f.lseek(&mut p, fd, SeekFrom::Start(4090)).unwrap();
        assert_eq!(f.write(&mut p, fd, &[0u8; 100]), Err(FsError::FileTooLarge));
        assert_eq!(f.truncate("/cap", 1 << 32), Err(FsError::FileTooLarge));
    }

    #[test]
    fn inode_exhaustion() {
        let mut f = small_fs(); // 16 inodes, 1 used by root
        for i in 0..15 {
            f.write_file(&format!("/f{i}"), b"").unwrap();
        }
        assert_eq!(f.write_file("/one-too-many", b""), Err(FsError::NoSpace));
        f.unlink("/f0").unwrap();
        f.write_file("/now-fits", b"").unwrap();
    }

    #[test]
    fn fd_exhaustion() {
        let mut f = small_fs(); // 4 fds per process
        let mut p = f.new_process();
        for i in 0..4 {
            f.write_file(&format!("/f{i}"), b"x").unwrap();
        }
        let mut fds = Vec::new();
        for i in 0..4 {
            fds.push(
                f.open(&mut p, &format!("/f{i}"), OpenFlags::read_only())
                    .unwrap(),
            );
        }
        assert_eq!(
            f.open(&mut p, "/f0", OpenFlags::read_only()),
            Err(FsError::TooManyOpenFiles)
        );
        f.close(&mut p, fds[0]).unwrap();
        assert!(f.open(&mut p, "/f0", OpenFlags::read_only()).is_ok());
    }

    #[test]
    fn opening_directory_for_io_fails() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        let mut p = f.new_process();
        assert_eq!(
            f.open(&mut p, "/d", OpenFlags::read_only()),
            Err(FsError::IsADirectory)
        );
        assert_eq!(
            f.open(&mut p, "/d", OpenFlags::create_write()),
            Err(FsError::IsADirectory)
        );
    }

    #[test]
    fn path_traversal_through_file_fails() {
        let mut f = fs();
        f.write_file("/notdir", b"x").unwrap();
        assert_eq!(f.stat("/notdir/child"), Err(FsError::NotADirectory));
        assert_eq!(f.resolve("/notdir/child"), Err(FsError::NotADirectory));
    }

    #[test]
    fn timestamps_track_clock() {
        let mut f = fs();
        f.set_clock(1_000);
        f.write_file("/ts", b"v1").unwrap();
        let created = f.stat("/ts").unwrap();
        assert_eq!(created.mtime, 1_000);
        f.set_clock(2_000);
        let mut p = f.new_process();
        let fd = f.open(&mut p, "/ts", OpenFlags::read_only()).unwrap();
        let mut b = [0u8; 2];
        f.read(&mut p, fd, &mut b).unwrap();
        f.close(&mut p, fd).unwrap();
        let after_read = f.stat("/ts").unwrap();
        assert_eq!(after_read.atime, 2_000);
        assert_eq!(after_read.mtime, 1_000, "read must not touch mtime");
        assert_eq!(f.clock(), 2_000);
    }

    #[test]
    fn counters_track_operations() {
        let mut f = fs();
        let mut p = f.new_process();
        let fd = f.creat(&mut p, "/c").unwrap();
        f.write(&mut p, fd, b"12345").unwrap();
        f.lseek(&mut p, fd, SeekFrom::Start(0)).unwrap();
        f.close(&mut p, fd).unwrap();
        let fd = f.open(&mut p, "/c", OpenFlags::read_only()).unwrap();
        let mut buf = [0u8; 5];
        f.read(&mut p, fd, &mut buf).unwrap();
        f.close(&mut p, fd).unwrap();
        f.stat("/c").unwrap();
        f.unlink("/c").unwrap();
        let c = f.counters();
        assert_eq!(c.opens, 2);
        assert_eq!(c.closes, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.reads, 1);
        assert_eq!(c.seeks, 1);
        assert_eq!(c.stats, 1);
        assert_eq!(c.unlinks, 1);
        assert_eq!(c.bytes_written, 5);
        assert_eq!(c.bytes_read, 5);
        assert_eq!(c.total_calls(), 9);
        f.reset_counters();
        assert_eq!(f.counters().total_calls(), 0);
    }

    #[test]
    fn dot_and_dotdot_resolution() {
        let mut f = fs();
        f.mkdir_all("/a/b").unwrap();
        f.write_file("/a/b/f", b"x").unwrap();
        assert!(f.exists("/a/./b/../b/f"));
        assert!(f.exists("/../a/b/f"));
    }

    #[test]
    fn two_processes_have_independent_cursors() {
        let mut f = fs();
        f.write_file("/shared", b"abcdef").unwrap();
        let mut p1 = f.new_process();
        let mut p2 = f.new_process();
        let fd1 = f.open(&mut p1, "/shared", OpenFlags::read_only()).unwrap();
        let fd2 = f.open(&mut p2, "/shared", OpenFlags::read_only()).unwrap();
        let mut b1 = [0u8; 3];
        let mut b2 = [0u8; 6];
        f.read(&mut p1, fd1, &mut b1).unwrap();
        f.read(&mut p2, fd2, &mut b2).unwrap();
        assert_eq!(&b1, b"abc");
        assert_eq!(&b2, b"abcdef");
    }
}
