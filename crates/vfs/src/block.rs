//! The block store: fixed-size data blocks with a free list and a capacity
//! limit, giving the file system real `ENOSPC` behaviour and allocation
//! statistics.

use crate::FsError;

/// Identifier of one block in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BlockId(u32);

/// Allocation statistics of the block store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockStats {
    /// Blocks currently allocated to files.
    pub allocated: u64,
    /// Lifetime allocation count.
    pub total_allocations: u64,
    /// Lifetime free count.
    pub total_frees: u64,
}

/// A pool of fixed-size data blocks.
#[derive(Debug)]
pub(crate) struct BlockStore {
    block_size: usize,
    max_blocks: usize,
    blocks: Vec<Option<Box<[u8]>>>,
    free: Vec<BlockId>,
    stats: BlockStats,
}

impl BlockStore {
    pub(crate) fn new(block_size: usize, max_blocks: usize) -> Self {
        assert!(block_size >= 64, "block size unrealistically small");
        Self {
            block_size,
            max_blocks,
            blocks: Vec::new(),
            free: Vec::new(),
            stats: BlockStats::default(),
        }
    }

    #[cfg(test)]
    pub(crate) fn block_size(&self) -> usize {
        self.block_size
    }

    #[cfg(test)]
    pub(crate) fn allocated(&self) -> u64 {
        self.stats.allocated
    }

    pub(crate) fn free_blocks(&self) -> u64 {
        (self.max_blocks as u64).saturating_sub(self.stats.allocated)
    }

    pub(crate) fn stats(&self) -> BlockStats {
        self.stats
    }

    /// Allocates a zeroed block.
    pub(crate) fn alloc(&mut self) -> Result<BlockId, FsError> {
        if self.stats.allocated as usize >= self.max_blocks {
            return Err(FsError::NoSpace);
        }
        self.stats.allocated += 1;
        self.stats.total_allocations += 1;
        if let Some(id) = self.free.pop() {
            self.blocks[id.0 as usize] = Some(vec![0u8; self.block_size].into_boxed_slice());
            return Ok(id);
        }
        let id = BlockId(self.blocks.len() as u32);
        self.blocks
            .push(Some(vec![0u8; self.block_size].into_boxed_slice()));
        Ok(id)
    }

    /// Returns a block to the free list.
    pub(crate) fn free(&mut self, id: BlockId) {
        let slot = &mut self.blocks[id.0 as usize];
        debug_assert!(slot.is_some(), "double free of block {id:?}");
        *slot = None;
        self.free.push(id);
        self.stats.allocated -= 1;
        self.stats.total_frees += 1;
    }

    pub(crate) fn data(&self, id: BlockId) -> &[u8] {
        self.blocks[id.0 as usize]
            .as_deref()
            .expect("access to freed block")
    }

    pub(crate) fn data_mut(&mut self, id: BlockId) -> &mut [u8] {
        self.blocks[id.0 as usize]
            .as_deref_mut()
            .expect("access to freed block")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_cycle() {
        let mut s = BlockStore::new(4096, 4);
        let a = s.alloc().unwrap();
        let b = s.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(s.allocated(), 2);
        assert_eq!(s.free_blocks(), 2);
        s.free(a);
        assert_eq!(s.allocated(), 1);
        let c = s.alloc().unwrap();
        assert_eq!(c, a, "freed block is reused");
        assert_eq!(s.stats().total_allocations, 3);
        assert_eq!(s.stats().total_frees, 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut s = BlockStore::new(128, 2);
        s.alloc().unwrap();
        s.alloc().unwrap();
        assert_eq!(s.alloc(), Err(FsError::NoSpace));
        // Freeing restores capacity.
        let id = BlockId(0);
        s.free(id);
        assert!(s.alloc().is_ok());
    }

    #[test]
    fn blocks_are_zeroed_on_alloc() {
        let mut s = BlockStore::new(128, 2);
        let a = s.alloc().unwrap();
        s.data_mut(a).fill(0xAB);
        s.free(a);
        let b = s.alloc().unwrap();
        assert_eq!(b, a);
        assert!(
            s.data(b).iter().all(|&x| x == 0),
            "recycled block must be zeroed"
        );
    }

    #[test]
    fn data_round_trips() {
        let mut s = BlockStore::new(128, 1);
        let a = s.alloc().unwrap();
        s.data_mut(a)[..5].copy_from_slice(b"hello");
        assert_eq!(&s.data(a)[..5], b"hello");
        assert_eq!(s.block_size(), 128);
    }

    #[test]
    #[should_panic(expected = "unrealistically small")]
    fn tiny_blocks_rejected() {
        let _ = BlockStore::new(16, 4);
    }
}
