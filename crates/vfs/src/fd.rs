//! File descriptors, open flags and per-process descriptor tables.

use crate::inode::Ino;
use serde::{Deserialize, Serialize};

/// A file descriptor, valid within the [`Process`] that opened it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fd(pub(crate) u32);

impl Fd {
    /// The raw descriptor number.
    pub fn number(self) -> u32 {
        self.0
    }
}

/// Open mode flags, the subset of `open(2)` the workload model generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate to zero length on open (requires `write`).
    pub truncate: bool,
    /// Position every write at end-of-file.
    pub append: bool,
    /// With `create`: fail if the file already exists (`O_EXCL`).
    pub exclusive: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        Self {
            read: true,
            write: false,
            create: false,
            truncate: false,
            append: false,
            exclusive: false,
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — the classic `creat(2)`.
    pub fn create_write() -> Self {
        Self {
            read: false,
            write: true,
            create: true,
            truncate: true,
            append: false,
            exclusive: false,
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> Self {
        Self {
            read: true,
            write: true,
            create: false,
            truncate: false,
            append: false,
            exclusive: false,
        }
    }

    /// `O_RDWR | O_CREAT`.
    pub fn read_write_create() -> Self {
        Self {
            read: true,
            write: true,
            create: true,
            truncate: false,
            append: false,
            exclusive: false,
        }
    }

    /// `O_WRONLY | O_APPEND`.
    pub fn append_only() -> Self {
        Self {
            read: false,
            write: true,
            create: false,
            truncate: false,
            append: true,
            exclusive: false,
        }
    }

    /// Builder-style setter for `exclusive`.
    pub fn with_exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }
}

/// One open-file description: inode, cursor and access mode.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpenFile {
    pub ino: Ino,
    pub offset: u64,
    pub flags: OpenFlags,
}

/// Whence argument of `lseek`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeekFrom {
    /// Absolute offset from the start of the file.
    Start(u64),
    /// Signed offset from the current position.
    Current(i64),
    /// Signed offset from the end of the file.
    End(i64),
}

/// A simulated process: its open-file table.
///
/// Create one per virtual user with [`crate::Vfs::new_process`]. Descriptors
/// are process-local, exactly like UNIX.
#[derive(Debug)]
pub struct Process {
    pub(crate) files: Vec<Option<OpenFile>>,
    pub(crate) max_fds: usize,
}

impl Process {
    pub(crate) fn new(max_fds: usize) -> Self {
        Self {
            files: Vec::new(),
            max_fds,
        }
    }

    /// Number of descriptors currently open.
    pub fn open_fds(&self) -> usize {
        self.files.iter().flatten().count()
    }

    /// The descriptors currently open, in ascending order.
    pub fn fds(&self) -> Vec<Fd> {
        self.files
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|_| Fd(i as u32)))
            .collect()
    }

    pub(crate) fn insert(&mut self, open: OpenFile) -> Option<Fd> {
        // Lowest-numbered free slot, like UNIX.
        for (i, slot) in self.files.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(open);
                return Some(Fd(i as u32));
            }
        }
        if self.files.len() >= self.max_fds {
            return None;
        }
        self.files.push(Some(open));
        Some(Fd(self.files.len() as u32 - 1))
    }

    pub(crate) fn get(&self, fd: Fd) -> Option<&OpenFile> {
        self.files.get(fd.0 as usize)?.as_ref()
    }

    pub(crate) fn get_mut(&mut self, fd: Fd) -> Option<&mut OpenFile> {
        self.files.get_mut(fd.0 as usize)?.as_mut()
    }

    pub(crate) fn remove(&mut self, fd: Fd) -> Option<OpenFile> {
        self.files.get_mut(fd.0 as usize)?.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_file() -> OpenFile {
        OpenFile {
            ino: Ino(1),
            offset: 0,
            flags: OpenFlags::read_only(),
        }
    }

    #[test]
    fn lowest_free_slot_reused() {
        let mut p = Process::new(16);
        let a = p.insert(open_file()).unwrap();
        let b = p.insert(open_file()).unwrap();
        assert_eq!((a.number(), b.number()), (0, 1));
        p.remove(a).unwrap();
        let c = p.insert(open_file()).unwrap();
        assert_eq!(c.number(), 0, "lowest free descriptor is reused");
        assert_eq!(p.open_fds(), 2);
        assert_eq!(p.fds(), vec![Fd(0), Fd(1)]);
    }

    #[test]
    fn fd_limit_enforced() {
        let mut p = Process::new(2);
        p.insert(open_file()).unwrap();
        p.insert(open_file()).unwrap();
        assert!(p.insert(open_file()).is_none());
    }

    #[test]
    fn bad_fd_lookups_fail() {
        let mut p = Process::new(4);
        assert!(p.get(Fd(0)).is_none());
        assert!(p.get_mut(Fd(3)).is_none());
        assert!(p.remove(Fd(9)).is_none());
    }

    #[test]
    fn flag_presets() {
        assert!(OpenFlags::read_only().read);
        assert!(!OpenFlags::read_only().write);
        let cw = OpenFlags::create_write();
        assert!(cw.write && cw.create && cw.truncate && !cw.read);
        let rw = OpenFlags::read_write();
        assert!(rw.read && rw.write && !rw.create);
        assert!(OpenFlags::append_only().append);
        assert!(OpenFlags::create_write().with_exclusive().exclusive);
    }
}
