//! Absolute path parsing and normalization.
//!
//! The file system uses plain `str` paths in UNIX syntax. Only absolute
//! paths are accepted (the simulated processes have no working directory —
//! the workload generator always addresses files by full path). `.` and `..`
//! components are resolved lexically.

use crate::FsError;

/// Maximum length of a single path component, as in classic UNIX.
pub const NAME_MAX: usize = 255;

/// Splits an absolute path into normalized components.
///
/// # Errors
///
/// Returns [`FsError::InvalidArgument`] for empty or relative paths and
/// [`FsError::NameTooLong`] for components longer than [`NAME_MAX`].
pub fn components(path: &str) -> Result<Vec<&str>, FsError> {
    if path.is_empty() || !path.starts_with('/') {
        return Err(FsError::InvalidArgument);
    }
    let mut out: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                // Lexical parent; `..` at the root stays at the root.
                out.pop();
            }
            name => {
                if name.len() > NAME_MAX {
                    return Err(FsError::NameTooLong);
                }
                out.push(name);
            }
        }
    }
    Ok(out)
}

/// Splits a path into `(parent_components, final_name)`.
///
/// # Errors
///
/// Returns [`FsError::InvalidArgument`] when the path resolves to the root
/// (which has no parent) plus the errors of [`components`].
pub fn split_parent(path: &str) -> Result<(Vec<&str>, &str), FsError> {
    let mut comps = components(path)?;
    let name = comps.pop().ok_or(FsError::InvalidArgument)?;
    Ok((comps, name))
}

/// Joins components back into an absolute path string.
#[cfg(test)]
pub(crate) fn join(comps: &[&str]) -> String {
    if comps.is_empty() {
        "/".to_string()
    } else {
        let mut s = String::new();
        for c in comps {
            s.push('/');
            s.push_str(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_paths() {
        assert_eq!(components("/").unwrap(), Vec::<&str>::new());
        assert_eq!(components("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(components("/a//b/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn resolves_dots() {
        assert_eq!(components("/a/./b").unwrap(), vec!["a", "b"]);
        assert_eq!(components("/a/../b").unwrap(), vec!["b"]);
        assert_eq!(components("/../..").unwrap(), Vec::<&str>::new());
        assert_eq!(components("/a/b/../../c").unwrap(), vec!["c"]);
    }

    #[test]
    fn rejects_relative_and_empty() {
        assert_eq!(components(""), Err(FsError::InvalidArgument));
        assert_eq!(components("a/b"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn rejects_long_names() {
        let long = format!("/{}", "x".repeat(NAME_MAX + 1));
        assert_eq!(components(&long), Err(FsError::NameTooLong));
        let ok = format!("/{}", "x".repeat(NAME_MAX));
        assert!(components(&ok).is_ok());
    }

    #[test]
    fn split_parent_works() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert_eq!(split_parent("/"), Err(FsError::InvalidArgument));
        let (parent, name) = split_parent("/top").unwrap();
        assert!(parent.is_empty());
        assert_eq!(name, "top");
    }

    #[test]
    fn join_round_trips() {
        for p in ["/", "/a", "/a/b/c"] {
            let comps = components(p).unwrap();
            assert_eq!(join(&comps), p);
        }
    }
}
