//! An in-memory UNIX-like file system with a system-call level API.
//!
//! The paper models file I/O "at the kernel level (or system call level in
//! UNIX systems)" and, when driving a real machine, "a new file system is
//! created to which file I/O is directed" so existing files are never
//! touched (Section 4.1). This crate is that new file system: a from-scratch
//! implementation with inodes, a directory tree, a block allocator, per-
//! process file-descriptor tables and errno-style errors. The User Simulator
//! executes its generated operation stream against this API.
//!
//! The implementation favours faithful UNIX semantics over raw speed:
//! unlinked-but-open files stay readable until the last close (the paper's
//! `TEMP` usage class relies on this), `lseek` past EOF creates holes that
//! read back as zeros, and directory entries are kept in sorted order as
//! `readdir` output.
//!
//! # Example
//!
//! ```
//! use uswg_vfs::{OpenFlags, Vfs};
//!
//! # fn main() -> Result<(), uswg_vfs::FsError> {
//! let mut fs = Vfs::new(uswg_vfs::VfsConfig::default());
//! let mut proc = fs.new_process();
//! fs.mkdir("/home")?;
//! let fd = fs.open(&mut proc, "/home/notes.txt", OpenFlags::create_write())?;
//! fs.write(&mut proc, fd, b"hello")?;
//! fs.close(&mut proc, fd)?;
//! assert_eq!(fs.stat("/home/notes.txt")?.size, 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod error;
mod fd;
mod inode;
mod path;
mod vfs;

pub use block::BlockStats;
pub use error::FsError;
pub use fd::{Fd, OpenFlags, Process, SeekFrom};
pub use inode::{FileKind, Ino, Metadata};
pub use vfs::{DirEntry, FsStats, OpCounters, Vfs, VfsConfig};
