//! The Chapter 5 experiment harness: model selection, user sweeps,
//! population-mix sweeps and access-size sweeps.
//!
//! These functions regenerate the paper's measurements: Table 5.3 (response
//! time vs number of users), Figures 5.6–5.11 (response time per byte under
//! different user populations) and Figure 5.12 (response time per byte vs
//! access size). Section 5.3's file-system comparison procedure is the same
//! sweep run once per [`ModelConfig`].

use crate::{presets, CoreError, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use uswg_analyze::{metrics, Summary};
use uswg_netfs::{
    DistributedNfsModel, DistributedNfsParams, LocalDiskModel, LocalDiskParams, NfsModel,
    NfsParams, ServiceModel, WholeFileCacheModel, WholeFileCacheParams,
};
use uswg_sim::ResourcePool;
use uswg_usim::{DesReport, PopulationSpec};

/// Which file-system timing model to measure (the candidates of the Section
/// 5.3 comparison study).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "model", rename_all = "snake_case")]
pub enum ModelConfig {
    /// Local-disk file system.
    Local(LocalDiskParams),
    /// NFS-like remote file system.
    Nfs(NfsParams),
    /// AFS-like whole-file caching file system.
    WholeFile(WholeFileCacheParams),
    /// Distributed NFS: several servers behind one shared network (the
    /// Section 4.2 distributed-file-system extension).
    DistributedNfs(DistributedNfsParams),
}

impl ModelConfig {
    /// NFS with default parameters.
    pub fn default_nfs() -> Self {
        ModelConfig::Nfs(NfsParams::default())
    }

    /// Local disk with default parameters.
    pub fn default_local() -> Self {
        ModelConfig::Local(LocalDiskParams::default())
    }

    /// Whole-file caching with default parameters.
    pub fn default_whole_file() -> Self {
        ModelConfig::WholeFile(WholeFileCacheParams::default())
    }

    /// Distributed NFS with `servers` default-timing servers.
    pub fn distributed_nfs(servers: usize) -> Self {
        ModelConfig::DistributedNfs(DistributedNfsParams::with_servers(servers))
    }

    /// Instantiates the model, registering its resources in `pool`.
    pub fn build(&self, pool: &mut ResourcePool) -> Box<dyn ServiceModel> {
        match self {
            ModelConfig::Local(p) => Box::new(LocalDiskModel::new(pool, *p)),
            ModelConfig::Nfs(p) => Box::new(NfsModel::new(pool, *p)),
            ModelConfig::WholeFile(p) => Box::new(WholeFileCacheModel::new(pool, *p)),
            ModelConfig::DistributedNfs(p) => Box::new(DistributedNfsModel::new(pool, *p)),
        }
    }

    /// The model's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelConfig::Local(_) => "local",
            ModelConfig::Nfs(_) => "nfs",
            ModelConfig::WholeFile(_) => "whole-file-cache",
            ModelConfig::DistributedNfs(_) => "distributed-nfs",
        }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter (number of users, access size, heavy fraction…).
    pub x: f64,
    /// Mean response time per byte over all data calls, µs/byte.
    pub response_per_byte: f64,
    /// Access-size statistics over data calls (Table 5.3 left column).
    pub access_size: Summary,
    /// Response-time statistics over data calls (Table 5.3 right column).
    pub response: Summary,
    /// Sessions simulated at this point.
    pub sessions: usize,
}

fn measure(x: f64, report: &DesReport) -> SweepPoint {
    let (access_size, response) = metrics::data_op_summary(&report.log);
    SweepPoint {
        x,
        response_per_byte: metrics::response_time_per_byte(&report.log),
        access_size,
        response,
        sessions: report.log.sessions().len(),
    }
}

/// How a sweep distributes its points over OS threads.
///
/// Every point of a sweep is an independent simulation seeded from
/// `run.seed` alone, so execution order cannot affect results: the parallel
/// schedule returns points byte-identical to the serial one (guarded by the
/// `parallel_sweeps_match_serial` integration test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One point after another on the calling thread.
    Serial,
    /// One worker per available core (capped at the point count).
    Auto,
    /// Exactly this many workers (capped at the point count; `0` and `1`
    /// both mean serial).
    Threads(usize),
}

impl Parallelism {
    fn workers(self, points: usize) -> usize {
        let want = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads(n) => n.max(1),
        };
        want.min(points.max(1))
    }
}

/// Runs `f` over every input, fanning out across a scoped thread pool, and
/// returns outputs in input order (identical to the serial order).
///
/// On failure the remaining undispatched points are cancelled (each point
/// can be a full simulation — finishing a doomed sweep would waste minutes),
/// and the input-order-first error among the points that ran is returned;
/// with a single failing point that is exactly the error the serial loop
/// reports.
fn fan_out<T, O, F>(inputs: Vec<T>, parallelism: Parallelism, f: F) -> Result<Vec<O>, CoreError>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> Result<O, CoreError> + Sync,
{
    let n = inputs.len();
    let workers = parallelism.workers(n);
    if workers <= 1 || n <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let mut slots: Vec<Option<Result<O, CoreError>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let collected: Vec<(usize, Result<O, CoreError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let result = f(&inputs[i]);
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        local.push((i, result));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    for (i, result) in collected {
        slots[i] = Some(result);
    }
    let mut out = Vec::with_capacity(n);
    let mut first_err: Option<CoreError> = None;
    for slot in slots {
        match slot {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => {
                first_err.get_or_insert(e);
            }
            // Cancelled after a failure elsewhere; the error below explains.
            None => {}
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => {
            debug_assert_eq!(out.len(), n, "no error, so every point must have run");
            Ok(out)
        }
    }
}

/// Sweeps the number of concurrent users (Table 5.3, Figures 5.6–5.11):
/// for each `n`, rebuilds the file system for `n` users and runs the
/// workload's population against `model`. Points fan out across all cores
/// ([`Parallelism::Auto`]); use [`user_sweep_with`] to control scheduling.
///
/// # Errors
///
/// Propagates generation and simulation errors.
pub fn user_sweep(
    base: &WorkloadSpec,
    model: &ModelConfig,
    users: impl IntoIterator<Item = usize>,
) -> Result<Vec<SweepPoint>, CoreError> {
    user_sweep_with(base, model, users, Parallelism::Auto)
}

/// [`user_sweep`] with explicit scheduling.
///
/// # Errors
///
/// Propagates generation and simulation errors.
pub fn user_sweep_with(
    base: &WorkloadSpec,
    model: &ModelConfig,
    users: impl IntoIterator<Item = usize>,
    parallelism: Parallelism,
) -> Result<Vec<SweepPoint>, CoreError> {
    let points: Vec<usize> = users.into_iter().collect();
    fan_out(points, parallelism, |&n| {
        let mut spec = base.clone();
        spec.run.n_users = n;
        let report = spec.run_des(model)?;
        Ok(measure(n as f64, &report))
    })
}

/// Sweeps the heavy/light population mix at a fixed user count (the figure
/// family 5.7–5.11 varies the mix across panels). Points fan out across all
/// cores; use [`mix_sweep_with`] to control scheduling.
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn mix_sweep(
    base: &WorkloadSpec,
    model: &ModelConfig,
    heavy_fractions: impl IntoIterator<Item = f64>,
) -> Result<Vec<SweepPoint>, CoreError> {
    mix_sweep_with(base, model, heavy_fractions, Parallelism::Auto)
}

/// [`mix_sweep`] with explicit scheduling.
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn mix_sweep_with(
    base: &WorkloadSpec,
    model: &ModelConfig,
    heavy_fractions: impl IntoIterator<Item = f64>,
    parallelism: Parallelism,
) -> Result<Vec<SweepPoint>, CoreError> {
    let points: Vec<f64> = heavy_fractions.into_iter().collect();
    fan_out(points, parallelism, |&frac| {
        let spec = base
            .clone()
            .with_population(presets::heavy_light_population(frac)?);
        let report = spec.run_des(model)?;
        Ok(measure(frac, &report))
    })
}

/// Sweeps the mean access size of file I/O system calls under an extremely
/// heavy I/O user (Figure 5.12: means from 128 to 2048 bytes). Points fan
/// out across all cores; use [`access_size_sweep_with`] to control
/// scheduling.
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn access_size_sweep(
    base: &WorkloadSpec,
    model: &ModelConfig,
    mean_sizes: impl IntoIterator<Item = f64>,
) -> Result<Vec<SweepPoint>, CoreError> {
    access_size_sweep_with(base, model, mean_sizes, Parallelism::Auto)
}

/// [`access_size_sweep`] with explicit scheduling.
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn access_size_sweep_with(
    base: &WorkloadSpec,
    model: &ModelConfig,
    mean_sizes: impl IntoIterator<Item = f64>,
    parallelism: Parallelism,
) -> Result<Vec<SweepPoint>, CoreError> {
    let points: Vec<f64> = mean_sizes.into_iter().collect();
    fan_out(points, parallelism, |&mean| {
        let user = presets::user_type_with("extremely heavy I/O", 0.0, mean);
        let spec = base.clone().with_population(PopulationSpec::single(user)?);
        let report = spec.run_des(model)?;
        Ok(measure(mean, &report))
    })
}

/// Runs the same workload against several candidate models (the Section 5.3
/// file-system comparison procedure) and returns `(model name, point)`.
/// Models fan out across all cores; use [`compare_models_with`] to control
/// scheduling.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_models(
    base: &WorkloadSpec,
    models: &[ModelConfig],
) -> Result<Vec<(String, SweepPoint)>, CoreError> {
    compare_models_with(base, models, Parallelism::Auto)
}

/// [`compare_models`] with explicit scheduling.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_models_with(
    base: &WorkloadSpec,
    models: &[ModelConfig],
    parallelism: Parallelism,
) -> Result<Vec<(String, SweepPoint)>, CoreError> {
    fan_out(models.to_vec(), parallelism, |model| {
        let report = base.run_des(model)?;
        Ok((model.name().to_string(), measure(0.0, &report)))
    })
}

/// One replicated run of [`run_des_replicated`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Replicate {
    /// The seed this replicate ran under.
    pub seed: u64,
    /// The measured point (`x` holds the seed as a float for plotting).
    pub point: SweepPoint,
}

/// Replicated-run statistics: a confidence interval over independent seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationStudy {
    /// Every replicate, in seed order.
    pub replicates: Vec<Replicate>,
    /// Mean response time per byte across replicates, µs/byte.
    pub mean_response_per_byte: f64,
    /// Sample standard deviation across replicates.
    pub std_dev_response_per_byte: f64,
    /// Half-width of the 95% confidence interval on the mean (Student's t).
    pub ci95_half_width: f64,
}

/// Two-sided 95% t quantiles for small degrees of freedom; the normal
/// approximation takes over beyond the table.
fn t_quantile_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else if df <= 40 {
        // Bracketed fallbacks use the smallest df of each bracket, so the
        // interval is conservative (never anti-conservative) and coverage
        // degrades smoothly toward the normal quantile instead of cliffing
        // from 2.042 straight to 1.96 at df = 31.
        2.040
    } else if df <= 60 {
        2.021
    } else if df <= 120 {
        2.000
    } else {
        1.96
    }
}

/// Runs the same workload under each seed (in parallel) and reports the
/// spread: the statistical backing for any response-time claim. Each
/// replicate is completely determined by its seed, so the study is
/// reproducible point for point.
///
/// # Errors
///
/// Propagates simulation errors; returns [`CoreError::Spec`] for an empty
/// seed list.
pub fn run_des_replicated(
    base: &WorkloadSpec,
    model: &ModelConfig,
    seeds: impl IntoIterator<Item = u64>,
    parallelism: Parallelism,
) -> Result<ReplicationStudy, CoreError> {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    if seeds.is_empty() {
        return Err(CoreError::Spec(
            "replication needs at least one seed".into(),
        ));
    }
    let replicates = fan_out(seeds, parallelism, |&seed| {
        let mut spec = base.clone();
        spec.run.seed = seed;
        let report = spec.run_des(model)?;
        Ok(Replicate {
            seed,
            point: measure(seed as f64, &report),
        })
    })?;
    let values: Vec<f64> = replicates
        .iter()
        .map(|r| r.point.response_per_byte)
        .collect();
    let summary = Summary::of(&values);
    let ci95_half_width = if summary.n < 2 {
        0.0
    } else {
        t_quantile_95(summary.n - 1) * summary.std_dev / (summary.n as f64).sqrt()
    };
    Ok(ReplicationStudy {
        replicates,
        mean_response_per_byte: summary.mean,
        std_dev_response_per_byte: summary.std_dev,
        ci95_half_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::paper_default().unwrap();
        spec.run.sessions_per_user = 2;
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(12)
            .unwrap();
        spec
    }

    #[test]
    fn model_config_builds_each_model() {
        for (config, name) in [
            (ModelConfig::default_local(), "local"),
            (ModelConfig::default_nfs(), "nfs"),
            (ModelConfig::default_whole_file(), "whole-file-cache"),
        ] {
            let mut pool = ResourcePool::new();
            let model = config.build(&mut pool);
            assert_eq!(model.name(), name);
            assert_eq!(config.name(), name);
            assert!(!pool.is_empty());
        }
    }

    #[test]
    fn model_config_serde_round_trip() {
        let config = ModelConfig::default_nfs();
        let json = serde_json::to_string(&config).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        assert!(json.contains("\"model\":\"nfs\""));
    }

    #[test]
    fn user_sweep_grows_response() {
        let mut spec = quick_spec();
        // Zero think time saturates the server fastest.
        spec.population = PopulationSpec::single(presets::extremely_heavy_user()).unwrap();
        let points = user_sweep(&spec, &ModelConfig::default_nfs(), [1, 3]).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[1].response_per_byte > points[0].response_per_byte);
        assert!(points[0].sessions > 0);
    }

    #[test]
    fn access_size_sweep_amortizes_overhead() {
        let spec = quick_spec();
        let points =
            access_size_sweep(&spec, &ModelConfig::default_nfs(), [128.0, 2048.0]).unwrap();
        assert!(points[0].response_per_byte > points[1].response_per_byte);
        // Measured access sizes track the swept means.
        assert!(points[0].access_size.mean < points[1].access_size.mean);
    }

    #[test]
    fn compare_models_ranks_local_fastest() {
        let spec = quick_spec();
        let results = compare_models(
            &spec,
            &[ModelConfig::default_local(), ModelConfig::default_nfs()],
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        let local = &results[0].1;
        let nfs = &results[1].1;
        assert!(
            local.response_per_byte < nfs.response_per_byte,
            "local {} vs nfs {}",
            local.response_per_byte,
            nfs.response_per_byte
        );
    }

    #[test]
    fn mix_sweep_runs_all_fractions() {
        let spec = quick_spec();
        let points = mix_sweep(&spec, &ModelConfig::default_local(), [0.0, 0.5, 1.0]).unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[1].x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallelism_worker_counts() {
        assert_eq!(Parallelism::Serial.workers(10), 1);
        assert_eq!(Parallelism::Threads(4).workers(10), 4);
        assert_eq!(Parallelism::Threads(4).workers(2), 2);
        assert_eq!(Parallelism::Threads(0).workers(10), 1);
        assert!(Parallelism::Auto.workers(64) >= 1);
    }

    #[test]
    fn fan_out_preserves_input_order() {
        let inputs: Vec<usize> = (0..32).collect();
        let serial = fan_out(inputs.clone(), Parallelism::Serial, |&i| Ok(i * 3)).unwrap();
        let parallel = fan_out(inputs, Parallelism::Threads(8), |&i| Ok(i * 3)).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial[5], 15);
    }

    #[test]
    fn fan_out_surfaces_errors() {
        let result = fan_out(vec![1usize, 2, 3], Parallelism::Threads(3), |&i| {
            if i == 2 {
                Err(CoreError::Spec("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(matches!(result, Err(CoreError::Spec(_))));
    }

    #[test]
    fn replication_reports_spread() {
        let mut spec = quick_spec();
        spec.run.n_users = 1;
        let study = run_des_replicated(
            &spec,
            &ModelConfig::default_local(),
            [1u64, 2, 3],
            Parallelism::Threads(3),
        )
        .unwrap();
        assert_eq!(study.replicates.len(), 3);
        assert!(study.mean_response_per_byte > 0.0);
        assert!(study.ci95_half_width >= 0.0);
        // Replicates are keyed and ordered by seed.
        let seeds: Vec<u64> = study.replicates.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![1, 2, 3]);
        // Empty seed list is rejected.
        assert!(run_des_replicated(
            &spec,
            &ModelConfig::default_local(),
            [],
            Parallelism::Serial
        )
        .is_err());
    }

    #[test]
    fn sweeps_are_backend_invariant() {
        // The sweep/replication entry points thread `run.scheduler` through
        // every point; the two backends must produce identical measurements.
        use uswg_sim::SchedulerBackend;
        let mut spec = quick_spec();
        spec.run.scheduler = Some(SchedulerBackend::Heap);
        let heap = user_sweep_with(
            &spec,
            &ModelConfig::default_nfs(),
            [1, 2],
            Parallelism::Serial,
        )
        .unwrap();
        spec.run.scheduler = Some(SchedulerBackend::Calendar);
        let calendar = user_sweep_with(
            &spec,
            &ModelConfig::default_nfs(),
            [1, 2],
            Parallelism::Serial,
        )
        .unwrap();
        assert_eq!(heap, calendar);
    }

    #[test]
    fn replication_is_seed_deterministic() {
        let spec = quick_spec();
        let a = run_des_replicated(
            &spec,
            &ModelConfig::default_local(),
            [7u64, 8],
            Parallelism::Serial,
        )
        .unwrap();
        let b = run_des_replicated(
            &spec,
            &ModelConfig::default_local(),
            [7u64, 8],
            Parallelism::Threads(2),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn t_quantiles_shrink_toward_normal() {
        assert!(t_quantile_95(1) > t_quantile_95(5));
        assert!(t_quantile_95(5) > t_quantile_95(29));
        // Monotone non-increasing across the table/bracket boundaries: no
        // anti-conservative cliff at df = 31.
        for df in 1..200 {
            assert!(
                t_quantile_95(df + 1) <= t_quantile_95(df),
                "t quantile must not grow with df: df={df}"
            );
        }
        assert_eq!(t_quantile_95(100), 2.000);
        assert_eq!(t_quantile_95(500), 1.96);
    }
}
