//! The Chapter 5 experiment harness: model selection, user sweeps,
//! population-mix sweeps and access-size sweeps.
//!
//! These functions regenerate the paper's measurements: Table 5.3 (response
//! time vs number of users), Figures 5.6–5.11 (response time per byte under
//! different user populations) and Figure 5.12 (response time per byte vs
//! access size). Section 5.3's file-system comparison procedure is the same
//! sweep run once per [`ModelConfig`].

use crate::{presets, CoreError, WorkloadSpec};
use serde::{Deserialize, Serialize};
use uswg_analyze::{metrics, Summary};
use uswg_netfs::{
    DistributedNfsModel, DistributedNfsParams, LocalDiskModel, LocalDiskParams, NfsModel,
    NfsParams, ServiceModel, WholeFileCacheModel, WholeFileCacheParams,
};
use uswg_sim::ResourcePool;
use uswg_usim::{DesReport, PopulationSpec};

/// Which file-system timing model to measure (the candidates of the Section
/// 5.3 comparison study).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "model", rename_all = "snake_case")]
pub enum ModelConfig {
    /// Local-disk file system.
    Local(LocalDiskParams),
    /// NFS-like remote file system.
    Nfs(NfsParams),
    /// AFS-like whole-file caching file system.
    WholeFile(WholeFileCacheParams),
    /// Distributed NFS: several servers behind one shared network (the
    /// Section 4.2 distributed-file-system extension).
    DistributedNfs(DistributedNfsParams),
}

impl ModelConfig {
    /// NFS with default parameters.
    pub fn default_nfs() -> Self {
        ModelConfig::Nfs(NfsParams::default())
    }

    /// Local disk with default parameters.
    pub fn default_local() -> Self {
        ModelConfig::Local(LocalDiskParams::default())
    }

    /// Whole-file caching with default parameters.
    pub fn default_whole_file() -> Self {
        ModelConfig::WholeFile(WholeFileCacheParams::default())
    }

    /// Distributed NFS with `servers` default-timing servers.
    pub fn distributed_nfs(servers: usize) -> Self {
        ModelConfig::DistributedNfs(DistributedNfsParams::with_servers(servers))
    }

    /// Instantiates the model, registering its resources in `pool`.
    pub fn build(&self, pool: &mut ResourcePool) -> Box<dyn ServiceModel> {
        match self {
            ModelConfig::Local(p) => Box::new(LocalDiskModel::new(pool, *p)),
            ModelConfig::Nfs(p) => Box::new(NfsModel::new(pool, *p)),
            ModelConfig::WholeFile(p) => Box::new(WholeFileCacheModel::new(pool, *p)),
            ModelConfig::DistributedNfs(p) => Box::new(DistributedNfsModel::new(pool, *p)),
        }
    }

    /// The model's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelConfig::Local(_) => "local",
            ModelConfig::Nfs(_) => "nfs",
            ModelConfig::WholeFile(_) => "whole-file-cache",
            ModelConfig::DistributedNfs(_) => "distributed-nfs",
        }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter (number of users, access size, heavy fraction…).
    pub x: f64,
    /// Mean response time per byte over all data calls, µs/byte.
    pub response_per_byte: f64,
    /// Access-size statistics over data calls (Table 5.3 left column).
    pub access_size: Summary,
    /// Response-time statistics over data calls (Table 5.3 right column).
    pub response: Summary,
    /// Sessions simulated at this point.
    pub sessions: usize,
}

fn measure(x: f64, report: &DesReport) -> SweepPoint {
    let (access_size, response) = metrics::data_op_summary(&report.log);
    SweepPoint {
        x,
        response_per_byte: metrics::response_time_per_byte(&report.log),
        access_size,
        response,
        sessions: report.log.sessions().len(),
    }
}

/// Sweeps the number of concurrent users (Table 5.3, Figures 5.6–5.11):
/// for each `n`, rebuilds the file system for `n` users and runs the
/// workload's population against `model`.
///
/// # Errors
///
/// Propagates generation and simulation errors.
pub fn user_sweep(
    base: &WorkloadSpec,
    model: &ModelConfig,
    users: impl IntoIterator<Item = usize>,
) -> Result<Vec<SweepPoint>, CoreError> {
    let mut out = Vec::new();
    for n in users {
        let mut spec = base.clone();
        spec.run.n_users = n;
        let report = spec.run_des(model)?;
        out.push(measure(n as f64, &report));
    }
    Ok(out)
}

/// Sweeps the heavy/light population mix at a fixed user count (the figure
/// family 5.7–5.11 varies the mix across panels).
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn mix_sweep(
    base: &WorkloadSpec,
    model: &ModelConfig,
    heavy_fractions: impl IntoIterator<Item = f64>,
) -> Result<Vec<SweepPoint>, CoreError> {
    let mut out = Vec::new();
    for frac in heavy_fractions {
        let spec = base
            .clone()
            .with_population(presets::heavy_light_population(frac)?);
        let report = spec.run_des(model)?;
        out.push(measure(frac, &report));
    }
    Ok(out)
}

/// Sweeps the mean access size of file I/O system calls under an extremely
/// heavy I/O user (Figure 5.12: means from 128 to 2048 bytes).
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn access_size_sweep(
    base: &WorkloadSpec,
    model: &ModelConfig,
    mean_sizes: impl IntoIterator<Item = f64>,
) -> Result<Vec<SweepPoint>, CoreError> {
    let mut out = Vec::new();
    for mean in mean_sizes {
        let user = presets::user_type_with("extremely heavy I/O", 0.0, mean);
        let spec = base
            .clone()
            .with_population(PopulationSpec::single(user)?);
        let report = spec.run_des(model)?;
        out.push(measure(mean, &report));
    }
    Ok(out)
}

/// Runs the same workload against several candidate models (the Section 5.3
/// file-system comparison procedure) and returns `(model name, point)`.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_models(
    base: &WorkloadSpec,
    models: &[ModelConfig],
) -> Result<Vec<(String, SweepPoint)>, CoreError> {
    let mut out = Vec::new();
    for model in models {
        let report = base.run_des(model)?;
        out.push((model.name().to_string(), measure(0.0, &report)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::paper_default().unwrap();
        spec.run.sessions_per_user = 2;
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(12)
            .unwrap();
        spec
    }

    #[test]
    fn model_config_builds_each_model() {
        for (config, name) in [
            (ModelConfig::default_local(), "local"),
            (ModelConfig::default_nfs(), "nfs"),
            (ModelConfig::default_whole_file(), "whole-file-cache"),
        ] {
            let mut pool = ResourcePool::new();
            let model = config.build(&mut pool);
            assert_eq!(model.name(), name);
            assert_eq!(config.name(), name);
            assert!(!pool.is_empty());
        }
    }

    #[test]
    fn model_config_serde_round_trip() {
        let config = ModelConfig::default_nfs();
        let json = serde_json::to_string(&config).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        assert!(json.contains("\"model\":\"nfs\""));
    }

    #[test]
    fn user_sweep_grows_response() {
        let mut spec = quick_spec();
        // Zero think time saturates the server fastest.
        spec.population =
            PopulationSpec::single(presets::extremely_heavy_user()).unwrap();
        let points = user_sweep(&spec, &ModelConfig::default_nfs(), [1, 3]).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[1].response_per_byte > points[0].response_per_byte);
        assert!(points[0].sessions > 0);
    }

    #[test]
    fn access_size_sweep_amortizes_overhead() {
        let spec = quick_spec();
        let points =
            access_size_sweep(&spec, &ModelConfig::default_nfs(), [128.0, 2048.0]).unwrap();
        assert!(points[0].response_per_byte > points[1].response_per_byte);
        // Measured access sizes track the swept means.
        assert!(points[0].access_size.mean < points[1].access_size.mean);
    }

    #[test]
    fn compare_models_ranks_local_fastest() {
        let spec = quick_spec();
        let results = compare_models(
            &spec,
            &[ModelConfig::default_local(), ModelConfig::default_nfs()],
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        let local = &results[0].1;
        let nfs = &results[1].1;
        assert!(
            local.response_per_byte < nfs.response_per_byte,
            "local {} vs nfs {}",
            local.response_per_byte,
            nfs.response_per_byte
        );
    }

    #[test]
    fn mix_sweep_runs_all_fractions() {
        let spec = quick_spec();
        let points = mix_sweep(&spec, &ModelConfig::default_local(), [0.0, 0.5, 1.0]).unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[1].x - 0.5).abs() < 1e-12);
    }
}
