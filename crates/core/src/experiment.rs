//! The Chapter 5 experiment harness: model selection, user sweeps,
//! population-mix sweeps and access-size sweeps.
//!
//! These functions regenerate the paper's measurements: Table 5.3 (response
//! time vs number of users), Figures 5.6–5.11 (response time per byte under
//! different user populations) and Figure 5.12 (response time per byte vs
//! access size). Section 5.3's file-system comparison procedure is the same
//! sweep run once per [`ModelConfig`].

use crate::{presets, CoreError, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use uswg_analyze::{metrics, Summary};
use uswg_netfs::{
    DistributedNfsModel, DistributedNfsParams, LocalDiskModel, LocalDiskParams, NfsModel,
    NfsParams, ServiceModel, WholeFileCacheModel, WholeFileCacheParams,
};
use uswg_sim::ResourcePool;
use uswg_usim::{DesReport, LogSink, PopulationSpec, SummarySink};

/// Which file-system timing model to measure (the candidates of the Section
/// 5.3 comparison study).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "model", rename_all = "snake_case")]
pub enum ModelConfig {
    /// Local-disk file system.
    Local(LocalDiskParams),
    /// NFS-like remote file system.
    Nfs(NfsParams),
    /// AFS-like whole-file caching file system.
    WholeFile(WholeFileCacheParams),
    /// Distributed NFS: several servers behind one shared network (the
    /// Section 4.2 distributed-file-system extension).
    DistributedNfs(DistributedNfsParams),
}

impl ModelConfig {
    /// NFS with default parameters.
    pub fn default_nfs() -> Self {
        ModelConfig::Nfs(NfsParams::default())
    }

    /// Local disk with default parameters.
    pub fn default_local() -> Self {
        ModelConfig::Local(LocalDiskParams::default())
    }

    /// Whole-file caching with default parameters.
    pub fn default_whole_file() -> Self {
        ModelConfig::WholeFile(WholeFileCacheParams::default())
    }

    /// Distributed NFS with `servers` default-timing servers.
    pub fn distributed_nfs(servers: usize) -> Self {
        ModelConfig::DistributedNfs(DistributedNfsParams::with_servers(servers))
    }

    /// Instantiates the model, registering its resources in `pool`.
    pub fn build(&self, pool: &mut ResourcePool) -> Box<dyn ServiceModel> {
        match self {
            ModelConfig::Local(p) => Box::new(LocalDiskModel::new(pool, *p)),
            ModelConfig::Nfs(p) => Box::new(NfsModel::new(pool, *p)),
            ModelConfig::WholeFile(p) => Box::new(WholeFileCacheModel::new(pool, *p)),
            ModelConfig::DistributedNfs(p) => Box::new(DistributedNfsModel::new(pool, *p)),
        }
    }

    /// The model's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelConfig::Local(_) => "local",
            ModelConfig::Nfs(_) => "nfs",
            ModelConfig::WholeFile(_) => "whole-file-cache",
            ModelConfig::DistributedNfs(_) => "distributed-nfs",
        }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter (number of users, access size, heavy fraction…).
    pub x: f64,
    /// Mean response time per byte over all data calls, µs/byte.
    pub response_per_byte: f64,
    /// Access-size statistics over data calls (Table 5.3 left column).
    pub access_size: Summary,
    /// Response-time statistics over data calls (Table 5.3 right column).
    pub response: Summary,
    /// Sessions simulated at this point.
    pub sessions: usize,
}

fn measure(x: f64, report: &DesReport) -> SweepPoint {
    let (access_size, response) = metrics::data_op_summary(&report.log);
    SweepPoint {
        x,
        response_per_byte: metrics::response_time_per_byte(&report.log),
        access_size,
        response,
        sessions: report.log.sessions().len(),
    }
}

/// The [`measure`] counterpart for a streamed run: every statistic comes
/// from the sink's running aggregates. Means, counts, extrema and the
/// per-byte metric are bit-identical to post-hoc aggregation of the same
/// record stream; the standard deviations use a one-pass Welford
/// accumulator (numerically stable at any scale) and agree with the
/// two-pass form to well within 1e-9 relative (property-tested).
fn measure_streamed(x: f64, sink: &SummarySink) -> SweepPoint {
    let n = sink.data_ops as usize;
    SweepPoint {
        x,
        response_per_byte: sink.response_per_byte(),
        access_size: Summary {
            n,
            mean: sink.mean_access_size(),
            std_dev: sink.std_dev_access_size(),
            min: sink.min_access_size(),
            max: sink.max_access_size(),
        },
        response: Summary {
            n,
            mean: sink.mean_response(),
            std_dev: sink.std_dev_response(),
            min: sink.min_response(),
            max: sink.max_response(),
        },
        sessions: sink.sessions as usize,
    }
}

/// What each point of a sweep materializes while it runs.
///
/// Both modes execute the identical simulation (same seed, same record
/// stream); they differ only in what is *retained*. `Summary` keeps O(1)
/// bytes per point — the mode that reaches the ROADMAP's million-user
/// populations — and reproduces `FullLog`'s Table 5.3 statistics to 1e-9
/// (means, counts and extrema exactly; standard deviations come from a
/// Welford accumulator, stable at any scale, differing from the two-pass
/// form only in rounding order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SweepMode {
    /// Materialize the full [`uswg_usim::UsageLog`] per point and
    /// aggregate post hoc: memory grows with users × sessions × ops. Use
    /// when the per-op records themselves are needed downstream.
    FullLog,
    /// Stream records into a [`SummarySink`] as they happen; no log is
    /// ever allocated.
    #[default]
    Summary,
}

/// Runs one sweep point in the requested mode and measures it. This is
/// the plain-sweep path: in `FullLog` mode the statistics come straight
/// from the materialized log, with no post-hoc sink rebuild.
fn run_point(
    spec: &WorkloadSpec,
    model: &ModelConfig,
    x: f64,
    mode: SweepMode,
) -> Result<SweepPoint, CoreError> {
    match mode {
        SweepMode::Summary => {
            let (sink, _stats) = spec.run_des_summary(model)?;
            Ok(measure_streamed(x, &sink))
        }
        SweepMode::FullLog => {
            let report = spec.run_des(model)?;
            Ok(measure(x, &report))
        }
    }
}

/// [`run_point`] for callers that also pool statistics across points
/// (replication studies merge the sinks). In `FullLog` mode the sink is
/// rebuilt post hoc from the materialized log — an extra pass plain
/// sweeps never pay — so both modes hand back sinks over the identical
/// record stream.
fn run_point_with_sink(
    spec: &WorkloadSpec,
    model: &ModelConfig,
    x: f64,
    mode: SweepMode,
) -> Result<(SweepPoint, SummarySink), CoreError> {
    match mode {
        SweepMode::Summary => {
            let (sink, _stats) = spec.run_des_summary(model)?;
            Ok((measure_streamed(x, &sink), sink))
        }
        SweepMode::FullLog => {
            let report = spec.run_des(model)?;
            let point = measure(x, &report);
            let mut sink = SummarySink::new();
            for op in report.log.ops() {
                sink.record_op(op);
            }
            for session in report.log.sessions() {
                sink.record_session(session);
            }
            Ok((point, sink))
        }
    }
}

/// How a sweep distributes its points over OS threads.
///
/// Every point of a sweep is an independent simulation seeded from
/// `run.seed` alone, so execution order cannot affect results: the parallel
/// schedule returns points byte-identical to the serial one (guarded by the
/// `parallel_sweeps_match_serial` integration test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One point after another on the calling thread.
    Serial,
    /// One worker per available core (capped at the point count).
    Auto,
    /// This many workers — capped at the point count *and* at the host's
    /// core count: sweep points are CPU-bound simulations, so
    /// oversubscribing cores only adds context-switch overhead (measured
    /// ~4% on a 1-core host before the cap). `0` and `1` both mean serial.
    Threads(usize),
}

impl Parallelism {
    /// Cores the host offers this process.
    fn cores() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    fn workers(self, points: usize) -> usize {
        let want = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => Self::cores(),
            Parallelism::Threads(n) => n.max(1).min(Self::cores()),
        };
        // On a single-core host every variant resolves to 1, and fan_out's
        // `workers <= 1` guard short-circuits straight to the plain serial
        // loop: no threads, no deques, no atomics — a parallel request is
        // then the same code path as serial and can never regress below
        // serial wall-clock.
        want.min(points.max(1))
    }

    /// The worker count this policy actually schedules for `points` sweep
    /// points on this host — after the core cap and the point-count cap.
    /// Exposed so measurement tools (`bench_baseline`) report the same
    /// number the harness uses rather than re-deriving the policy.
    pub fn effective_workers(self, points: usize) -> usize {
        self.workers(points)
    }
}

/// Runs `f` over every input, fanning out across a work-stealing pool of
/// scoped threads ([`stealpool`]: per-worker Chase–Lev deques), and returns
/// outputs in input order (identical to the serial order). Stealing keeps
/// all cores busy even when point costs are wildly uneven — the norm for
/// user sweeps, where the largest population dominates — and when sweeps
/// nest replication grids beneath them.
///
/// On failure the remaining undispatched points are cancelled (each point
/// can be a full simulation — finishing a doomed sweep would waste minutes),
/// and the input-order-first error among the points that ran is returned;
/// with a single failing point that is exactly the error the serial loop
/// reports.
fn fan_out<T, O, F>(inputs: Vec<T>, parallelism: Parallelism, f: F) -> Result<Vec<O>, CoreError>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> Result<O, CoreError> + Sync,
{
    let workers = parallelism.workers(inputs.len());
    fan_out_workers(inputs, workers, f)
}

/// [`fan_out`] with the worker count already resolved. Split out so unit
/// tests can force a multi-worker pool even on single-core hosts — the
/// [`Parallelism`] core cap would otherwise short-circuit every test
/// schedule to the serial loop there and leave the pool-backed slot /
/// error / cancellation plumbing unexercised.
fn fan_out_workers<T, O, F>(inputs: Vec<T>, workers: usize, f: F) -> Result<Vec<O>, CoreError>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> Result<O, CoreError> + Sync,
{
    let n = inputs.len();
    if workers <= 1 || n <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let slots: Vec<Mutex<Option<Result<O, CoreError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    stealpool::run_indexed(workers, n, |i| {
        let result = f(&inputs[i]);
        let ok = result.is_ok();
        *slots[i].lock().expect("slot lock") = Some(result);
        ok // a failed point cancels the rest of the pool
    });
    let mut out = Vec::with_capacity(n);
    let mut first_err: Option<CoreError> = None;
    for slot in slots {
        match slot.into_inner().expect("slot lock") {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => {
                first_err.get_or_insert(e);
            }
            // Cancelled after a failure elsewhere; the error below explains.
            None => {}
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => {
            debug_assert_eq!(out.len(), n, "no error, so every point must have run");
            Ok(out)
        }
    }
}

/// Sweeps the number of concurrent users (Table 5.3, Figures 5.6–5.11):
/// for each `n`, rebuilds the file system for `n` users and runs the
/// workload's population against `model`. Points fan out across all cores
/// ([`Parallelism::Auto`]) in the memory-flat [`SweepMode::Summary`]; use
/// [`user_sweep_with`] to control scheduling and retention.
///
/// # Errors
///
/// Propagates generation and simulation errors.
pub fn user_sweep(
    base: &WorkloadSpec,
    model: &ModelConfig,
    users: impl IntoIterator<Item = usize>,
) -> Result<Vec<SweepPoint>, CoreError> {
    user_sweep_with(base, model, users, Parallelism::Auto, SweepMode::Summary)
}

/// [`user_sweep`] with explicit scheduling and retention mode.
///
/// # Errors
///
/// Propagates generation and simulation errors.
pub fn user_sweep_with(
    base: &WorkloadSpec,
    model: &ModelConfig,
    users: impl IntoIterator<Item = usize>,
    parallelism: Parallelism,
    mode: SweepMode,
) -> Result<Vec<SweepPoint>, CoreError> {
    let points: Vec<usize> = users.into_iter().collect();
    fan_out(points, parallelism, |&n| {
        let mut spec = base.clone();
        spec.run.n_users = n;
        run_point(&spec, model, n as f64, mode)
    })
}

/// Sweeps the heavy/light population mix at a fixed user count (the figure
/// family 5.7–5.11 varies the mix across panels). Points fan out across all
/// cores; use [`mix_sweep_with`] to control scheduling.
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn mix_sweep(
    base: &WorkloadSpec,
    model: &ModelConfig,
    heavy_fractions: impl IntoIterator<Item = f64>,
) -> Result<Vec<SweepPoint>, CoreError> {
    mix_sweep_with(
        base,
        model,
        heavy_fractions,
        Parallelism::Auto,
        SweepMode::Summary,
    )
}

/// [`mix_sweep`] with explicit scheduling and retention mode.
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn mix_sweep_with(
    base: &WorkloadSpec,
    model: &ModelConfig,
    heavy_fractions: impl IntoIterator<Item = f64>,
    parallelism: Parallelism,
    mode: SweepMode,
) -> Result<Vec<SweepPoint>, CoreError> {
    let points: Vec<f64> = heavy_fractions.into_iter().collect();
    fan_out(points, parallelism, |&frac| {
        let spec = base
            .clone()
            .with_population(presets::heavy_light_population(frac)?);
        run_point(&spec, model, frac, mode)
    })
}

/// Sweeps the mean access size of file I/O system calls under an extremely
/// heavy I/O user (Figure 5.12: means from 128 to 2048 bytes). Points fan
/// out across all cores; use [`access_size_sweep_with`] to control
/// scheduling.
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn access_size_sweep(
    base: &WorkloadSpec,
    model: &ModelConfig,
    mean_sizes: impl IntoIterator<Item = f64>,
) -> Result<Vec<SweepPoint>, CoreError> {
    access_size_sweep_with(
        base,
        model,
        mean_sizes,
        Parallelism::Auto,
        SweepMode::Summary,
    )
}

/// [`access_size_sweep`] with explicit scheduling and retention mode.
///
/// # Errors
///
/// Propagates population validation and simulation errors.
pub fn access_size_sweep_with(
    base: &WorkloadSpec,
    model: &ModelConfig,
    mean_sizes: impl IntoIterator<Item = f64>,
    parallelism: Parallelism,
    mode: SweepMode,
) -> Result<Vec<SweepPoint>, CoreError> {
    let points: Vec<f64> = mean_sizes.into_iter().collect();
    fan_out(points, parallelism, |&mean| {
        let user = presets::user_type_with("extremely heavy I/O", 0.0, mean);
        let spec = base.clone().with_population(PopulationSpec::single(user)?);
        run_point(&spec, model, mean, mode)
    })
}

/// Runs the same workload against several candidate models (the Section 5.3
/// file-system comparison procedure) and returns `(model name, point)`.
/// Models fan out across all cores; use [`compare_models_with`] to control
/// scheduling.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_models(
    base: &WorkloadSpec,
    models: &[ModelConfig],
) -> Result<Vec<(String, SweepPoint)>, CoreError> {
    compare_models_with(base, models, Parallelism::Auto, SweepMode::Summary)
}

/// [`compare_models`] with explicit scheduling and retention mode.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_models_with(
    base: &WorkloadSpec,
    models: &[ModelConfig],
    parallelism: Parallelism,
    mode: SweepMode,
) -> Result<Vec<(String, SweepPoint)>, CoreError> {
    fan_out(models.to_vec(), parallelism, |model| {
        let point = run_point(base, model, 0.0, mode)?;
        Ok((model.name().to_string(), point))
    })
}

/// One replicated run of [`run_des_replicated`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Replicate {
    /// The seed this replicate ran under.
    pub seed: u64,
    /// The measured point (`x` holds the seed as a float for plotting).
    pub point: SweepPoint,
}

/// Replicated-run statistics: a confidence interval over independent seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationStudy {
    /// Every replicate, in seed order.
    pub replicates: Vec<Replicate>,
    /// Mean response time per byte across replicates, µs/byte.
    pub mean_response_per_byte: f64,
    /// Sample standard deviation across replicates.
    pub std_dev_response_per_byte: f64,
    /// Half-width of the 95% confidence interval on the mean (Student's t).
    pub ci95_half_width: f64,
    /// Access-size statistics pooled over every replicate's data ops: the
    /// parallel reduction of the per-replicate streaming sinks
    /// ([`SummarySink::merge`] in seed order), as if all seeds had fed one
    /// sink.
    pub pooled_access_size: Summary,
    /// Response-time statistics pooled over every replicate's data ops
    /// (same reduction).
    pub pooled_response: Summary,
}

/// Two-sided 95% t quantiles for small degrees of freedom; the normal
/// approximation takes over beyond the table.
fn t_quantile_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else if df <= 40 {
        // Bracketed fallbacks use the smallest df of each bracket, so the
        // interval is conservative (never anti-conservative) and coverage
        // degrades smoothly toward the normal quantile instead of cliffing
        // from 2.042 straight to 1.96 at df = 31.
        2.040
    } else if df <= 60 {
        2.021
    } else if df <= 120 {
        2.000
    } else {
        1.96
    }
}

/// Runs the same workload under each seed (work-stolen across cores) and
/// reports the spread: the statistical backing for any response-time
/// claim. Each replicate is completely determined by its seed, so the
/// study is reproducible point for point; the pooled statistics merge the
/// per-seed streaming sinks in seed order, so they too are independent of
/// the parallel schedule.
///
/// # Errors
///
/// Propagates simulation errors; returns [`CoreError::Spec`] for an empty
/// seed list.
pub fn run_des_replicated(
    base: &WorkloadSpec,
    model: &ModelConfig,
    seeds: impl IntoIterator<Item = u64>,
    parallelism: Parallelism,
    mode: SweepMode,
) -> Result<ReplicationStudy, CoreError> {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    if seeds.is_empty() {
        return Err(CoreError::Spec(
            "replication needs at least one seed".into(),
        ));
    }
    let measured = fan_out(seeds, parallelism, |&seed| {
        let mut spec = base.clone();
        spec.run.seed = seed;
        let (point, sink) = run_point_with_sink(&spec, model, seed as f64, mode)?;
        Ok((Replicate { seed, point }, sink))
    })?;
    // Parallel reduction: fold the per-seed sinks in input (seed) order, so
    // the pooled aggregates never depend on which worker finished first.
    let mut pooled = SummarySink::new();
    for (_, sink) in &measured {
        pooled.merge(sink);
    }
    let pooled_point = measure_streamed(0.0, &pooled);
    let replicates: Vec<Replicate> = measured.into_iter().map(|(r, _)| r).collect();
    let values: Vec<f64> = replicates
        .iter()
        .map(|r| r.point.response_per_byte)
        .collect();
    let summary = Summary::of(&values);
    let ci95_half_width = if summary.n < 2 {
        0.0
    } else {
        t_quantile_95(summary.n - 1) * summary.std_dev / (summary.n as f64).sqrt()
    };
    Ok(ReplicationStudy {
        replicates,
        mean_response_per_byte: summary.mean,
        std_dev_response_per_byte: summary.std_dev,
        ci95_half_width,
        pooled_access_size: pooled_point.access_size,
        pooled_response: pooled_point.response,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::paper_default().unwrap();
        spec.run.sessions_per_user = 2;
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(12)
            .unwrap();
        spec
    }

    #[test]
    fn model_config_builds_each_model() {
        for (config, name) in [
            (ModelConfig::default_local(), "local"),
            (ModelConfig::default_nfs(), "nfs"),
            (ModelConfig::default_whole_file(), "whole-file-cache"),
        ] {
            let mut pool = ResourcePool::new();
            let model = config.build(&mut pool);
            assert_eq!(model.name(), name);
            assert_eq!(config.name(), name);
            assert!(!pool.is_empty());
        }
    }

    #[test]
    fn model_config_serde_round_trip() {
        let config = ModelConfig::default_nfs();
        let json = serde_json::to_string(&config).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        assert!(json.contains("\"model\":\"nfs\""));
    }

    #[test]
    fn user_sweep_grows_response() {
        let mut spec = quick_spec();
        // Zero think time saturates the server fastest.
        spec.population = PopulationSpec::single(presets::extremely_heavy_user()).unwrap();
        let points = user_sweep(&spec, &ModelConfig::default_nfs(), [1, 3]).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[1].response_per_byte > points[0].response_per_byte);
        assert!(points[0].sessions > 0);
    }

    #[test]
    fn access_size_sweep_amortizes_overhead() {
        let spec = quick_spec();
        let points =
            access_size_sweep(&spec, &ModelConfig::default_nfs(), [128.0, 2048.0]).unwrap();
        assert!(points[0].response_per_byte > points[1].response_per_byte);
        // Measured access sizes track the swept means.
        assert!(points[0].access_size.mean < points[1].access_size.mean);
    }

    #[test]
    fn compare_models_ranks_local_fastest() {
        let spec = quick_spec();
        let results = compare_models(
            &spec,
            &[ModelConfig::default_local(), ModelConfig::default_nfs()],
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        let local = &results[0].1;
        let nfs = &results[1].1;
        assert!(
            local.response_per_byte < nfs.response_per_byte,
            "local {} vs nfs {}",
            local.response_per_byte,
            nfs.response_per_byte
        );
    }

    #[test]
    fn mix_sweep_runs_all_fractions() {
        let spec = quick_spec();
        let points = mix_sweep(&spec, &ModelConfig::default_local(), [0.0, 0.5, 1.0]).unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[1].x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallelism_worker_counts() {
        let cores = Parallelism::cores();
        assert_eq!(Parallelism::Serial.workers(10), 1);
        // Explicit thread requests are capped at the host's core count
        // (oversubscription never helps a CPU-bound point) and at the
        // point count.
        assert_eq!(Parallelism::Threads(4).workers(10), 4.min(cores));
        assert_eq!(Parallelism::Threads(4).workers(2), 2.min(cores));
        assert_eq!(Parallelism::Threads(0).workers(10), 1);
        assert_eq!(Parallelism::Threads(usize::MAX).workers(usize::MAX), cores);
        // Auto is exactly the core count (capped at points): on a 1-core
        // host this is the serial short-circuit the bench snapshot relies
        // on.
        assert_eq!(Parallelism::Auto.workers(64.max(cores)), cores);
        assert_eq!(Parallelism::Auto.workers(1), 1);
    }

    #[test]
    fn fan_out_preserves_input_order() {
        // `fan_out_workers` directly, with the worker count forced past
        // the Parallelism core cap: on a 1-core CI host the public entry
        // points all short-circuit to the serial loop, and this test is
        // what keeps the pool-backed slot plumbing itself covered.
        let inputs: Vec<usize> = (0..32).collect();
        let serial = fan_out(inputs.clone(), Parallelism::Serial, |&i| Ok(i * 3)).unwrap();
        for workers in [2usize, 4, 8] {
            let pooled = fan_out_workers(inputs.clone(), workers, |&i| Ok(i * 3)).unwrap();
            assert_eq!(serial, pooled, "workers = {workers}");
        }
        assert_eq!(serial[5], 15);
    }

    #[test]
    fn fan_out_surfaces_errors() {
        // Through the public entry point (may resolve to the serial loop
        // on small hosts)...
        let result = fan_out(vec![1usize, 2, 3], Parallelism::Threads(3), |&i| {
            if i == 2 {
                Err(CoreError::Spec("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(matches!(result, Err(CoreError::Spec(_))));
        // ...and through a forced multi-worker pool, where the failure has
        // to cancel the undispatched tail and still surface (which of the
        // failing points runs first depends on the stolen schedule; the
        // input-order rule applies among those that ran).
        let inputs: Vec<usize> = (0..64).collect();
        let result = fan_out_workers(inputs, 4, |&i| {
            if i % 7 == 3 {
                Err(CoreError::Spec(format!("boom {i}")))
            } else {
                Ok(i)
            }
        });
        match result {
            Err(CoreError::Spec(msg)) => assert!(msg.starts_with("boom "), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forced_pool_sweep_matches_serial() {
        // A real simulation through the pool with workers forced past the
        // core cap: stolen schedules must reproduce the serial points byte
        // for byte even when the host would normally short-circuit.
        let spec = quick_spec();
        let users: Vec<usize> = vec![1, 2, 3];
        let serial = fan_out_workers(users.clone(), 1, |&n| {
            let mut s = spec.clone();
            s.run.n_users = n;
            run_point(
                &s,
                &ModelConfig::default_local(),
                n as f64,
                SweepMode::Summary,
            )
        })
        .unwrap();
        let pooled = fan_out_workers(users, 3, |&n| {
            let mut s = spec.clone();
            s.run.n_users = n;
            run_point(
                &s,
                &ModelConfig::default_local(),
                n as f64,
                SweepMode::Summary,
            )
        })
        .unwrap();
        assert_eq!(serial, pooled);
    }

    #[test]
    fn replication_reports_spread() {
        let mut spec = quick_spec();
        spec.run.n_users = 1;
        let study = run_des_replicated(
            &spec,
            &ModelConfig::default_local(),
            [1u64, 2, 3],
            Parallelism::Threads(3),
            SweepMode::Summary,
        )
        .unwrap();
        assert_eq!(study.replicates.len(), 3);
        assert!(study.mean_response_per_byte > 0.0);
        assert!(study.ci95_half_width >= 0.0);
        // Replicates are keyed and ordered by seed.
        let seeds: Vec<u64> = study.replicates.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![1, 2, 3]);
        // The pooled statistics merge every replicate's data ops.
        let total_data_ops: usize = study.replicates.iter().map(|r| r.point.access_size.n).sum();
        assert_eq!(study.pooled_access_size.n, total_data_ops);
        assert_eq!(study.pooled_response.n, total_data_ops);
        assert!(study.pooled_response.mean > 0.0);
        // Pooled extrema bound every replicate's extrema.
        for r in &study.replicates {
            assert!(study.pooled_response.min <= r.point.response.min);
            assert!(study.pooled_response.max >= r.point.response.max);
        }
        // Empty seed list is rejected.
        assert!(run_des_replicated(
            &spec,
            &ModelConfig::default_local(),
            [],
            Parallelism::Serial,
            SweepMode::Summary,
        )
        .is_err());
    }

    #[test]
    fn sweeps_are_backend_invariant() {
        // The sweep/replication entry points thread `run.scheduler` through
        // every point; the two backends must produce identical measurements.
        use uswg_sim::SchedulerBackend;
        let mut spec = quick_spec();
        spec.run.scheduler = Some(SchedulerBackend::Heap);
        let heap = user_sweep_with(
            &spec,
            &ModelConfig::default_nfs(),
            [1, 2],
            Parallelism::Serial,
            SweepMode::Summary,
        )
        .unwrap();
        spec.run.scheduler = Some(SchedulerBackend::Calendar);
        let calendar = user_sweep_with(
            &spec,
            &ModelConfig::default_nfs(),
            [1, 2],
            Parallelism::Serial,
            SweepMode::Summary,
        )
        .unwrap();
        assert_eq!(heap, calendar);
    }

    #[test]
    fn replication_is_seed_deterministic() {
        let spec = quick_spec();
        let a = run_des_replicated(
            &spec,
            &ModelConfig::default_local(),
            [7u64, 8],
            Parallelism::Serial,
            SweepMode::Summary,
        )
        .unwrap();
        let b = run_des_replicated(
            &spec,
            &ModelConfig::default_local(),
            [7u64, 8],
            Parallelism::Threads(2),
            SweepMode::Summary,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn summary_mode_matches_full_log_mode() {
        // The two retention modes execute the identical simulation; every
        // SweepPoint statistic must agree — means, counts, extrema and the
        // per-byte metric exactly, standard deviations to 1e-9 relative
        // (different accumulation order).
        let spec = quick_spec();
        let model = ModelConfig::default_nfs();
        let full = user_sweep_with(
            &spec,
            &model,
            [1, 2],
            Parallelism::Serial,
            SweepMode::FullLog,
        )
        .unwrap();
        let summary = user_sweep_with(
            &spec,
            &model,
            [1, 2],
            Parallelism::Serial,
            SweepMode::Summary,
        )
        .unwrap();
        assert_eq!(full.len(), summary.len());
        for (f, s) in full.iter().zip(&summary) {
            assert_eq!(f.x, s.x);
            assert_eq!(f.sessions, s.sessions);
            assert_eq!(f.response_per_byte, s.response_per_byte);
            assert_eq!(f.access_size.n, s.access_size.n);
            assert_eq!(f.access_size.mean, s.access_size.mean);
            assert_eq!(f.access_size.min, s.access_size.min);
            assert_eq!(f.access_size.max, s.access_size.max);
            assert_eq!(f.response.min, s.response.min);
            assert_eq!(f.response.max, s.response.max);
            let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1.0);
            assert!(rel(f.access_size.std_dev, s.access_size.std_dev) < 1e-9);
            assert!(rel(f.response.std_dev, s.response.std_dev) < 1e-9);
        }
    }

    #[test]
    fn sweep_mode_serde_round_trip() {
        for mode in [SweepMode::FullLog, SweepMode::Summary] {
            let json = serde_json::to_string(&mode).unwrap();
            let back: SweepMode = serde_json::from_str(&json).unwrap();
            assert_eq!(mode, back);
        }
        assert_eq!(SweepMode::default(), SweepMode::Summary);
        assert_eq!(
            serde_json::to_string(&SweepMode::Summary).unwrap(),
            "\"summary\""
        );
    }

    #[test]
    fn t_quantiles_shrink_toward_normal() {
        assert!(t_quantile_95(1) > t_quantile_95(5));
        assert!(t_quantile_95(5) > t_quantile_95(29));
        // Monotone non-increasing across the table/bracket boundaries: no
        // anti-conservative cliff at df = 31.
        for df in 1..200 {
            assert!(
                t_quantile_95(df + 1) <= t_quantile_95(df),
                "t quantile must not grow with df: df={df}"
            );
        }
        assert_eq!(t_quantile_95(100), 2.000);
        assert_eq!(t_quantile_95(500), 1.96);
    }
}
