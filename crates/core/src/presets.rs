//! The paper's published parameters: Tables 5.1, 5.2 and 5.4, the Figure
//! 5.1/5.2 example mixtures, and the default access-size / think-time
//! assumptions of Section 5.1.
//!
//! The underlying measurements come from the \[DI86\]/\[Dev88\] trace studies
//! the paper builds on; only means were published, so — exactly like the
//! paper — every measure defaults to an exponential distribution with the
//! published mean.
//!
//! One OCR note: Table 5.2's first "accesses" entry prints as `3128` in the
//! scanned thesis; every other entry in that column lies in `0.75–3.50`, so
//! it is read here as `3.128` (the decimal point was lost in scanning).

use uswg_distr::{DistributionSpec, MultiStageGamma, PhaseTypeExp};
use uswg_fsc::{CategorySpec, FileCategory, FscSpec};
use uswg_usim::{CategoryUsage, PopulationSpec, UserTypeSpec};

/// Mean access size per file I/O system call, bytes (Section 5.1: "we
/// assume they are exponentially distributed with a mean of 1024 bytes").
pub const ACCESS_SIZE_MEAN: f64 = 1024.0;

/// Think time of "extremely heavy I/O" users, µs (Table 5.4).
pub const THINK_EXTREMELY_HEAVY: f64 = 0.0;

/// Think time of "heavy I/O" users, µs (Table 5.4).
pub const THINK_HEAVY: f64 = 5_000.0;

/// Think time of "light I/O" users, µs (Table 5.4).
pub const THINK_LIGHT: f64 = 20_000.0;

/// Table 5.1 — file characterization by file category: `(category, mean
/// file size, percent of files)`.
pub const TABLE_5_1: [(FileCategory, f64, f64); 9] = [
    (FileCategory::DIR_USER_RDONLY, 714.0, 7.7),
    (FileCategory::DIR_OTHER_RDONLY, 779.0, 3.4),
    (FileCategory::REG_USER_RDONLY, 5_794.0, 21.8),
    (FileCategory::REG_USER_NEW, 11_164.0, 9.7),
    (FileCategory::REG_USER_RDWRT, 17_431.0, 4.6),
    (FileCategory::REG_USER_TEMP, 12_431.0, 38.2),
    (FileCategory::REG_OTHER_RDONLY, 31_347.0, 6.4),
    (FileCategory::REG_OTHER_RDWRT, 18_771.0, 3.2),
    (FileCategory::NOTES_OTHER_RDONLY, 15_072.0, 5.0),
];

/// Table 5.2 — user characterization by file category: `(category,
/// accesses-per-byte, mean file size, mean files, percent of users)`.
pub const TABLE_5_2: [(FileCategory, f64, f64, f64, f64); 9] = [
    (FileCategory::DIR_USER_RDONLY, 3.128, 808.0, 2.9, 69.0),
    (FileCategory::DIR_OTHER_RDONLY, 2.28, 1_198.0, 2.5, 70.0),
    (FileCategory::REG_USER_RDONLY, 1.42, 2_608.0, 6.0, 100.0),
    (FileCategory::REG_USER_NEW, 2.36, 11_438.0, 4.0, 40.0),
    (FileCategory::REG_USER_RDWRT, 3.50, 19_860.0, 2.2, 46.0),
    (FileCategory::REG_USER_TEMP, 2.00, 9_233.0, 9.7, 59.0),
    (FileCategory::REG_OTHER_RDONLY, 0.75, 53_965.0, 11.3, 53.0),
    (FileCategory::REG_OTHER_RDWRT, 1.77, 20_383.0, 5.7, 38.0),
    (FileCategory::NOTES_OTHER_RDONLY, 2.11, 13_578.0, 3.1, 55.0),
];

/// The Table 5.1 file-system specification, with exponential size
/// distributions as assumed in Section 5.1.
///
/// # Errors
///
/// Never fails for the built-in constants; the `Result` mirrors
/// [`FscSpec::new`]'s validation.
pub fn table_5_1_fs_spec() -> Result<FscSpec, uswg_fsc::FscError> {
    let categories = TABLE_5_1
        .iter()
        .map(|&(category, mean_size, pct)| {
            CategorySpec::new(
                category,
                pct / 100.0,
                DistributionSpec::exponential(mean_size),
            )
        })
        .collect();
    FscSpec::new(categories)
}

/// The Table 5.2 category usages, with exponential distributions.
pub fn table_5_2_usages() -> Vec<CategoryUsage> {
    TABLE_5_2
        .iter()
        .map(|&(category, apb, mean_size, mean_files, pct)| {
            CategoryUsage::exponential(category, apb, mean_size, mean_files, pct / 100.0)
        })
        .collect()
}

/// A user type with the Table 5.2 usage profile and the given think time
/// (µs). Zero think time becomes a point mass, exactly Table 5.4's
/// "extremely heavy I/O" row; anything else is exponential.
pub fn user_type_with_think(name: &str, mean_think_us: f64) -> UserTypeSpec {
    user_type_with(name, mean_think_us, ACCESS_SIZE_MEAN)
}

/// A user type with the Table 5.2 usage profile, the given think time (µs)
/// and the given mean access size (bytes) — the knob Figure 5.12 sweeps.
pub fn user_type_with(name: &str, mean_think_us: f64, mean_access_bytes: f64) -> UserTypeSpec {
    let think = if mean_think_us <= 0.0 {
        DistributionSpec::constant(0.0)
    } else {
        DistributionSpec::exponential(mean_think_us)
    };
    UserTypeSpec::new(
        name,
        think,
        DistributionSpec::exponential(mean_access_bytes),
        table_5_2_usages(),
    )
}

/// The "extremely heavy I/O" user type (Table 5.4, think time 0).
pub fn extremely_heavy_user() -> UserTypeSpec {
    user_type_with_think("extremely heavy I/O", THINK_EXTREMELY_HEAVY)
}

/// The "heavy I/O" user type (Table 5.4, think time 5 000 µs).
pub fn heavy_user() -> UserTypeSpec {
    user_type_with_think("heavy I/O", THINK_HEAVY)
}

/// The "light I/O" user type (Table 5.4, think time 20 000 µs).
pub fn light_user() -> UserTypeSpec {
    user_type_with_think("light I/O", THINK_LIGHT)
}

/// A population mixing heavy and light users, `heavy_fraction` heavy — the
/// populations of Figures 5.7–5.11 (100%, 80%, 50%, 20%, 0% heavy).
///
/// # Errors
///
/// Mirrors [`PopulationSpec::new`] validation (never fails for fractions in
/// `[0, 1]`).
pub fn heavy_light_population(heavy_fraction: f64) -> Result<PopulationSpec, uswg_usim::UsimError> {
    if heavy_fraction >= 1.0 {
        PopulationSpec::single(heavy_user())
    } else if heavy_fraction <= 0.0 {
        PopulationSpec::single(light_user())
    } else {
        PopulationSpec::new(vec![
            (heavy_user(), heavy_fraction),
            (light_user(), 1.0 - heavy_fraction),
        ])
    }
}

/// The three phase-type exponential examples of Figure 5.1 (the middle
/// panel's parameters are partially illegible in the scan; the legible ones
/// are used and the reconstruction is noted in EXPERIMENTS.md).
///
/// # Errors
///
/// Never fails for the built-in constants.
pub fn figure_5_1_examples() -> Result<Vec<(String, PhaseTypeExp)>, uswg_distr::DistrError> {
    Ok(vec![
        (
            "f(x) = exp(22.1, x)".to_string(),
            PhaseTypeExp::new(vec![(1.0, 22.1, 0.0)])?,
        ),
        (
            "f(x) = 0.6 exp(15.3, x) + 0.4 exp(15.3, x-35)".to_string(),
            PhaseTypeExp::new(vec![(0.6, 15.3, 0.0), (0.4, 15.3, 35.0)])?,
        ),
        (
            "f(x) = 0.4 exp(12.7, x) + 0.3 exp(18.2, x-18) + 0.3 exp(15.0, x-40)".to_string(),
            PhaseTypeExp::new(vec![(0.4, 12.7, 0.0), (0.3, 18.2, 18.0), (0.3, 15.0, 40.0)])?,
        ),
    ])
}

/// The three multi-stage gamma examples of Figure 5.2 (same reconstruction
/// caveat as [`figure_5_1_examples`]).
///
/// # Errors
///
/// Never fails for the built-in constants.
pub fn figure_5_2_examples() -> Result<Vec<(String, MultiStageGamma)>, uswg_distr::DistrError> {
    Ok(vec![
        (
            "f(x) = g(2.0, 14.0, x)".to_string(),
            MultiStageGamma::single(2.0, 14.0, 0.0)?,
        ),
        (
            "f(x) = g(1.5, 25.4, x-12)".to_string(),
            MultiStageGamma::single(1.5, 25.4, 12.0)?,
        ),
        (
            "f(x) = 0.7 g(1.3, 12.3, x) + 0.2 g(1.5, 12.4, x-23) + 0.1 g(1.4, 12.3, x-41)"
                .to_string(),
            MultiStageGamma::new(vec![
                (0.7, 1.3, 12.3, 0.0),
                (0.2, 1.5, 12.4, 23.0),
                (0.1, 1.4, 12.3, 41.0),
            ])?,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use uswg_distr::Distribution;

    #[test]
    fn table_5_1_fractions_sum_to_one() {
        let total: f64 = TABLE_5_1.iter().map(|&(_, _, pct)| pct).sum();
        assert!((total - 100.0).abs() < 1e-9, "total = {total}");
        assert!(table_5_1_fs_spec().is_ok());
    }

    #[test]
    fn table_5_2_has_all_nine_categories() {
        let usages = table_5_2_usages();
        assert_eq!(usages.len(), 9);
        let set: std::collections::HashSet<_> = usages.iter().map(|u| u.category).collect();
        assert_eq!(set.len(), 9);
        // Every REG/USER/RDONLY session accesses the category (100%).
        let rdonly = usages
            .iter()
            .find(|u| u.category == FileCategory::REG_USER_RDONLY)
            .unwrap();
        assert_eq!(rdonly.pct_users, 1.0);
    }

    #[test]
    fn user_types_differ_only_in_think_time() {
        let heavy = heavy_user();
        let light = light_user();
        assert_eq!(heavy.categories, light.categories);
        assert_ne!(heavy.think_time, light.think_time);
        assert!((heavy.think_time.mean().unwrap() - 5_000.0).abs() < 1e-9);
        assert!((light.think_time.mean().unwrap() - 20_000.0).abs() < 1e-9);
        assert_eq!(extremely_heavy_user().think_time.mean().unwrap(), 0.0);
    }

    #[test]
    fn populations_mix_correctly() {
        let p = heavy_light_population(0.8).unwrap();
        assert_eq!(p.types().len(), 2);
        assert_eq!(p.assign(5).iter().filter(|&&t| t == 0).count(), 4);
        assert_eq!(heavy_light_population(1.0).unwrap().types().len(), 1);
        assert_eq!(heavy_light_population(0.0).unwrap().types().len(), 1);
    }

    #[test]
    fn figure_examples_are_proper_densities() {
        for (label, d) in figure_5_1_examples().unwrap() {
            assert!(d.mean() > 0.0, "{label}");
            assert!((d.cdf(d.support_max()) - 1.0).abs() < 1e-6, "{label}");
        }
        for (label, d) in figure_5_2_examples().unwrap() {
            assert!(d.mean() > 0.0, "{label}");
            assert!((d.cdf(d.support_max()) - 1.0).abs() < 1e-6, "{label}");
        }
    }

    #[test]
    fn access_size_sweep_types() {
        let t = user_type_with("sweep", 0.0, 128.0);
        assert!((t.access_size.mean().unwrap() - 128.0).abs() < 1e-9);
    }
}
