use std::fmt;
use uswg_distr::DistrError;
use uswg_fsc::FscError;
use uswg_usim::UsimError;
use uswg_vfs::FsError;

/// Unified error of the workload-generator facade.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Distribution engine error.
    Distribution(DistrError),
    /// File System Creator error.
    Creator(FscError),
    /// User Simulator error.
    Simulator(UsimError),
    /// File system error.
    FileSystem(FsError),
    /// Workload specification serialization problem.
    Spec(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Distribution(e) => write!(f, "distribution: {e}"),
            CoreError::Creator(e) => write!(f, "file system creator: {e}"),
            CoreError::Simulator(e) => write!(f, "user simulator: {e}"),
            CoreError::FileSystem(e) => write!(f, "file system: {e}"),
            CoreError::Spec(msg) => write!(f, "workload spec: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Distribution(e) => Some(e),
            CoreError::Creator(e) => Some(e),
            CoreError::Simulator(e) => Some(e),
            CoreError::FileSystem(e) => Some(e),
            CoreError::Spec(_) => None,
        }
    }
}

impl From<DistrError> for CoreError {
    fn from(e: DistrError) -> Self {
        CoreError::Distribution(e)
    }
}

impl From<FscError> for CoreError {
    fn from(e: FscError) -> Self {
        CoreError::Creator(e)
    }
}

impl From<UsimError> for CoreError {
    fn from(e: UsimError) -> Self {
        CoreError::Simulator(e)
    }
}

impl From<FsError> for CoreError {
    fn from(e: FsError) -> Self {
        CoreError::FileSystem(e)
    }
}

impl From<serde_json::Error> for CoreError {
    fn from(e: serde_json::Error) -> Self {
        CoreError::Spec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = DistrError::Empty.into();
        assert!(e.to_string().starts_with("distribution"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = FsError::NoSpace.into();
        assert!(e.to_string().contains("ENOSPC"));
        let e: CoreError = UsimError::EmptyPopulation.into();
        assert!(e.to_string().contains("user simulator"));
        let e: CoreError = FscError::EmptySpec.into();
        assert!(e.to_string().contains("creator"));
    }
}
