//! The one-document workload specification and its execution pipeline.

use crate::experiment::ModelConfig;
use crate::{presets, CoreError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;
use uswg_fsc::{FileCatalog, FileSystemCreator, FscSpec};
use uswg_sim::ResourcePool;
use uswg_usim::{
    ChannelSink, CompiledPopulation, DesDriver, DesReport, DesRunStats, DirectDriver, LogSink,
    OpRecord, PopulationSpec, RunConfig, ShardEnv, ShardPlan, ShardedDesDriver, SummarySink,
    UsageLog,
};
use uswg_vfs::{Vfs, VfsConfig};

/// A complete workload description: the initial file system, the user
/// population and the run parameters. Serializable — the JSON form replaces
/// the paper's interactive GDS sessions.
///
/// The pipeline mirrors Figure 4.1: distributions are compiled to CDF
/// tables, the FSC builds the file system, the USIM executes users.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// File-system population (the FSC input; Table 5.1 by default).
    pub fsc: FscSpec,
    /// User population (the USIM input; Tables 5.2/5.4 by default).
    pub population: PopulationSpec,
    /// Run parameters: users, sessions, seed, table resolution.
    pub run: RunConfig,
    /// Geometry of the synthetic file system.
    pub vfs: VfsConfig,
}

impl WorkloadSpec {
    /// The paper's default workload: Table 5.1 file system, a single
    /// Table 5.2 "heavy I/O" user type, 1 user × 50 sessions.
    ///
    /// # Errors
    ///
    /// Propagates preset validation (never fails in practice).
    pub fn paper_default() -> Result<Self, CoreError> {
        Ok(Self {
            fsc: presets::table_5_1_fs_spec()?,
            population: PopulationSpec::single(presets::heavy_user())?,
            run: RunConfig::default(),
            vfs: VfsConfig::default(),
        })
    }

    /// Builder-style population override.
    pub fn with_population(mut self, population: PopulationSpec) -> Self {
        self.population = population;
        self
    }

    /// Builder-style run-config override.
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Spec`] if serialization fails.
    pub fn to_json(&self) -> Result<String, CoreError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Spec`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, CoreError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Runs the FSC: builds the synthetic file system and its catalog for
    /// `run.n_users` users, seeded from `run.seed`.
    ///
    /// # Errors
    ///
    /// Propagates creator and file-system errors.
    pub fn generate_fs(&self) -> Result<(Vfs, FileCatalog), CoreError> {
        let mut vfs = Vfs::new(self.vfs);
        let creator = FileSystemCreator::new(self.fsc.clone());
        let mut rng = StdRng::seed_from_u64(self.run.seed.wrapping_mul(0xF5C0_0001));
        let catalog = creator.build(&mut vfs, self.run.n_users, &mut rng)?;
        Ok((vfs, catalog))
    }

    /// Compiles the population's distributions into CDF tables (the GDS
    /// step).
    ///
    /// # Errors
    ///
    /// Propagates distribution tabulation errors.
    pub fn compile(&self) -> Result<CompiledPopulation, CoreError> {
        Ok(CompiledPopulation::compile(
            &self.population,
            self.run.cdf_resolution,
        )?)
    }

    /// Runs the workload with the direct driver (no timing model): the
    /// usage-study mode behind Figures 5.3–5.5.
    ///
    /// # Errors
    ///
    /// Propagates generation, compilation and simulation errors.
    pub fn run_direct(&self) -> Result<UsageLog, CoreError> {
        let (mut vfs, catalog) = self.generate_fs()?;
        let population = self.compile()?;
        Ok(DirectDriver::new().run(&mut vfs, &catalog, &population, &self.run)?)
    }

    /// One [`ShardEnv`] per active shard: each is a fresh build of the
    /// same seeded file system plus a fresh instance of the timing model,
    /// so every shard starts from the identical initial state. The
    /// per-shard model copies are the documented sharding approximation —
    /// users queue only behind their own shard's resources.
    ///
    /// Environments build in parallel on the same work-stealing pool the
    /// shards will run on: K full file-system builds would otherwise sit
    /// on the single-threaded critical path and grow linearly with K while
    /// the simulation itself shrinks with K. Each build is a pure function
    /// of the spec and seed, so the parallel schedule cannot change a
    /// byte of any environment.
    fn shard_envs(&self, model: &ModelConfig, active: usize) -> Result<Vec<ShardEnv>, CoreError> {
        let slots: Vec<std::sync::Mutex<Option<Result<ShardEnv, CoreError>>>> =
            (0..active).map(|_| std::sync::Mutex::new(None)).collect();
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(active);
        stealpool::run_indexed(workers, active, |i| {
            let env = self.generate_fs().map(|(vfs, catalog)| {
                let mut pool = ResourcePool::new();
                let model = model.build(&mut pool);
                ShardEnv {
                    vfs,
                    catalog,
                    model,
                    pool,
                }
            });
            let ok = env.is_ok();
            *slots[i].lock().expect("env slot lock") = Some(env);
            ok // a failed build cancels the remaining ones
        });
        let mut envs = Vec::with_capacity(active);
        let mut first_err: Option<CoreError> = None;
        for slot in slots {
            match slot.into_inner().expect("env slot lock") {
                Some(Ok(env)) => envs.push(env),
                Some(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                // Cancelled after a failure elsewhere; that error reports.
                None => {}
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                debug_assert_eq!(envs.len(), active, "no error, so every env was built");
                Ok(envs)
            }
        }
    }

    /// Runs the workload in simulated time against a timing model: the
    /// response-time measurement mode behind Table 5.3 and Figures
    /// 5.6–5.12.
    ///
    /// With `run.shards` set (or `USWG_SHARDS` in the environment) the
    /// population is split across that many independent DES instances and
    /// the per-shard logs are k-way merged deterministically; see
    /// [`WorkloadSpec::run_des_sharded`].
    ///
    /// # Errors
    ///
    /// Propagates generation, compilation and simulation errors.
    pub fn run_des(&self, model: &ModelConfig) -> Result<DesReport, CoreError> {
        if let Some(shards) = self.run.effective_shards() {
            return self.run_des_sharded(model, shards);
        }
        let (vfs, catalog) = self.generate_fs()?;
        let population = self.compile()?;
        let mut pool = ResourcePool::new();
        let model = model.build(&mut pool);
        Ok(DesDriver::new().run(vfs, catalog, &population, model, pool, &self.run)?)
    }

    /// Runs the workload as `shards` independent DES instances over a
    /// partition of the population, executed across cores, with the
    /// per-shard logs merged into one deterministic [`UsageLog`] and the
    /// per-shard resource statistics aggregated. One shard replays the
    /// unsharded run byte for byte; more shards trade contention fidelity
    /// (each shard owns a private copy of the timing model) for wall-clock
    /// — see the `uswg_usim::shard` module docs for the exact contract.
    ///
    /// # Errors
    ///
    /// Propagates generation, compilation and simulation errors.
    pub fn run_des_sharded(
        &self,
        model: &ModelConfig,
        shards: NonZeroUsize,
    ) -> Result<DesReport, CoreError> {
        let population = self.compile()?;
        let plan = ShardPlan::new(self.run.n_users, shards);
        let envs = self.shard_envs(model, plan.active_shards())?;
        Ok(ShardedDesDriver::new().run(&population, &self.run, shards, envs)?)
    }

    /// Runs the workload in simulated time, streaming every record into
    /// `sink` instead of materializing a [`UsageLog`]: the memory-flat
    /// counterpart of [`WorkloadSpec::run_des`]. The record stream is
    /// identical between the two paths for the same seed, so any
    /// [`LogSink`] observes exactly what the collected log would contain.
    ///
    /// A sharded run (`run.shards` / `USWG_SHARDS`) stays memory-flat too:
    /// each shard spills its records to a private temporary file as it
    /// runs, and the per-shard streams are k-way merged frame-by-frame
    /// into `sink` — all operation records in deterministic merged order,
    /// then all session records, exactly the sequence the materialized
    /// merge would replay (byte-identity property-tested in
    /// `tests/spill_pipeline.rs`) — so the sink observes the merged log's
    /// contents while resident memory stays O(shards × frame).
    ///
    /// # Errors
    ///
    /// Propagates generation, compilation and simulation errors, plus
    /// spill-file I/O errors from the streamed sharded path.
    pub fn run_des_with_sink<S: LogSink>(
        &self,
        model: &ModelConfig,
        sink: S,
    ) -> Result<(S, DesRunStats), CoreError> {
        if let Some(shards) = self.run.effective_shards() {
            let population = self.compile()?;
            let plan = ShardPlan::new(self.run.n_users, shards);
            let envs = self.shard_envs(model, plan.active_shards())?;
            return Ok(ShardedDesDriver::new().run_spill_streamed(
                &population,
                &self.run,
                shards,
                envs,
                sink,
            )?);
        }
        let (vfs, catalog) = self.generate_fs()?;
        let population = self.compile()?;
        let mut pool = ResourcePool::new();
        let model = model.build(&mut pool);
        Ok(DesDriver::new().run_with_sink(
            vfs,
            catalog,
            &population,
            model,
            pool,
            &self.run,
            sink,
        )?)
    }

    /// Runs the workload in simulated time with a streaming
    /// [`SummarySink`]: O(1) memory regardless of users × sessions × ops,
    /// retaining exactly the aggregates the Chapter 5 sweeps report. A
    /// sharded run stays memory-flat: every shard streams into its own
    /// sink and the sinks are folded with [`SummarySink::merge`] in shard
    /// order — no log is ever materialized.
    ///
    /// # Errors
    ///
    /// Propagates generation, compilation and simulation errors.
    pub fn run_des_summary(
        &self,
        model: &ModelConfig,
    ) -> Result<(SummarySink, DesRunStats), CoreError> {
        if let Some(shards) = self.run.effective_shards() {
            let population = self.compile()?;
            let plan = ShardPlan::new(self.run.n_users, shards);
            let envs = self.shard_envs(model, plan.active_shards())?;
            return Ok(ShardedDesDriver::new().run_summary(
                &population,
                &self.run,
                shards,
                envs,
            )?);
        }
        self.run_des_with_sink(model, SummarySink::new())
    }

    /// Runs the workload's DES on a background producer thread, streaming
    /// each executed [`OpRecord`] through a channel holding at most
    /// `capacity` records. The producer blocks whenever the consumer falls
    /// `capacity` ops behind, so the two sides together keep O(capacity)
    /// records resident however many ops the run generates — the feed for
    /// an open-loop drive whose memory is bounded by its queue, not the
    /// log. Sharded specs stream too (the producer runs the spill-merge
    /// path), with ops arriving in the merged deterministic order.
    ///
    /// Errors inside the producer (generation, simulation, spill I/O)
    /// surface from [`DesOpStream::finish`] after the channel closes.
    pub fn stream_des_ops(&self, model: &ModelConfig, capacity: usize) -> DesOpStream {
        let (sink, rx) = ChannelSink::bounded(capacity);
        let spec = self.clone();
        let model = model.clone();
        let handle = std::thread::spawn(move || {
            spec.run_des_with_sink(&model, sink)
                .map(|(_sink, stats)| stats)
        });
        DesOpStream { rx, handle }
    }
}

/// A DES run in flight on a producer thread, exposed as a bounded channel
/// of op records (see [`WorkloadSpec::stream_des_ops`]).
#[derive(Debug)]
pub struct DesOpStream {
    rx: std::sync::mpsc::Receiver<OpRecord>,
    handle: std::thread::JoinHandle<Result<DesRunStats, CoreError>>,
}

impl DesOpStream {
    /// Splits into the op receiver and the join handle, for consumers that
    /// wire the two into separate machinery (the drive glue hands the
    /// receiver to a `ChannelSource` and joins the handle from its finish
    /// hook).
    #[must_use]
    pub fn into_parts(
        self,
    ) -> (
        std::sync::mpsc::Receiver<OpRecord>,
        std::thread::JoinHandle<Result<DesRunStats, CoreError>>,
    ) {
        (self.rx, self.handle)
    }

    /// Drains any unread ops and joins the producer, returning its run
    /// stats.
    ///
    /// # Errors
    ///
    /// Propagates the producer's generation, simulation or spill I/O
    /// error; a panicked producer surfaces as [`CoreError::Spec`].
    pub fn finish(self) -> Result<DesRunStats, CoreError> {
        // Dropping the receiver disconnects the sink, so a producer mid-
        // send never deadlocks against a consumer that has stopped reading.
        drop(self.rx);
        self.handle
            .join()
            .map_err(|_| CoreError::Spec("DES producer thread panicked".into()))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uswg_usim::PopulationSpec;

    fn quick_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::paper_default().unwrap();
        spec.run.sessions_per_user = 2;
        spec.run.n_users = 1;
        spec.fsc = spec
            .fsc
            .with_files_per_user(10)
            .unwrap()
            .with_shared_files(15)
            .unwrap();
        spec
    }

    #[test]
    fn paper_default_builds_and_runs_direct() {
        let log = quick_spec().run_direct().unwrap();
        assert_eq!(log.sessions().len(), 2);
        assert!(!log.ops().is_empty());
    }

    #[test]
    fn paper_default_runs_des() {
        let report = quick_spec().run_des(&ModelConfig::default_nfs()).unwrap();
        assert_eq!(report.model, "nfs");
        assert_eq!(report.log.sessions().len(), 2);
    }

    #[test]
    fn json_round_trip() {
        // This environment's JSON float codec rounds long decimals (e.g.
        // 9.7/100 → "0.097"), so equality is checked at the fixed point one
        // round trip reaches, not bit-for-bit against the original.
        let spec = quick_spec();
        let once = WorkloadSpec::from_json(&spec.to_json().unwrap()).unwrap();
        let twice = WorkloadSpec::from_json(&once.to_json().unwrap()).unwrap();
        assert_eq!(once, twice);
        assert_eq!(spec.run, once.run);
        assert_eq!(spec.vfs, once.vfs);
        // Semantics survive: fractions still sum to one and the spec runs.
        let total: f64 = once.fsc.categories.iter().map(|c| c.fraction).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn specs_without_a_faults_section_parse_to_no_faults() {
        // Back-compat: every spec written before fault injection existed
        // (no "faults" key in the run section) must deserialize to the
        // disabled default, and a spec carrying a fault section must
        // round-trip it.
        let spec = quick_spec();
        let mut json = spec.to_json().unwrap();
        assert!(
            json.contains("\"faults\""),
            "serialized spec should carry the faults section"
        );
        // Strip the faults object out of the JSON the way an old file
        // simply would not have it (the codec pretty-prints, so strip
        // from the comma preceding the key through the matching brace).
        let key = json.find("\"faults\"").expect("faults key present");
        let start = json[..key].rfind(',').expect("comma before faults key");
        let obj_start = json[key..].find('{').unwrap() + key;
        let mut depth = 0usize;
        let mut end = obj_start;
        for (i, b) in json[obj_start..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = obj_start + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        json.replace_range(start..end, "");
        let old_style = WorkloadSpec::from_json(&json).unwrap();
        assert_eq!(old_style.run.faults, uswg_usim::FaultSpec::default());
        assert!(!old_style.run.faults.enabled());

        // And an enabled spec survives the round trip intact.
        let faulted = quick_spec().with_run(quick_spec().run.with_faults(uswg_usim::FaultSpec {
            fault_ppm: 20_000,
            ..uswg_usim::FaultSpec::default()
        }));
        let back = WorkloadSpec::from_json(&faulted.to_json().unwrap()).unwrap();
        assert_eq!(back.run.faults, faulted.run.faults);
        assert!(back.run.faults.enabled());
    }

    #[test]
    fn builders_replace_parts() {
        let spec = quick_spec()
            .with_population(PopulationSpec::single(crate::presets::light_user()).unwrap())
            .with_run(RunConfig::default().with_users(2).with_sessions(1));
        assert_eq!(spec.run.n_users, 2);
        assert_eq!(spec.population.types()[0].0.name, "light I/O");
    }

    #[test]
    fn popularity_threads_through_the_spec() {
        // The PR 4 follow-up: a spec opts into weighted file popularity
        // declaratively. A heavy Zipf skew must change which files the
        // seeded workload touches; the default (and an explicit uniform)
        // must reproduce the historical pick stream byte for byte.
        let base = quick_spec();
        let mut uniform = base.clone();
        uniform.fsc = uniform
            .fsc
            .with_popularity(uswg_fsc::FilePopularity::Uniform);
        let mut zipf = base.clone();
        zipf.fsc = zipf
            .fsc
            .with_popularity(uswg_fsc::FilePopularity::Zipf { exponent: 3.0 });
        let model = ModelConfig::default_local();
        let base_log = base.run_des(&model).unwrap().log.to_json().unwrap();
        let uniform_log = uniform.run_des(&model).unwrap().log.to_json().unwrap();
        let zipf_log = zipf.run_des(&model).unwrap().log.to_json().unwrap();
        assert_eq!(
            base_log, uniform_log,
            "explicit uniform must equal the default"
        );
        assert_ne!(zipf_log, base_log, "a heavy skew must change the picks");
        // And the policy survives the JSON round trip specs live as.
        let back = WorkloadSpec::from_json(&zipf.to_json().unwrap()).unwrap();
        assert_eq!(
            back.fsc.popularity,
            uswg_fsc::FilePopularity::Zipf { exponent: 3.0 }
        );
    }

    #[test]
    fn generate_fs_is_seed_deterministic() {
        let spec = quick_spec();
        let (_, c1) = spec.generate_fs().unwrap();
        let (_, c2) = spec.generate_fs().unwrap();
        let paths1: Vec<_> = c1.files().iter().map(|f| (&f.path, f.size)).collect();
        let paths2: Vec<_> = c2.files().iter().map(|f| (&f.path, f.size)).collect();
        assert_eq!(paths1, paths2);
    }
}
