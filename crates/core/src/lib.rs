//! # uswg — a user-oriented synthetic workload generator
//!
//! A Rust reproduction of *"A User-Oriented Synthetic Workload Generator"*
//! (Wei-lun Kao, UIUC CRHC-91-19; ICDCS 1992): a workload generator that
//! simulates typed users accessing files at the system-call level, driven by
//! arbitrary distributions of the usage measures.
//!
//! The workspace follows the paper's architecture:
//!
//! * **GDS** (`uswg-distr`) — distribution specification, fitting and CDF
//!   tables ([`DistributionSpec`], [`PhaseTypeExp`], [`MultiStageGamma`]);
//! * **FSC** (`uswg-fsc`) — creation of the initial synthetic file system
//!   ([`FscSpec`], [`FileSystemCreator`]);
//! * **USIM** (`uswg-usim`) — simulation of login sessions issuing file I/O
//!   ([`PopulationSpec`], [`DesDriver`], [`DirectDriver`]);
//! * substrates the paper ran on real hardware: an in-memory UNIX-like file
//!   system (`uswg-vfs`) and queueing models of NFS-like installations
//!   (`uswg-netfs`) on a discrete-event kernel (`uswg-sim`).
//!
//! This crate ties them together: [`WorkloadSpec`] is the one-document
//! description of a whole workload (serde/JSON round-trippable),
//! [`presets`] holds the paper's Tables 5.1, 5.2 and 5.4, and
//! [`experiment`] re-runs the Chapter 5 studies (user sweeps, population
//! mixes, access-size sweeps).
//!
//! # Quickstart
//!
//! ```
//! use uswg_core::{presets, experiment::ModelConfig, WorkloadSpec};
//!
//! # fn main() -> Result<(), uswg_core::CoreError> {
//! // The paper's workload: Table 5.1 file system, Table 5.2 heavy users.
//! let mut spec = WorkloadSpec::paper_default()?;
//! spec.run.sessions_per_user = 2; // keep the doctest quick
//! let report = spec.run_des(&ModelConfig::default_nfs())?;
//! assert!(!report.log.sessions().is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiment;
pub mod presets;

mod error;
mod synth;
mod workload;

pub use error::CoreError;
pub use synth::{synthesize_spec, MeasureFit, SynthesisOptions, SynthesizedSpec};
pub use workload::{DesOpStream, WorkloadSpec};

// Re-export the workspace surface so downstream users need one dependency.
// (`uswg_analyze::fit` items are re-exported individually — the module name
// `fit` is taken by the `uswg_distr::fit` re-export below.)
pub use uswg_analyze::{
    collect_fit, metrics, scan, Align, CountingReader, FitCollector, FitObservation, FitOutcome,
    Histogram, Reservoir, ScanOptions, ScanOutcome, StreamingSummary, Summary, Table,
};
pub use uswg_distr::{
    fit, gof, plot, spec::DistributionSpec, CdfTable, DistrError, Distribution, EmpiricalCdf,
    Exponential, MultiStageGamma, PdfTable, PhaseTypeExp,
};
pub use uswg_fsc::{
    CatalogFile, CategorySpec, FileCatalog, FileCategory, FilePopularity, FileSystemCreator,
    FileType, FillPattern, FscError, FscSpec, Owner, UsageClass,
};
pub use uswg_netfs::{
    isolated_response, DistributedNfsModel, DistributedNfsParams, FileId, LocalDiskModel,
    LocalDiskParams, NfsModel, NfsParams, OpKind, OpRequest, PendingOp, ServiceModel, Stage,
    StepOutcome, WholeFileCacheModel, WholeFileCacheParams,
};
pub use uswg_sim::{
    Resource, ResourcePool, ResourceStats, Scheduler, SchedulerBackend, SimTime, Simulation, World,
};
pub use uswg_usim::{
    merge_shard_logs, merge_spill_shards, read_spill, read_spill_path, shard_model_seed,
    AccessPattern, BehaviorState, CategoryUsage, CompiledPopulation, DesDriver, DesReport,
    DesRunStats, DirectDriver, DiurnalProfile, FaultSpec, FrameIndex, FrameIndexEntry, LogSink,
    OpRecord, PhaseModel, PhaseState, PopulationSpec, RetryPolicy, RunConfig, SessionRecord,
    ShardEnv, ShardPlan, ShardedDesDriver, SpillCodec, SpillReader, SpillRecord, SpillSink,
    SummarySink, UsageLog, UserTypeSpec, UsimError,
};
pub use uswg_vfs::{Fd, FsError, Metadata, OpenFlags, SeekFrom, Vfs, VfsConfig};
