//! Spec synthesis: turning a [`FitObservation`] measured from a capture
//! into a complete, runnable [`WorkloadSpec`].
//!
//! This is the emission half of `uswg fit`. `uswg-analyze` collects the
//! observation (reservoir samples, op mixes, per-category aggregates, file
//! geometry); [`synthesize_spec`] runs the `uswg-distr` fitters over every
//! measure, picks the best family by KS statistic, and assembles the
//! user-oriented characterization the paper argues for — user types with
//! fitted think-time/access-size/session distributions, per-category
//! usage, a file-system characterization sized from the observed inode
//! footprint, and VFS limits with headroom to actually replay it.
//!
//! Every fitting decision is reported in [`SynthesizedSpec::fits`]; every
//! place the data was too thin to fit falls back to a constant and says so
//! in [`SynthesizedSpec::warnings`] — a fitted spec never hides where it
//! stopped trusting the capture.

use crate::{CoreError, WorkloadSpec};
use serde::Serialize;
use uswg_analyze::fit::{FitObservation, Reservoir, TypeObservation};
use uswg_distr::fit::fit_best;
use uswg_distr::gof::KsTest;
use uswg_distr::DistributionSpec;
use uswg_fsc::{CategorySpec, FscSpec, Owner};
use uswg_usim::{CategoryUsage, PopulationSpec, RunConfig, UserTypeSpec};
use uswg_vfs::VfsConfig;

/// Knobs of the synthesis.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisOptions {
    /// Largest mixture order [`fit_best`] may try per measure.
    pub max_components: usize,
    /// Below this many samples a measure is not fitted at all — it becomes
    /// a constant at the sample mean, with a warning. Tiny samples make
    /// every family fit perfectly and none mean anything.
    pub min_samples: usize,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        Self {
            max_components: 3,
            min_samples: 8,
        }
    }
}

/// How one usage measure was modeled.
#[derive(Debug, Clone, Serialize)]
pub struct MeasureFit {
    /// Which measure, as `type-<i>/<measure>` (or `fsc/<category>`).
    pub measure: String,
    /// The family chosen ("exponential", "phase:2", "gamma:1", …, or
    /// "constant" for degenerate/thin samples).
    pub family: String,
    /// Values the measure stream offered (the reservoir may hold fewer).
    pub seen: u64,
    /// Samples actually fitted.
    pub fitted: usize,
    /// KS test of the fitted samples against the chosen model (absent for
    /// constant fallbacks — a KS distance against a point mass says
    /// nothing).
    pub ks: Option<KsTest>,
}

/// The output of [`synthesize_spec`].
#[derive(Debug, Clone)]
pub struct SynthesizedSpec {
    /// The runnable spec.
    pub spec: WorkloadSpec,
    /// Per-measure model choices, in emission order.
    pub fits: Vec<MeasureFit>,
    /// Everywhere the capture was too thin or too degenerate to fit and a
    /// documented fallback was used instead.
    pub warnings: Vec<String>,
}

/// Running state threaded through the per-measure fits.
struct Synth<'a> {
    opts: &'a SynthesisOptions,
    fits: Vec<MeasureFit>,
    warnings: Vec<String>,
}

impl Synth<'_> {
    /// Fits one measure's reservoir, falling back to a constant (at the
    /// sample mean, or `fallback` when no sample exists) when the data is
    /// too thin or the fitters reject it.
    fn measure(&mut self, name: String, r: &Reservoir, fallback: f64) -> DistributionSpec {
        let samples = r.samples();
        let mean = if samples.is_empty() {
            fallback
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        let constant = DistributionSpec::constant(mean.max(0.0));
        if samples.len() < self.opts.min_samples {
            self.warnings.push(format!(
                "{name}: only {} samples (< {}), using constant {mean:.3}",
                samples.len(),
                self.opts.min_samples
            ));
            self.fits.push(MeasureFit {
                measure: name,
                family: "constant".into(),
                seen: r.seen(),
                fitted: samples.len(),
                ks: None,
            });
            return constant;
        }
        match fit_best(samples, self.opts.max_components) {
            Ok(best) => {
                self.fits.push(MeasureFit {
                    measure: name,
                    family: best.family,
                    seen: r.seen(),
                    fitted: samples.len(),
                    ks: Some(best.ks),
                });
                best.spec
            }
            Err(e) => {
                self.warnings
                    .push(format!("{name}: fit failed ({e}), using constant {mean:.3}"));
                self.fits.push(MeasureFit {
                    measure: name,
                    family: "constant".into(),
                    seen: r.seen(),
                    fitted: samples.len(),
                    ks: None,
                });
                constant
            }
        }
    }
}

/// Builds one user type from its observation.
fn synthesize_type(s: &mut Synth<'_>, t: &TypeObservation) -> UserTypeSpec {
    let name = format!("type-{}", t.type_index);
    let think_time = s.measure(format!("{name}/think_time"), &t.think_time, 0.0);
    let access_size = s.measure(format!("{name}/access_size"), &t.access_size, 1024.0);
    let inter_session = s.measure(format!("{name}/inter_session"), &t.inter_session, 0.0);
    let mut categories: Vec<CategoryUsage> = t
        .categories
        .iter()
        .map(|c| {
            let label = format!("{name}/{}", c.category);
            let mean_size = if c.files == 0 {
                0.0
            } else {
                c.file_bytes as f64 / c.files as f64
            };
            let mean_files = if c.sessions == 0 {
                0.0
            } else {
                c.files as f64 / c.sessions as f64
            };
            CategoryUsage {
                category: c.category,
                access_per_byte: c.access_per_byte(),
                file_size: s.measure(format!("{label}/file_size"), &c.file_sizes, mean_size),
                files: s.measure(format!("{label}/files"), &c.files_per_session, mean_files),
                pct_users: if t.sessions == 0 {
                    0.0
                } else {
                    (c.sessions as f64 / t.sessions as f64).min(1.0)
                },
                access_pattern: Default::default(),
            }
        })
        .collect();
    if categories.is_empty() {
        // A type whose every op fell outside the window (or that only ever
        // appeared in session records): give it a minimal read-only usage
        // rather than an unvalidatable empty type.
        s.warnings.push(format!(
            "{name}: no per-category usage observed, defaulting to a light read-only profile"
        ));
        categories.push(CategoryUsage::exponential(
            uswg_fsc::FileCategory::REG_USER_RDONLY,
            1.0,
            2608.0,
            1.0,
            1.0,
        ));
    }
    UserTypeSpec::new(name, think_time, access_size, categories)
        .with_inter_session_time(inter_session)
}

/// Builds the file-system characterization from the capture's distinct-file
/// geometry: category fractions by distinct-file count, per-category size
/// distributions fitted from the observed sizes, and the per-user/shared
/// file counts scaled to the population. Falls back to Table 5.1 (with a
/// warning) when the capture referenced no pre-existing files at all.
fn synthesize_fsc(
    s: &mut Synth<'_>,
    obs: &FitObservation,
    n_users: usize,
) -> Result<FscSpec, CoreError> {
    let preexisting: Vec<_> = obs
        .geometry
        .categories
        .iter()
        .filter(|c| c.category.preexisting() && c.files > 0)
        .collect();
    let total: u64 = preexisting.iter().map(|c| c.files).sum();
    if total == 0 {
        s.warnings.push(
            "capture referenced no pre-existing files; file system falls back to Table 5.1"
                .into(),
        );
        return Ok(crate::presets::table_5_1_fs_spec()?);
    }
    let categories: Vec<CategorySpec> = preexisting
        .iter()
        .map(|c| {
            let mean = c.bytes as f64 / c.files as f64;
            let size = s.measure(format!("fsc/{}", c.category), &c.sizes, mean);
            CategorySpec::new(c.category, c.files as f64 / total as f64, size)
        })
        .collect();
    let user_owned: u64 = preexisting
        .iter()
        .filter(|c| c.category.owner == Owner::User)
        .map(|c| c.files)
        .sum();
    let shared: u64 = preexisting
        .iter()
        .filter(|c| c.category.owner == Owner::Other)
        .map(|c| c.files)
        .sum();
    let mut fsc = FscSpec::new(categories)?;
    fsc.files_per_user = user_owned.div_ceil(n_users.max(1) as u64).max(1);
    fsc.shared_files = shared;
    Ok(fsc)
}

/// VFS limits sized to the observed footprint with 2× headroom: the
/// synthesized run creates fresh NEW/TEMP files beyond the pre-existing
/// population, so replaying at exactly the observed geometry would ENOSPC.
fn synthesize_vfs(obs: &FitObservation) -> VfsConfig {
    let mut vfs = VfsConfig::default();
    let geometry = &obs.geometry;
    let want_inodes = (geometry.max_ino + 1)
        .saturating_add(geometry.total_files)
        .saturating_mul(2);
    if want_inodes > vfs.max_inodes as u64 {
        vfs.max_inodes = want_inodes.next_power_of_two() as usize;
    }
    let want_blocks = geometry
        .total_bytes
        .saturating_mul(2)
        .div_ceil(vfs.block_size as u64);
    if want_blocks > vfs.max_blocks as u64 {
        vfs.max_blocks = want_blocks.next_power_of_two() as usize;
    }
    let want_file = geometry.max_file_size.saturating_mul(2);
    if want_file > vfs.max_file_size {
        vfs.max_file_size = want_file;
    }
    vfs
}

/// Synthesizes a complete runnable [`WorkloadSpec`] from a fit
/// observation: fitted per-type distributions, population fractions from
/// the per-type user counts, run parameters from the session statistics,
/// file-system characterization from the inode footprint.
///
/// # Errors
///
/// Returns [`CoreError::Spec`] when the observation is empty (an empty
/// window must be an error, not a runnable spec resembling a real one),
/// and propagates spec-validation errors.
pub fn synthesize_spec(
    obs: &FitObservation,
    opts: &SynthesisOptions,
) -> Result<SynthesizedSpec, CoreError> {
    if obs.types.is_empty() || obs.users == 0 {
        return Err(CoreError::Spec(
            "capture contains no completed sessions to fit a population from".into(),
        ));
    }
    let mut s = Synth {
        opts,
        fits: Vec::new(),
        warnings: Vec::new(),
    };
    if obs.ops_unclassified > 0 {
        s.warnings.push(format!(
            "{} ops belonged to users with no completed session in the window and were not \
             classified",
            obs.ops_unclassified
        ));
    }

    let total_users: usize = obs.types.iter().map(|t| t.users).sum();
    let types: Vec<(UserTypeSpec, f64)> = obs
        .types
        .iter()
        .map(|t| {
            let spec = synthesize_type(&mut s, t);
            (spec, t.users as f64 / total_users.max(1) as f64)
        })
        .collect();
    let population = PopulationSpec::new(types)?;

    let mean_sessions = obs.sessions as f64 / obs.users as f64;
    let mut run = RunConfig {
        n_users: obs.users,
        sessions_per_user: (mean_sessions.round() as u32).max(1),
        ..RunConfig::default()
    };
    run.record_ops = true;

    let fsc = synthesize_fsc(&mut s, obs, obs.users)?;
    let vfs = synthesize_vfs(obs);

    let spec = WorkloadSpec {
        fsc,
        population,
        run,
        vfs,
    };
    spec.run.validate()?;
    Ok(SynthesizedSpec {
        spec,
        fits: s.fits,
        warnings: s.warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uswg_analyze::fit::FitCollector;
    use uswg_fsc::FileCategory;
    use uswg_netfs::OpKind;
    use uswg_usim::{OpRecord, SessionRecord};

    fn session(user: usize, user_type: usize, n: u32, start: u64, end: u64) -> SessionRecord {
        SessionRecord {
            user,
            user_type,
            session: n,
            start,
            end,
            ops: 4,
            files_referenced: 2,
            file_bytes_referenced: 8192,
            bytes_accessed: 4096,
            bytes_read: 4096,
            bytes_written: 0,
            total_response: 400,
        }
    }

    fn op(user: usize, n: u32, at: u64, ino: u64, bytes: u64) -> OpRecord {
        OpRecord {
            at,
            user,
            session: n,
            op: OpKind::Read,
            ino,
            bytes,
            file_size: 4096,
            response: 50,
            category: FileCategory::REG_USER_RDONLY,
            retries: 0,
            aborted: false,
        }
    }

    fn observation() -> FitObservation {
        let mut c = FitCollector::new();
        for user in 0..4 {
            let ty = user % 2;
            for sess in 0..3u32 {
                let base = sess as u64 * 100_000;
                c.record_session(&session(user, ty, sess, base, base + 60_000));
            }
        }
        let mut t = 0u64;
        for user in 0..4 {
            for sess in 0..3u32 {
                for i in 0..20u64 {
                    t += 137 + (t % 997);
                    c.record_op(&op(user, sess, t, (user as u64) * 8 + i % 5, 256 + i * 64));
                }
            }
        }
        c.finish()
    }

    #[test]
    fn synthesizes_a_runnable_spec() {
        let obs = observation();
        let out = synthesize_spec(&obs, &SynthesisOptions::default()).unwrap();
        let spec = &out.spec;
        assert_eq!(spec.run.n_users, 4);
        assert_eq!(spec.run.sessions_per_user, 3);
        assert_eq!(spec.population.types().len(), 2);
        let fractions: f64 = spec.population.types().iter().map(|&(_, f)| f).sum();
        assert!((fractions - 1.0).abs() < 1e-9);
        // Every type carries usable category usage.
        for (t, _) in spec.population.types() {
            assert!(!t.categories.is_empty());
        }
        // The spec must actually compile and build its file system.
        spec.compile().unwrap();
        spec.generate_fs().unwrap();
        // Model choices were reported for the fitted measures.
        assert!(out
            .fits
            .iter()
            .any(|f| f.measure.ends_with("/access_size") && f.fitted > 0));
    }

    #[test]
    fn empty_observation_is_an_error() {
        let obs = FitCollector::new().finish();
        match synthesize_spec(&obs, &SynthesisOptions::default()) {
            Err(CoreError::Spec(msg)) => assert!(msg.contains("no completed sessions")),
            other => panic!("expected Spec error, got {other:?}"),
        }
    }

    #[test]
    fn thin_samples_fall_back_to_constants_with_warnings() {
        let mut c = FitCollector::new();
        c.record_session(&session(0, 0, 0, 0, 1_000));
        c.record_op(&op(0, 0, 100, 1, 512));
        let out = synthesize_spec(&c.finish(), &SynthesisOptions::default()).unwrap();
        assert!(!out.warnings.is_empty());
        assert!(out.fits.iter().all(|f| f.family == "constant"));
        // Still runnable.
        out.spec.compile().unwrap();
    }

    #[test]
    fn vfs_headroom_covers_the_observed_footprint() {
        let obs = observation();
        let out = synthesize_spec(&obs, &SynthesisOptions::default()).unwrap();
        let vfs = out.spec.vfs;
        assert!(vfs.max_inodes as u64 > obs.geometry.max_ino);
        assert!(vfs.max_file_size >= 2 * obs.geometry.max_file_size);
    }
}
