//! Stage chains: how one operation's latency is assembled from fixed delays
//! and contended services.

use uswg_sim::{ResourceId, ResourcePool, SimTime};

/// One step in an operation's service path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// A fixed latency with no contention (e.g. wire propagation).
    Delay(u64),
    /// FIFO service at a shared resource.
    Service {
        /// The contended resource.
        resource: ResourceId,
        /// Service demand in microseconds.
        micros: u64,
    },
}

/// Result of advancing a pending operation by one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The operation continues; re-advance at this time.
    NextAt(SimTime),
    /// All stages finished.
    Done,
}

/// An operation in flight: the remaining stage chain.
///
/// The driver advances it one stage at a time, always *at the simulated time
/// the stage actually begins*, so resource arrivals happen in global time
/// order and FIFO queueing is exact.
#[derive(Debug, Clone)]
pub struct PendingOp {
    stages: std::collections::VecDeque<Stage>,
}

impl PendingOp {
    /// Wraps a stage chain produced by a timing model.
    pub fn new(stages: Vec<Stage>) -> Self {
        Self {
            stages: stages.into(),
        }
    }

    /// Number of stages still to run.
    pub fn remaining(&self) -> usize {
        self.stages.len()
    }

    /// Executes the next stage at time `now`.
    ///
    /// For a [`Stage::Delay`] the next advance time is `now + delay`; for a
    /// [`Stage::Service`] the job is offered to the resource (queueing there
    /// if busy) and the next advance time is its service completion.
    pub fn advance(&mut self, pool: &mut ResourcePool, now: SimTime) -> StepOutcome {
        match self.stages.pop_front() {
            None => StepOutcome::Done,
            Some(Stage::Delay(micros)) => StepOutcome::NextAt(now.saturating_add(micros)),
            Some(Stage::Service { resource, micros }) => {
                let outcome = pool.get_mut(resource).serve(now, micros);
                StepOutcome::NextAt(outcome.completion)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uswg_sim::Resource;

    #[test]
    fn delay_only_chain_sums() {
        let mut pool = ResourcePool::new();
        let mut op = PendingOp::new(vec![Stage::Delay(10), Stage::Delay(20)]);
        assert_eq!(op.remaining(), 2);
        let t1 = match op.advance(&mut pool, SimTime::ZERO) {
            StepOutcome::NextAt(t) => t,
            StepOutcome::Done => panic!("not done"),
        };
        assert_eq!(t1, SimTime::from_micros(10));
        let t2 = match op.advance(&mut pool, t1) {
            StepOutcome::NextAt(t) => t,
            StepOutcome::Done => panic!("not done"),
        };
        assert_eq!(t2, SimTime::from_micros(30));
        assert_eq!(op.advance(&mut pool, t2), StepOutcome::Done);
    }

    #[test]
    fn service_stage_queues() {
        let mut pool = ResourcePool::new();
        let disk = pool.add(Resource::new("disk", 1));
        let mut a = PendingOp::new(vec![Stage::Service {
            resource: disk,
            micros: 100,
        }]);
        let mut b = PendingOp::new(vec![Stage::Service {
            resource: disk,
            micros: 100,
        }]);
        let ta = a.advance(&mut pool, SimTime::ZERO);
        let tb = b.advance(&mut pool, SimTime::from_micros(10));
        assert_eq!(ta, StepOutcome::NextAt(SimTime::from_micros(100)));
        // b queues behind a.
        assert_eq!(tb, StepOutcome::NextAt(SimTime::from_micros(200)));
    }

    #[test]
    fn empty_chain_is_done_immediately() {
        let mut pool = ResourcePool::new();
        let mut op = PendingOp::new(vec![]);
        assert_eq!(op.advance(&mut pool, SimTime::ZERO), StepOutcome::Done);
    }
}
