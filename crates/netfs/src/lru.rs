//! A small LRU set used by the caching models.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// An LRU set with O(log n) touch/insert/evict.
///
/// Recency is tracked with a monotone clock: `BTreeMap<clock, key>` gives the
/// least-recently-used key as the first entry.
#[derive(Debug, Clone)]
pub(crate) struct LruSet<K> {
    capacity: usize,
    clock: u64,
    by_key: HashMap<K, u64>,
    by_age: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone> LruSet<K> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            clock: 0,
            by_key: HashMap::new(),
            by_age: BTreeMap::new(),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the key is present; refreshes its recency if so.
    pub(crate) fn touch(&mut self, key: &K) -> bool {
        let Some(old) = self.by_key.get(key).copied() else {
            return false;
        };
        self.by_age.remove(&old);
        self.clock += 1;
        self.by_age.insert(self.clock, key.clone());
        self.by_key.insert(key.clone(), self.clock);
        true
    }

    /// Inserts a key (refreshing recency if present); returns the evicted
    /// key, if capacity forced one out.
    pub(crate) fn insert(&mut self, key: K) -> Option<K> {
        if self.touch(&key) {
            return None;
        }
        self.clock += 1;
        self.by_age.insert(self.clock, key.clone());
        self.by_key.insert(key, self.clock);
        if self.by_key.len() > self.capacity {
            let (&age, _) = self.by_age.iter().next().expect("non-empty");
            let victim = self.by_age.remove(&age).expect("present");
            self.by_key.remove(&victim);
            return Some(victim);
        }
        None
    }

    /// Removes a key if present.
    pub(crate) fn remove(&mut self, key: &K) -> bool {
        match self.by_key.remove(key) {
            Some(age) => {
                self.by_age.remove(&age);
                true
            }
            None => false,
        }
    }

    /// Removes every key matching the predicate.
    pub(crate) fn retain<F: FnMut(&K) -> bool>(&mut self, mut keep: F) {
        let dead: Vec<K> = self.by_key.keys().filter(|k| !keep(k)).cloned().collect();
        for k in dead {
            self.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_and_hits() {
        let mut lru = LruSet::new(2);
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(2), None);
        assert!(lru.touch(&1));
        assert!(!lru.touch(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn evicts_least_recent() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        lru.touch(&1); // 2 is now LRU
        assert_eq!(lru.insert(3), Some(2));
        assert!(lru.touch(&1));
        assert!(lru.touch(&3));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        assert_eq!(lru.insert(1), None); // refresh, no eviction
        assert_eq!(lru.insert(3), Some(2));
    }

    #[test]
    fn remove_and_retain() {
        let mut lru = LruSet::new(4);
        for i in 0..4 {
            lru.insert(i);
        }
        assert!(lru.remove(&2));
        assert!(!lru.remove(&2));
        lru.retain(|&k| k != 0);
        assert_eq!(lru.len(), 2);
        assert!(lru.touch(&1));
        assert!(lru.touch(&3));
    }

    #[test]
    fn capacity_one_always_evicts() {
        let mut lru = LruSet::new(1);
        assert_eq!(lru.insert("a"), None);
        assert_eq!(lru.insert("b"), Some("a"));
        assert_eq!(lru.insert("c"), Some("b"));
    }
}
