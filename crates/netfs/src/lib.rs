//! File-system timing models.
//!
//! The paper measures SUN NFS on real hardware: a SUN 3/50 client with the
//! files on a SUN 4/490 server (Section 5.1). This crate replaces that
//! testbed with queueing models built on the `uswg-sim` kernel. Each model
//! maps one file-access system call to a chain of [`Stage`]s — fixed
//! latencies and FIFO [`Resource`](uswg_sim::Resource) services — which the
//! User Simulator walks event by event, so concurrent users contend for the
//! network, the server CPU and the disk exactly as they would on the wire.
//!
//! Three models are provided, matching the comparison study the paper
//! sketches in Section 5.3:
//!
//! * [`LocalDiskModel`] — all I/O served by a local disk;
//! * [`NfsModel`] — an NFS-like remote file system: client CPU, shared
//!   (half-duplex) network, server CPU, server disk, with an optional
//!   client block cache;
//! * [`WholeFileCacheModel`] — an AFS-like design that fetches whole files
//!   on open and writes them back on close.
//!
//! Absolute latencies are parameters ([`NfsParams`], …); defaults are tuned
//! so single-user response times land in the paper's microsecond range, but
//! every experiment in `uswg-bench` reports *shapes* (who wins, slopes,
//! crossovers), not absolute agreement.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod afs;
mod distributed;
mod local;
mod lru;
mod nfs;
mod op;
mod stage;

pub use afs::{WholeFileCacheModel, WholeFileCacheParams};
pub use distributed::{DistributedNfsModel, DistributedNfsParams};
pub use local::{LocalDiskModel, LocalDiskParams};
pub use nfs::{NfsModel, NfsParams};
pub use op::{FileId, OpKind, OpRequest, UserId};
pub use stage::{PendingOp, Stage, StepOutcome};

use rand::RngCore;
use uswg_sim::ResourcePool;

/// A file-system timing model: maps one system call to its service stages.
///
/// Implementations may keep state (caches) and may randomize service times.
/// Resources are registered in a shared [`ResourcePool`] at construction; the
/// returned stages reference them by id so that all users of the pool contend.
pub trait ServiceModel: std::fmt::Debug + Send {
    /// A short human-readable name for reports (e.g. `"nfs"`).
    fn name(&self) -> &str;

    /// Produces the stage chain for one operation.
    fn stages(&mut self, req: &OpRequest, rng: &mut dyn RngCore) -> Vec<Stage>;

    /// Called when a file is removed, so caches can drop entries.
    fn invalidate(&mut self, _file: FileId) {}
}

/// Convenience: runs a single operation to completion against the pool with
/// no competing traffic and returns its response time in microseconds.
///
/// Useful for calibration and tests; real experiments interleave many users
/// through the event loop instead.
pub fn isolated_response(
    model: &mut dyn ServiceModel,
    pool: &mut ResourcePool,
    req: &OpRequest,
    rng: &mut dyn RngCore,
    start: uswg_sim::SimTime,
) -> u64 {
    let mut pending = PendingOp::new(model.stages(req, rng));
    let mut now = start;
    loop {
        match pending.advance(pool, now) {
            StepOutcome::NextAt(t) => now = t,
            StepOutcome::Done => return now - start,
        }
    }
}
