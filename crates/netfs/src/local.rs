//! A local-disk file system model: every call costs client CPU, data and
//! metadata calls also visit the local disk.

use crate::{OpKind, OpRequest, ServiceModel, Stage};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use uswg_sim::{Resource, ResourceId, ResourcePool};

/// Timing parameters of [`LocalDiskModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalDiskParams {
    /// CPU cost of entering/exiting any system call, µs.
    pub cpu_per_call: u64,
    /// Fixed disk cost per data operation (effective seek + rotation with a
    /// warm buffer cache), µs.
    pub disk_per_op: u64,
    /// Disk transfer cost per byte, µs.
    pub disk_per_byte: f64,
    /// Fixed disk cost of a metadata operation (inode fetch/update), µs.
    pub disk_per_metadata_op: u64,
    /// Half-width of the uniform jitter applied to each disk service, µs.
    pub disk_jitter: u64,
}

impl Default for LocalDiskParams {
    /// A late-1980s workstation disk with an effective buffer cache: ~50 µs
    /// syscall overhead, ~300 µs per cached data access, 0.05 µs/byte.
    fn default() -> Self {
        Self {
            cpu_per_call: 50,
            disk_per_op: 300,
            disk_per_byte: 0.05,
            disk_per_metadata_op: 150,
            disk_jitter: 50,
        }
    }
}

/// All file I/O served by one local disk behind one CPU.
#[derive(Debug)]
pub struct LocalDiskModel {
    params: LocalDiskParams,
    cpu: ResourceId,
    disk: ResourceId,
}

impl LocalDiskModel {
    /// Registers the model's CPU and disk in `pool`.
    pub fn new(pool: &mut ResourcePool, params: LocalDiskParams) -> Self {
        let cpu = pool.add(Resource::new("local.cpu", 1));
        let disk = pool.add(Resource::new("local.disk", 1));
        Self { params, cpu, disk }
    }

    /// The model's parameters.
    pub fn params(&self) -> &LocalDiskParams {
        &self.params
    }

    fn jitter(&self, rng: &mut dyn RngCore) -> u64 {
        if self.params.disk_jitter == 0 {
            0
        } else {
            rng.next_u64() % (2 * self.params.disk_jitter + 1)
        }
    }
}

impl ServiceModel for LocalDiskModel {
    fn name(&self) -> &str {
        "local"
    }

    fn stages(&mut self, req: &OpRequest, rng: &mut dyn RngCore) -> Vec<Stage> {
        let p = self.params;
        let mut stages = vec![Stage::Service {
            resource: self.cpu,
            micros: p.cpu_per_call,
        }];
        match req.kind {
            OpKind::Read | OpKind::Write => {
                let transfer = (req.bytes as f64 * p.disk_per_byte).round() as u64;
                stages.push(Stage::Service {
                    resource: self.disk,
                    micros: p.disk_per_op + transfer + self.jitter(rng),
                });
            }
            OpKind::Open | OpKind::Stat => {
                stages.push(Stage::Service {
                    resource: self.disk,
                    micros: p.disk_per_metadata_op + self.jitter(rng),
                });
            }
            OpKind::Create | OpKind::Unlink => {
                // Synchronous metadata update: two disk touches (dir + inode).
                stages.push(Stage::Service {
                    resource: self.disk,
                    micros: 2 * p.disk_per_metadata_op + self.jitter(rng),
                });
            }
            OpKind::Close | OpKind::Seek => {
                // Purely local bookkeeping; CPU charge only.
            }
        }
        stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{isolated_response, FileId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uswg_sim::SimTime;

    fn no_jitter() -> LocalDiskParams {
        LocalDiskParams {
            disk_jitter: 0,
            ..LocalDiskParams::default()
        }
    }

    #[test]
    fn read_cost_scales_with_bytes() {
        let mut pool = ResourcePool::new();
        let mut m = LocalDiskModel::new(&mut pool, no_jitter());
        let mut rng = StdRng::seed_from_u64(1);
        let small = OpRequest::data(0, OpKind::Read, FileId(1), 0, 100, 1_000);
        let big = OpRequest::data(0, OpKind::Read, FileId(1), 0, 10_000, 20_000);
        let t_small = isolated_response(&mut m, &mut pool, &small, &mut rng, SimTime::ZERO);
        let t_big = isolated_response(&mut m, &mut pool, &big, &mut rng, SimTime::from_secs(1));
        assert!(t_big > t_small);
        // Exact: cpu 50 + disk 300 + bytes*0.05.
        assert_eq!(t_small, 50 + 300 + 5);
        assert_eq!(t_big, 50 + 300 + 500);
    }

    #[test]
    fn close_and_seek_skip_the_disk() {
        let mut pool = ResourcePool::new();
        let mut m = LocalDiskModel::new(&mut pool, no_jitter());
        let mut rng = StdRng::seed_from_u64(2);
        for (i, kind) in [OpKind::Close, OpKind::Seek].into_iter().enumerate() {
            let req = OpRequest::metadata(0, kind, FileId(1), 0);
            let start = SimTime::from_secs(i as u64 + 1);
            let t = isolated_response(&mut m, &mut pool, &req, &mut rng, start);
            assert_eq!(t, 50, "{kind} should be CPU-only");
        }
    }

    #[test]
    fn create_costs_more_than_stat() {
        let mut pool = ResourcePool::new();
        let mut m = LocalDiskModel::new(&mut pool, no_jitter());
        let mut rng = StdRng::seed_from_u64(3);
        let stat = OpRequest::metadata(0, OpKind::Stat, FileId(1), 0);
        let creat = OpRequest::metadata(0, OpKind::Create, FileId(1), 0);
        let t_stat = isolated_response(&mut m, &mut pool, &stat, &mut rng, SimTime::ZERO);
        let t_creat = isolated_response(&mut m, &mut pool, &creat, &mut rng, SimTime::from_secs(1));
        assert!(t_creat > t_stat);
    }

    #[test]
    fn jitter_stays_bounded() {
        let mut pool = ResourcePool::new();
        let params = LocalDiskParams {
            disk_jitter: 100,
            ..LocalDiskParams::default()
        };
        let mut m = LocalDiskModel::new(&mut pool, params);
        let mut rng = StdRng::seed_from_u64(4);
        let req = OpRequest::data(0, OpKind::Read, FileId(1), 0, 0, 0);
        for i in 0..200 {
            let t = isolated_response(&mut m, &mut pool, &req, &mut rng, SimTime::from_secs(i + 1));
            let base = 50 + 300;
            assert!(t >= base && t <= base + 200, "t = {t}");
        }
    }

    #[test]
    fn name_is_local() {
        let mut pool = ResourcePool::new();
        let m = LocalDiskModel::new(&mut pool, LocalDiskParams::default());
        assert_eq!(m.name(), "local");
        assert_eq!(m.params().cpu_per_call, 50);
    }
}
