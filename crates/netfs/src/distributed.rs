//! A distributed NFS model: several file servers behind one shared network.
//!
//! Section 4.2 of the paper lists as a limitation that "a distributed file
//! system cannot be currently created automatically. Users have to specify
//! the locations of the files for a distributed file system environment."
//! This model implements that extension: files are placed on one of `N`
//! servers (by a deterministic hash of the file id, or by an explicit
//! placement table), each server has its own CPU and disk, and all clients
//! share one network segment. Adding servers relieves the disk/CPU
//! bottleneck while the shared wire remains — exactly the trade-off a
//! scaled-out NFS installation of the era faced.

use crate::{FileId, NfsParams, OpKind, OpRequest, ServiceModel, Stage};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use uswg_sim::{Resource, ResourceId, ResourcePool};

/// Parameters of [`DistributedNfsModel`]: per-server timing plus the server
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedNfsParams {
    /// Timing of each individual server and of the shared wire.
    pub per_server: NfsParams,
    /// Number of file servers.
    pub servers: usize,
}

impl DistributedNfsParams {
    /// `servers` servers with default per-server timing.
    pub fn with_servers(servers: usize) -> Self {
        Self {
            per_server: NfsParams::default(),
            servers,
        }
    }
}

impl Default for DistributedNfsParams {
    /// Two servers with default NFS timing.
    fn default() -> Self {
        Self::with_servers(2)
    }
}

/// The distributed NFS timing model. See the module documentation for the full model description.
#[derive(Debug)]
pub struct DistributedNfsModel {
    params: DistributedNfsParams,
    client_cpu: ResourceId,
    network: ResourceId,
    server_cpus: Vec<ResourceId>,
    server_disks: Vec<ResourceId>,
    /// Explicit placements override the hash (the paper: "users have to
    /// specify the locations of the files").
    placement: HashMap<FileId, usize>,
}

impl DistributedNfsModel {
    /// Registers client CPU, the shared network and `servers` × (CPU, disk)
    /// in `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `params.servers` is zero.
    pub fn new(pool: &mut ResourcePool, params: DistributedNfsParams) -> Self {
        assert!(params.servers > 0, "need at least one server");
        let client_cpu = pool.add(Resource::new("dnfs.client_cpu", 1));
        let network = pool.add(Resource::new("dnfs.network", 1));
        let mut server_cpus = Vec::with_capacity(params.servers);
        let mut server_disks = Vec::with_capacity(params.servers);
        for s in 0..params.servers {
            server_cpus.push(pool.add(Resource::new(format!("dnfs.server{s}.cpu"), 1)));
            server_disks.push(pool.add(Resource::new(format!("dnfs.server{s}.disk"), 1)));
        }
        Self {
            params,
            client_cpu,
            network,
            server_cpus,
            server_disks,
            placement: HashMap::new(),
        }
    }

    /// The model's parameters.
    pub fn params(&self) -> &DistributedNfsParams {
        &self.params
    }

    /// Pins a file to a server (index into `0..servers`), overriding the
    /// hash placement.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn place_file(&mut self, file: FileId, server: usize) {
        assert!(server < self.params.servers, "server index out of range");
        self.placement.insert(file, server);
    }

    /// The server a file lives on.
    pub fn server_of(&self, file: FileId) -> usize {
        if let Some(&s) = self.placement.get(&file) {
            return s;
        }
        // Fibonacci hash of the inode number: stable, well-spread.
        (file.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.params.servers
    }

    fn jitter(&self, rng: &mut dyn RngCore) -> u64 {
        let j = self.params.per_server.disk_jitter;
        if j == 0 {
            0
        } else {
            rng.next_u64() % (2 * j + 1)
        }
    }

    fn wire(&self, payload: u64) -> u64 {
        let p = self.params.per_server;
        ((payload + p.rpc_header_bytes) as f64 * p.net_per_byte).round() as u64
    }

    fn remote(
        &self,
        server: usize,
        disk_micros: u64,
        request_payload: u64,
        reply_payload: u64,
    ) -> Vec<Stage> {
        let p = self.params.per_server;
        let mut stages = vec![
            Stage::Service {
                resource: self.client_cpu,
                micros: p.client_cpu_per_call,
            },
            Stage::Delay(p.net_latency),
            Stage::Service {
                resource: self.network,
                micros: self.wire(request_payload),
            },
            Stage::Service {
                resource: self.server_cpus[server],
                micros: p.server_cpu_per_call,
            },
        ];
        if disk_micros > 0 {
            stages.push(Stage::Service {
                resource: self.server_disks[server],
                micros: disk_micros,
            });
        }
        stages.push(Stage::Delay(p.net_latency));
        stages.push(Stage::Service {
            resource: self.network,
            micros: self.wire(reply_payload),
        });
        stages
    }
}

impl ServiceModel for DistributedNfsModel {
    fn name(&self) -> &str {
        "distributed-nfs"
    }

    fn stages(&mut self, req: &OpRequest, rng: &mut dyn RngCore) -> Vec<Stage> {
        let p = self.params.per_server;
        let server = self.server_of(req.file);
        match req.kind {
            OpKind::Read => {
                let disk = p.server_disk_per_op
                    + (req.bytes as f64 * p.server_disk_per_byte).round() as u64
                    + self.jitter(rng);
                self.remote(server, disk, 0, req.bytes)
            }
            OpKind::Write => {
                let disk = p.server_disk_per_op
                    + (req.bytes as f64 * p.server_disk_per_byte).round() as u64
                    + self.jitter(rng);
                self.remote(server, disk, req.bytes, 0)
            }
            OpKind::Open | OpKind::Stat => {
                let disk = p.server_disk_per_metadata_op + self.jitter(rng);
                self.remote(server, disk, 0, 0)
            }
            OpKind::Create | OpKind::Unlink => {
                let disk =
                    p.sync_metadata_factor * p.server_disk_per_metadata_op + self.jitter(rng);
                self.remote(server, disk, 0, 0)
            }
            OpKind::Close | OpKind::Seek => vec![Stage::Service {
                resource: self.client_cpu,
                micros: p.client_cpu_per_call,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isolated_response;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uswg_sim::SimTime;

    fn no_jitter(servers: usize) -> DistributedNfsParams {
        DistributedNfsParams {
            per_server: NfsParams {
                disk_jitter: 0,
                ..NfsParams::default()
            },
            servers,
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let mut pool = ResourcePool::new();
        let _ = DistributedNfsModel::new(&mut pool, DistributedNfsParams::with_servers(0));
    }

    #[test]
    fn single_server_matches_plain_nfs_read_cost() {
        let mut pool_d = ResourcePool::new();
        let mut d = DistributedNfsModel::new(&mut pool_d, no_jitter(1));
        let mut pool_n = ResourcePool::new();
        let mut n = crate::NfsModel::new(
            &mut pool_n,
            NfsParams {
                disk_jitter: 0,
                ..NfsParams::default()
            },
        );
        let req = OpRequest::data(0, OpKind::Read, FileId(5), 0, 1024, 8192);
        let mut rng = StdRng::seed_from_u64(1);
        let td = isolated_response(&mut d, &mut pool_d, &req, &mut rng, SimTime::ZERO);
        let tn = isolated_response(&mut n, &mut pool_n, &req, &mut rng, SimTime::ZERO);
        assert_eq!(td, tn);
    }

    #[test]
    fn hash_placement_spreads_files() {
        let mut pool = ResourcePool::new();
        let m = DistributedNfsModel::new(&mut pool, no_jitter(4));
        let mut counts = [0usize; 4];
        for ino in 0..4_000u64 {
            counts[m.server_of(FileId(ino))] += 1;
        }
        for &c in &counts {
            assert!(
                (800..=1_200).contains(&c),
                "unbalanced placement: {counts:?}"
            );
        }
    }

    #[test]
    fn explicit_placement_overrides_hash() {
        let mut pool = ResourcePool::new();
        let mut m = DistributedNfsModel::new(&mut pool, no_jitter(3));
        let file = FileId(42);
        let hashed = m.server_of(file);
        let pinned = (hashed + 1) % 3;
        m.place_file(file, pinned);
        assert_eq!(m.server_of(file), pinned);
    }

    #[test]
    fn two_servers_halve_disk_contention() {
        // Two simultaneous small reads of files on different servers
        // overlap at the disks; on one server they serialize. (Reads are
        // kept small so the disk, not the shared wire, is the bottleneck.)
        let run = |servers: usize| {
            let mut pool = ResourcePool::new();
            let mut m = DistributedNfsModel::new(&mut pool, no_jitter(servers));
            // Pick two files on different servers when possible.
            let f1 = FileId(0);
            let mut f2 = FileId(1);
            if servers > 1 {
                for ino in 1..100 {
                    if m.server_of(FileId(ino)) != m.server_of(f1) {
                        f2 = FileId(ino);
                        break;
                    }
                }
            } else {
                // Same server by construction.
                f2 = FileId(0);
            }
            let mut rng = StdRng::seed_from_u64(2);
            let r1 = OpRequest::data(0, OpKind::Read, f1, 0, 512, 65_536);
            let r2 = OpRequest::data(1, OpKind::Read, f2, 0, 512, 65_536);
            let mut a = crate::PendingOp::new(m.stages(&r1, &mut rng));
            let mut b = crate::PendingOp::new(m.stages(&r2, &mut rng));
            let (mut ta, mut tb) = (SimTime::ZERO, SimTime::ZERO);
            loop {
                let a_next = a.remaining() > 0 && (ta <= tb || b.remaining() == 0);
                if a_next {
                    match a.advance(&mut pool, ta) {
                        crate::StepOutcome::NextAt(t) => ta = t,
                        crate::StepOutcome::Done => {}
                    }
                } else if b.remaining() > 0 {
                    match b.advance(&mut pool, tb) {
                        crate::StepOutcome::NextAt(t) => tb = t,
                        crate::StepOutcome::Done => {}
                    }
                } else {
                    break;
                }
                if a.remaining() == 0 && b.remaining() == 0 {
                    break;
                }
            }
            ta.max(tb).micros()
        };
        let one = run(1);
        let two = run(2);
        assert!(
            two < one,
            "two servers must finish the pair sooner: {two} vs {one}"
        );
    }

    #[test]
    fn resources_are_per_server() {
        let mut pool = ResourcePool::new();
        let _ = DistributedNfsModel::new(&mut pool, no_jitter(3));
        // client cpu + network + 3 × (cpu + disk).
        assert_eq!(pool.len(), 2 + 6);
        let names: Vec<String> = pool.iter().map(|(_, r)| r.name().to_string()).collect();
        assert!(names.contains(&"dnfs.server2.disk".to_string()));
    }
}
