//! The NFS-like remote file system model.
//!
//! One operation issued by a client crosses: client CPU → shared half-duplex
//! network (request) → server CPU → server disk (for calls that touch data
//! or metadata) → network (reply). Every hop except wire propagation is a
//! FIFO resource shared by all simulated users, which is what produces the
//! paper's response-time growth as concurrent users are added (Figures
//! 5.6–5.11) and the per-byte economies of larger access sizes (Figure 5.12).
//!
//! An optional client block cache (off by default, as NFS v2 semantics are
//! write-through and the paper's workload is read-mostly across many files)
//! serves repeat reads of cached blocks at client CPU cost only; the
//! `model_ablation` bench measures its effect.

use crate::lru::LruSet;
use crate::{FileId, OpKind, OpRequest, ServiceModel, Stage};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use uswg_sim::{Resource, ResourceId, ResourcePool};

/// Timing parameters of [`NfsModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NfsParams {
    /// Client CPU cost per system call, µs.
    pub client_cpu_per_call: u64,
    /// One-way wire propagation + protocol latency (uncontended), µs.
    pub net_latency: u64,
    /// Network transmission cost per byte on the shared medium, µs.
    pub net_per_byte: f64,
    /// RPC header bytes added to every request and reply.
    pub rpc_header_bytes: u64,
    /// Server CPU cost per RPC, µs.
    pub server_cpu_per_call: u64,
    /// Server disk cost per data operation, µs.
    pub server_disk_per_op: u64,
    /// Server disk transfer cost per byte, µs.
    pub server_disk_per_byte: f64,
    /// Server disk cost per metadata operation (lookup/getattr), µs.
    pub server_disk_per_metadata_op: u64,
    /// Multiplier on metadata cost for synchronous create/unlink.
    pub sync_metadata_factor: u64,
    /// Half-width of the uniform jitter on each disk service, µs.
    pub disk_jitter: u64,
    /// Client block cache capacity in blocks; 0 disables the cache.
    pub cache_blocks: usize,
    /// Block size used by the client cache, bytes.
    pub cache_block_bytes: u64,
}

impl Default for NfsParams {
    /// Tuned to a diskless-workstation-era installation: ~10 Mbit shared
    /// Ethernet (0.4 µs/byte effective), ~1 ms server disk data op. A
    /// single-user 1 KiB read lands near 1.9 ms, the same order as the
    /// paper's Table 5.3 measurements; no client cache.
    fn default() -> Self {
        Self {
            client_cpu_per_call: 60,
            net_latency: 60,
            net_per_byte: 0.4,
            rpc_header_bytes: 160,
            server_cpu_per_call: 120,
            server_disk_per_op: 1_000,
            server_disk_per_byte: 0.1,
            server_disk_per_metadata_op: 250,
            sync_metadata_factor: 2,
            disk_jitter: 150,
            cache_blocks: 0,
            cache_block_bytes: 8_192,
        }
    }
}

impl NfsParams {
    /// The defaults with a client block cache of `blocks` blocks.
    pub fn with_cache(blocks: usize) -> Self {
        Self {
            cache_blocks: blocks,
            ..Self::default()
        }
    }
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read calls fully served from the client cache.
    pub read_hits: u64,
    /// Read calls that went to the server.
    pub read_misses: u64,
}

/// The NFS-like client/server timing model. See the module documentation for the full model description.
#[derive(Debug)]
pub struct NfsModel {
    params: NfsParams,
    client_cpu: ResourceId,
    network: ResourceId,
    server_cpu: ResourceId,
    server_disk: ResourceId,
    cache: Option<LruSet<(FileId, u64)>>,
    cache_stats: CacheStats,
}

impl NfsModel {
    /// Registers client CPU, shared network, server CPU and server disk in
    /// `pool`.
    pub fn new(pool: &mut ResourcePool, params: NfsParams) -> Self {
        let client_cpu = pool.add(Resource::new("nfs.client_cpu", 1));
        let network = pool.add(Resource::new("nfs.network", 1));
        let server_cpu = pool.add(Resource::new("nfs.server_cpu", 1));
        let server_disk = pool.add(Resource::new("nfs.server_disk", 1));
        let cache = (params.cache_blocks > 0).then(|| LruSet::new(params.cache_blocks));
        Self {
            params,
            client_cpu,
            network,
            server_cpu,
            server_disk,
            cache,
            cache_stats: CacheStats::default(),
        }
    }

    /// The model's parameters.
    pub fn params(&self) -> &NfsParams {
        &self.params
    }

    /// Cache hit/miss counters (all zero when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    fn jitter(&self, rng: &mut dyn RngCore) -> u64 {
        if self.params.disk_jitter == 0 {
            0
        } else {
            rng.next_u64() % (2 * self.params.disk_jitter + 1)
        }
    }

    fn wire(&self, payload: u64) -> u64 {
        ((payload + self.params.rpc_header_bytes) as f64 * self.params.net_per_byte).round() as u64
    }

    /// The block indices `[first, last]` covered by an access.
    fn blocks_of(&self, offset: u64, bytes: u64) -> (u64, u64) {
        let bs = self.params.cache_block_bytes.max(1);
        let first = offset / bs;
        let last = if bytes == 0 {
            first
        } else {
            (offset + bytes - 1) / bs
        };
        (first, last)
    }

    /// True when every block of the access is cached (refreshing recency).
    fn cache_covers(&mut self, file: FileId, offset: u64, bytes: u64) -> bool {
        let (first, last) = self.blocks_of(offset, bytes);
        let Some(cache) = self.cache.as_mut() else {
            return false;
        };
        (first..=last).all(|b| cache.touch(&(file, b)))
    }

    fn cache_fill(&mut self, file: FileId, offset: u64, bytes: u64) {
        let (first, last) = self.blocks_of(offset, bytes);
        if let Some(cache) = self.cache.as_mut() {
            for b in first..=last {
                cache.insert((file, b));
            }
        }
    }

    /// Full remote round trip: request over the net, server work, reply.
    fn remote(&mut self, disk_micros: u64, request_payload: u64, reply_payload: u64) -> Vec<Stage> {
        let p = self.params;
        let mut stages = vec![
            Stage::Service {
                resource: self.client_cpu,
                micros: p.client_cpu_per_call,
            },
            Stage::Delay(p.net_latency),
            Stage::Service {
                resource: self.network,
                micros: self.wire(request_payload),
            },
            Stage::Service {
                resource: self.server_cpu,
                micros: p.server_cpu_per_call,
            },
        ];
        if disk_micros > 0 {
            stages.push(Stage::Service {
                resource: self.server_disk,
                micros: disk_micros,
            });
        }
        stages.push(Stage::Delay(p.net_latency));
        stages.push(Stage::Service {
            resource: self.network,
            micros: self.wire(reply_payload),
        });
        stages
    }
}

impl ServiceModel for NfsModel {
    fn name(&self) -> &str {
        "nfs"
    }

    fn stages(&mut self, req: &OpRequest, rng: &mut dyn RngCore) -> Vec<Stage> {
        let p = self.params;
        match req.kind {
            OpKind::Read => {
                if self.cache_covers(req.file, req.offset, req.bytes) {
                    self.cache_stats.read_hits += 1;
                    return vec![Stage::Service {
                        resource: self.client_cpu,
                        micros: p.client_cpu_per_call,
                    }];
                }
                if self.cache.is_some() {
                    self.cache_stats.read_misses += 1;
                }
                let disk = p.server_disk_per_op
                    + (req.bytes as f64 * p.server_disk_per_byte).round() as u64
                    + self.jitter(rng);
                let stages = self.remote(disk, 0, req.bytes);
                self.cache_fill(req.file, req.offset, req.bytes);
                stages
            }
            OpKind::Write => {
                // NFS v2 writes are write-through: always synchronous at the
                // server; written blocks become cached for later reads.
                let disk = p.server_disk_per_op
                    + (req.bytes as f64 * p.server_disk_per_byte).round() as u64
                    + self.jitter(rng);
                let stages = self.remote(disk, req.bytes, 0);
                self.cache_fill(req.file, req.offset, req.bytes);
                stages
            }
            OpKind::Open | OpKind::Stat => {
                let disk = p.server_disk_per_metadata_op + self.jitter(rng);
                self.remote(disk, 0, 0)
            }
            OpKind::Create | OpKind::Unlink => {
                let disk =
                    p.sync_metadata_factor * p.server_disk_per_metadata_op + self.jitter(rng);
                if req.kind == OpKind::Unlink {
                    self.invalidate(req.file);
                }
                self.remote(disk, 0, 0)
            }
            OpKind::Close | OpKind::Seek => {
                // Local: NFS v2 has no close RPC; lseek moves a local cursor.
                vec![Stage::Service {
                    resource: self.client_cpu,
                    micros: p.client_cpu_per_call,
                }]
            }
        }
    }

    fn invalidate(&mut self, file: FileId) {
        if let Some(cache) = self.cache.as_mut() {
            cache.retain(|&(f, _)| f != file);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isolated_response;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uswg_sim::SimTime;

    fn no_jitter() -> NfsParams {
        NfsParams {
            disk_jitter: 0,
            ..NfsParams::default()
        }
    }

    fn response(model: &mut NfsModel, pool: &mut ResourcePool, req: &OpRequest, at: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(at);
        isolated_response(model, pool, req, &mut rng, SimTime::from_secs(at))
    }

    #[test]
    fn read_crosses_all_resources() {
        let mut pool = ResourcePool::new();
        let mut m = NfsModel::new(&mut pool, no_jitter());
        let req = OpRequest::data(0, OpKind::Read, FileId(1), 0, 1024, 8_192);
        let t = response(&mut m, &mut pool, &req, 1);
        let p = no_jitter();
        let expect = p.client_cpu_per_call
            + p.net_latency
            + (p.rpc_header_bytes as f64 * p.net_per_byte).round() as u64
            + p.server_cpu_per_call
            + p.server_disk_per_op
            + (1024.0 * p.server_disk_per_byte).round() as u64
            + p.net_latency
            + ((1024 + p.rpc_header_bytes) as f64 * p.net_per_byte).round() as u64;
        assert_eq!(t, expect);
    }

    #[test]
    fn per_byte_cost_falls_with_access_size() {
        // The Figure 5.12 effect: fixed per-call costs amortize.
        let mut pool = ResourcePool::new();
        let mut m = NfsModel::new(&mut pool, no_jitter());
        let mut prev = f64::INFINITY;
        for (i, &size) in [128u64, 256, 512, 1024, 2048].iter().enumerate() {
            let req = OpRequest::data(0, OpKind::Read, FileId(1), 0, size, 1 << 20);
            let t = response(&mut m, &mut pool, &req, i as u64 + 1) as f64 / size as f64;
            assert!(t < prev, "per-byte cost must fall: {t} vs {prev}");
            prev = t;
        }
    }

    #[test]
    fn close_and_seek_are_client_local() {
        let mut pool = ResourcePool::new();
        let mut m = NfsModel::new(&mut pool, no_jitter());
        for (i, kind) in [OpKind::Close, OpKind::Seek].into_iter().enumerate() {
            let req = OpRequest::metadata(0, kind, FileId(1), 0);
            let t = response(&mut m, &mut pool, &req, 7 + i as u64);
            assert_eq!(t, no_jitter().client_cpu_per_call);
        }
    }

    #[test]
    fn cache_hits_skip_the_server() {
        let mut pool = ResourcePool::new();
        let mut m = NfsModel::new(
            &mut pool,
            NfsParams {
                disk_jitter: 0,
                ..NfsParams::with_cache(1024)
            },
        );
        let req = OpRequest::data(0, OpKind::Read, FileId(9), 0, 4096, 65_536);
        let cold = response(&mut m, &mut pool, &req, 1);
        let warm = response(&mut m, &mut pool, &req, 2);
        assert!(warm < cold / 5, "warm {warm} vs cold {cold}");
        assert_eq!(m.cache_stats().read_hits, 1);
        assert_eq!(m.cache_stats().read_misses, 1);
    }

    #[test]
    fn unlink_invalidates_cache() {
        let mut pool = ResourcePool::new();
        let mut m = NfsModel::new(
            &mut pool,
            NfsParams {
                disk_jitter: 0,
                ..NfsParams::with_cache(1024)
            },
        );
        let read = OpRequest::data(0, OpKind::Read, FileId(3), 0, 1024, 4096);
        response(&mut m, &mut pool, &read, 1);
        let unlink = OpRequest::metadata(0, OpKind::Unlink, FileId(3), 4096);
        response(&mut m, &mut pool, &unlink, 2);
        let again = response(&mut m, &mut pool, &read, 3);
        let cold = response(&mut m, &mut pool, &read, 4); // now cached again
        assert!(
            again > cold,
            "after unlink the read must miss: {again} vs {cold}"
        );
        assert_eq!(m.cache_stats().read_misses, 2);
    }

    #[test]
    fn writes_are_write_through_even_with_cache() {
        let mut pool = ResourcePool::new();
        let mut m = NfsModel::new(
            &mut pool,
            NfsParams {
                disk_jitter: 0,
                ..NfsParams::with_cache(1024)
            },
        );
        let w = OpRequest::data(0, OpKind::Write, FileId(4), 0, 1024, 1024);
        let t1 = response(&mut m, &mut pool, &w, 1);
        let t2 = response(&mut m, &mut pool, &w, 2);
        assert_eq!(t1, t2, "writes never hit the cache");
        // But the written block satisfies a later read.
        let r = OpRequest::data(0, OpKind::Read, FileId(4), 0, 1024, 1024);
        let tr = response(&mut m, &mut pool, &r, 3);
        assert_eq!(tr, m.params().client_cpu_per_call);
    }

    #[test]
    fn contention_grows_response_time() {
        // Two users issuing simultaneously: the second queues.
        let mut pool = ResourcePool::new();
        let mut m = NfsModel::new(&mut pool, no_jitter());
        let mut rng = StdRng::seed_from_u64(5);
        let req0 = OpRequest::data(0, OpKind::Read, FileId(1), 0, 1024, 8192);
        let req1 = OpRequest::data(1, OpKind::Read, FileId(2), 0, 1024, 8192);
        // Interleave both ops stage by stage via PendingOp directly.
        let mut a = crate::PendingOp::new(m.stages(&req0, &mut rng));
        let mut b = crate::PendingOp::new(m.stages(&req1, &mut rng));
        let mut ta = SimTime::ZERO;
        let mut tb = SimTime::ZERO;
        loop {
            // Advance whichever op is earlier, mimicking the event loop.
            let next_is_a = ta <= tb && a.remaining() > 0;
            if next_is_a {
                match a.advance(&mut pool, ta) {
                    crate::StepOutcome::NextAt(t) => ta = t,
                    crate::StepOutcome::Done => {
                        if b.remaining() == 0 {
                            break;
                        }
                    }
                }
            } else if b.remaining() > 0 {
                match b.advance(&mut pool, tb) {
                    crate::StepOutcome::NextAt(t) => tb = t,
                    crate::StepOutcome::Done => {
                        if a.remaining() == 0 {
                            break;
                        }
                    }
                }
            } else {
                break;
            }
        }
        let solo = {
            let mut pool2 = ResourcePool::new();
            let mut m2 = NfsModel::new(&mut pool2, no_jitter());
            response(&mut m2, &mut pool2, &req0, 9)
        };
        let slower = ta.max(tb).micros();
        assert!(
            slower > solo,
            "the queued op must finish later than a solo op: {slower} vs {solo}"
        );
    }
}
