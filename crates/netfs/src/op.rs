//! Operation descriptions handed to the timing models.

use serde::{Deserialize, Serialize};

/// Identifier of a simulated user (index into the population).
pub type UserId = usize;

/// Identifier of a file as seen by the timing models (the VFS inode number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// The file-access system calls the workload model generates (Section 3.1.2:
/// "the interface in UNIX systems appears in the form of system calls, e.g.,
/// open, read, and ioctl").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpKind {
    /// `open(2)` of an existing file.
    Open,
    /// `close(2)`.
    Close,
    /// `read(2)`.
    Read,
    /// `write(2)`.
    Write,
    /// `creat(2)` — create + truncate + open for writing.
    Create,
    /// `unlink(2)`.
    Unlink,
    /// `stat(2)` / `fstat(2)`.
    Stat,
    /// `lseek(2)` — purely local cursor motion.
    Seek,
}

impl OpKind {
    /// Whether the operation transfers file data (as opposed to metadata).
    pub fn is_data(self) -> bool {
        matches!(self, OpKind::Read | OpKind::Write)
    }

    /// All operation kinds, for iteration in reports.
    pub const ALL: [OpKind; 8] = [
        OpKind::Open,
        OpKind::Close,
        OpKind::Read,
        OpKind::Write,
        OpKind::Create,
        OpKind::Unlink,
        OpKind::Stat,
        OpKind::Seek,
    ];

    /// The system-call name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Open => "open",
            OpKind::Close => "close",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Create => "creat",
            OpKind::Unlink => "unlink",
            OpKind::Stat => "stat",
            OpKind::Seek => "lseek",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One operation offered to a timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRequest {
    /// The issuing user.
    pub user: UserId,
    /// The system call.
    pub kind: OpKind,
    /// Bytes transferred (reads/writes; zero for metadata calls).
    pub bytes: u64,
    /// The file operated on.
    pub file: FileId,
    /// Byte offset of the access within the file.
    pub offset: u64,
    /// Current logical size of the file (drives whole-file transfer costs).
    pub file_size: u64,
}

impl OpRequest {
    /// A metadata operation (no payload bytes).
    pub fn metadata(user: UserId, kind: OpKind, file: FileId, file_size: u64) -> Self {
        Self {
            user,
            kind,
            bytes: 0,
            file,
            offset: 0,
            file_size,
        }
    }

    /// A data operation at the given offset.
    pub fn data(
        user: UserId,
        kind: OpKind,
        file: FileId,
        offset: u64,
        bytes: u64,
        file_size: u64,
    ) -> Self {
        Self {
            user,
            kind,
            bytes,
            file,
            offset,
            file_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_classification() {
        assert!(OpKind::Read.is_data());
        assert!(OpKind::Write.is_data());
        assert!(!OpKind::Open.is_data());
        assert!(!OpKind::Seek.is_data());
    }

    #[test]
    fn names_are_syscall_names() {
        assert_eq!(OpKind::Create.name(), "creat");
        assert_eq!(OpKind::Seek.to_string(), "lseek");
        assert_eq!(OpKind::ALL.len(), 8);
    }

    #[test]
    fn constructors() {
        let m = OpRequest::metadata(1, OpKind::Stat, FileId(7), 4096);
        assert_eq!(m.bytes, 0);
        assert_eq!(m.file_size, 4096);
        let d = OpRequest::data(2, OpKind::Read, FileId(8), 100, 512, 4096);
        assert_eq!(d.bytes, 512);
        assert_eq!(d.offset, 100);
    }
}
