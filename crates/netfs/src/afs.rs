//! An AFS-like whole-file caching model.
//!
//! Section 5.3 of the paper motivates comparing file systems (it cites the
//! Andrew file system benchmark study \[HKM+88\]). This model implements the
//! Andrew design point: `open` fetches the whole file into a local cache,
//! reads and writes are then local, and `close` writes dirty files back to
//! the server. It trades expensive opens for cheap per-byte access — the
//! crossover against [`crate::NfsModel`] depends on how many bytes of a file
//! a user actually touches, which is exactly what the workload generator's
//! usage distributions control.

use crate::lru::LruSet;
use crate::{FileId, OpKind, OpRequest, ServiceModel, Stage};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use uswg_sim::{Resource, ResourceId, ResourcePool};

/// Timing parameters of [`WholeFileCacheModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WholeFileCacheParams {
    /// Client CPU cost per system call, µs.
    pub client_cpu_per_call: u64,
    /// One-way wire propagation latency, µs.
    pub net_latency: u64,
    /// Network transmission cost per byte, µs.
    pub net_per_byte: f64,
    /// Protocol header bytes per transfer.
    pub rpc_header_bytes: u64,
    /// Server CPU cost per request, µs.
    pub server_cpu_per_call: u64,
    /// Server disk cost per whole-file transfer, µs.
    pub server_disk_per_op: u64,
    /// Server disk transfer cost per byte, µs.
    pub server_disk_per_byte: f64,
    /// Local cache-disk cost per data operation, µs.
    pub local_per_op: u64,
    /// Local cache read/write cost per byte, µs (memory/local disk mix).
    pub local_per_byte: f64,
    /// Number of whole files the client cache holds.
    pub cache_files: usize,
}

impl Default for WholeFileCacheParams {
    /// Same wire and server speeds as [`crate::NfsParams`] defaults, with a
    /// 64-file client cache.
    fn default() -> Self {
        Self {
            client_cpu_per_call: 60,
            net_latency: 60,
            net_per_byte: 0.4,
            rpc_header_bytes: 160,
            server_cpu_per_call: 120,
            server_disk_per_op: 1_000,
            server_disk_per_byte: 0.1,
            local_per_op: 250,
            local_per_byte: 0.03,
            cache_files: 64,
        }
    }
}

/// The AFS-like whole-file caching model. See the module documentation for the full model description.
#[derive(Debug)]
pub struct WholeFileCacheModel {
    params: WholeFileCacheParams,
    client_cpu: ResourceId,
    network: ResourceId,
    server_cpu: ResourceId,
    server_disk: ResourceId,
    local_disk: ResourceId,
    cache: LruSet<FileId>,
    dirty: HashSet<FileId>,
    fetches: u64,
    writebacks: u64,
}

impl WholeFileCacheModel {
    /// Registers client CPU, network, server CPU, server disk and the local
    /// cache disk in `pool`.
    pub fn new(pool: &mut ResourcePool, params: WholeFileCacheParams) -> Self {
        let client_cpu = pool.add(Resource::new("afs.client_cpu", 1));
        let network = pool.add(Resource::new("afs.network", 1));
        let server_cpu = pool.add(Resource::new("afs.server_cpu", 1));
        let server_disk = pool.add(Resource::new("afs.server_disk", 1));
        let local_disk = pool.add(Resource::new("afs.local_disk", 1));
        Self {
            params,
            client_cpu,
            network,
            server_cpu,
            server_disk,
            local_disk,
            cache: LruSet::new(params.cache_files.max(1)),
            dirty: HashSet::new(),
            fetches: 0,
            writebacks: 0,
        }
    }

    /// The model's parameters.
    pub fn params(&self) -> &WholeFileCacheParams {
        &self.params
    }

    /// Whole files fetched from the server so far.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Whole files written back on close so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Stage chain for moving `bytes` between client and server.
    fn whole_file_transfer(&self, bytes: u64) -> Vec<Stage> {
        let p = self.params;
        let wire = ((bytes + p.rpc_header_bytes) as f64 * p.net_per_byte).round() as u64;
        let disk = p.server_disk_per_op + (bytes as f64 * p.server_disk_per_byte).round() as u64;
        vec![
            Stage::Service {
                resource: self.client_cpu,
                micros: p.client_cpu_per_call,
            },
            Stage::Delay(p.net_latency),
            Stage::Service {
                resource: self.network,
                micros: wire,
            },
            Stage::Service {
                resource: self.server_cpu,
                micros: p.server_cpu_per_call,
            },
            Stage::Service {
                resource: self.server_disk,
                micros: disk,
            },
            Stage::Delay(p.net_latency),
            Stage::Service {
                resource: self.network,
                micros: (p.rpc_header_bytes as f64 * p.net_per_byte).round() as u64,
            },
        ]
    }

    fn local_data(&self, bytes: u64) -> Vec<Stage> {
        let p = self.params;
        vec![
            Stage::Service {
                resource: self.client_cpu,
                micros: p.client_cpu_per_call,
            },
            Stage::Service {
                resource: self.local_disk,
                micros: p.local_per_op + (bytes as f64 * p.local_per_byte).round() as u64,
            },
        ]
    }
}

impl ServiceModel for WholeFileCacheModel {
    fn name(&self) -> &str {
        "whole-file-cache"
    }

    fn stages(&mut self, req: &OpRequest, _rng: &mut dyn RngCore) -> Vec<Stage> {
        let p = self.params;
        match req.kind {
            OpKind::Open => {
                if self.cache.touch(&req.file) {
                    // Cache hit: validation callback only (client CPU).
                    vec![Stage::Service {
                        resource: self.client_cpu,
                        micros: p.client_cpu_per_call,
                    }]
                } else {
                    self.fetches += 1;
                    if let Some(evicted) = self.cache.insert(req.file) {
                        self.dirty.remove(&evicted);
                    }
                    self.whole_file_transfer(req.file_size)
                }
            }
            OpKind::Create => {
                // Creation registers the file at the server (metadata RPC)
                // and starts it cached and dirty locally.
                if let Some(evicted) = self.cache.insert(req.file) {
                    self.dirty.remove(&evicted);
                }
                self.dirty.insert(req.file);
                self.whole_file_transfer(0)
            }
            OpKind::Read => self.local_data(req.bytes),
            OpKind::Write => {
                // Locally-produced data enters the cache; an eviction drops
                // the victim's dirtiness with it.
                if let Some(evicted) = self.cache.insert(req.file) {
                    self.dirty.remove(&evicted);
                }
                self.dirty.insert(req.file);
                self.local_data(req.bytes)
            }
            OpKind::Close => {
                if self.dirty.remove(&req.file) {
                    self.writebacks += 1;
                    self.whole_file_transfer(req.file_size)
                } else {
                    vec![Stage::Service {
                        resource: self.client_cpu,
                        micros: p.client_cpu_per_call,
                    }]
                }
            }
            OpKind::Unlink => {
                self.invalidate(req.file);
                self.whole_file_transfer(0)
            }
            OpKind::Stat => {
                if self.cache.touch(&req.file) {
                    vec![Stage::Service {
                        resource: self.client_cpu,
                        micros: p.client_cpu_per_call,
                    }]
                } else {
                    self.whole_file_transfer(0)
                }
            }
            OpKind::Seek => vec![Stage::Service {
                resource: self.client_cpu,
                micros: p.client_cpu_per_call,
            }],
        }
    }

    fn invalidate(&mut self, file: FileId) {
        self.cache.remove(&file);
        self.dirty.remove(&file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isolated_response;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uswg_sim::SimTime;

    fn response(
        model: &mut WholeFileCacheModel,
        pool: &mut ResourcePool,
        req: &OpRequest,
        at: u64,
    ) -> u64 {
        let mut rng = StdRng::seed_from_u64(at);
        isolated_response(model, pool, req, &mut rng, SimTime::from_secs(at))
    }

    #[test]
    fn open_fetches_whole_file_once() {
        let mut pool = ResourcePool::new();
        let mut m = WholeFileCacheModel::new(&mut pool, WholeFileCacheParams::default());
        let open = OpRequest::metadata(0, OpKind::Open, FileId(1), 100_000);
        let cold = response(&mut m, &mut pool, &open, 1);
        let warm = response(&mut m, &mut pool, &open, 2);
        assert!(cold > 10 * warm, "cold {cold} vs warm {warm}");
        assert_eq!(m.fetches(), 1);
    }

    #[test]
    fn open_cost_scales_with_file_size() {
        let mut pool = ResourcePool::new();
        let mut m = WholeFileCacheModel::new(&mut pool, WholeFileCacheParams::default());
        let small = OpRequest::metadata(0, OpKind::Open, FileId(1), 1_000);
        let large = OpRequest::metadata(0, OpKind::Open, FileId(2), 1_000_000);
        let t_small = response(&mut m, &mut pool, &small, 1);
        let t_large = response(&mut m, &mut pool, &large, 2);
        assert!(t_large > 10 * t_small);
    }

    #[test]
    fn reads_after_open_are_local() {
        let mut pool = ResourcePool::new();
        let mut m = WholeFileCacheModel::new(&mut pool, WholeFileCacheParams::default());
        let open = OpRequest::metadata(0, OpKind::Open, FileId(1), 50_000);
        response(&mut m, &mut pool, &open, 1);
        let read = OpRequest::data(0, OpKind::Read, FileId(1), 0, 8_192, 50_000);
        let t = response(&mut m, &mut pool, &read, 2);
        // client cpu 60 + cache disk 250 + 8192 × 0.03 ≈ 556: an order of
        // magnitude under the remote path (~5 ms for 8 KiB).
        assert!(t < 700, "local read should be cheap, got {t}");
        let remote = OpRequest::data(0, OpKind::Read, FileId(9), 0, 8_192, 8_192);
        let t_open = response(
            &mut m,
            &mut pool,
            &OpRequest::metadata(0, OpKind::Open, FileId(9), 8_192),
            3,
        );
        assert!(t_open > 5 * t, "uncached open {t_open} vs local read {t}");
        let _ = remote;
    }

    #[test]
    fn dirty_close_writes_back() {
        let mut pool = ResourcePool::new();
        let mut m = WholeFileCacheModel::new(&mut pool, WholeFileCacheParams::default());
        let open = OpRequest::metadata(0, OpKind::Open, FileId(1), 50_000);
        response(&mut m, &mut pool, &open, 1);
        let write = OpRequest::data(0, OpKind::Write, FileId(1), 0, 1_000, 50_000);
        response(&mut m, &mut pool, &write, 2);
        let close = OpRequest::metadata(0, OpKind::Close, FileId(1), 50_000);
        let t_dirty = response(&mut m, &mut pool, &close, 3);
        assert_eq!(m.writebacks(), 1);
        // Second close without writes is cheap.
        let t_clean = response(&mut m, &mut pool, &close, 4);
        assert!(t_dirty > 10 * t_clean, "{t_dirty} vs {t_clean}");
    }

    #[test]
    fn eviction_forgets_dirtiness() {
        let mut pool = ResourcePool::new();
        let params = WholeFileCacheParams {
            cache_files: 1,
            ..WholeFileCacheParams::default()
        };
        let mut m = WholeFileCacheModel::new(&mut pool, params);
        let w = OpRequest::data(0, OpKind::Write, FileId(1), 0, 10, 100);
        response(&mut m, &mut pool, &w, 1);
        // Opening another file evicts file 1.
        let open2 = OpRequest::metadata(0, OpKind::Open, FileId(2), 100);
        response(&mut m, &mut pool, &open2, 2);
        let close1 = OpRequest::metadata(0, OpKind::Close, FileId(1), 100);
        response(&mut m, &mut pool, &close1, 3);
        assert_eq!(m.writebacks(), 0, "evicted file must not write back");
    }

    #[test]
    fn unlink_drops_cache_entry() {
        let mut pool = ResourcePool::new();
        let mut m = WholeFileCacheModel::new(&mut pool, WholeFileCacheParams::default());
        let open = OpRequest::metadata(0, OpKind::Open, FileId(5), 10_000);
        response(&mut m, &mut pool, &open, 1);
        let unlink = OpRequest::metadata(0, OpKind::Unlink, FileId(5), 10_000);
        response(&mut m, &mut pool, &unlink, 2);
        let reopen = response(&mut m, &mut pool, &open, 3);
        assert!(reopen > 1_000, "reopen after unlink must fetch again");
        assert_eq!(m.fetches(), 2);
        assert_eq!(m.name(), "whole-file-cache");
    }
}
