//! Open-loop live driver: replay a generated usage log against a real
//! target in scaled wall-clock time.
//!
//! The simulator half of the workspace *predicts* response times from
//! queueing models; this crate *measures* them, by offering the same
//! operation stream to a live [`Target`] (the paper's "drive the real
//! system with the synthetic workload" step). The driver is **open-loop**:
//! arrivals follow the log's timestamps (divided by a speedup factor) and
//! never wait for completions, so an overloaded target sees the offered
//! load a closed loop would throttle away.
//!
//! Overload is therefore the design center, not an edge case:
//!
//! * a **bounded queue** between the pacer and the workers sheds the
//!   *oldest* waiting operation when full (the one most likely to be past
//!   its deadline anyway) and counts every shed — memory never grows with
//!   the backlog;
//! * at most `max_in_flight` operations execute concurrently (the worker
//!   pool size *is* the cap);
//! * every operation carries a **deadline** from its scheduled arrival;
//!   an operation that would start or retry past its deadline is dropped
//!   as expired rather than adding load the client has given up on;
//! * transient target errors retry under the same deterministic
//!   [`RetryPolicy`] (exponential backoff, decorrelated jitter) the
//!   simulator's fault injection uses, and exhaustion aborts the op;
//! * latencies fold into a fixed-size log-bucketed [`LatencyHistogram`]
//!   (~3% relative error), so the percentile report is O(1) memory too.
//!
//! Every offered operation is accounted for exactly once:
//! `offered = completed + shed + expired + aborted`.
//!
//! The pacer pulls from an [`OpSource`] — a fallible stream of timestamped
//! ops — so replay length is decoupled from resident memory: a live DES
//! run feeds it through a bounded channel ([`ChannelSource`]), a spill
//! capture streams one frame at a time ([`SpillSource`]), and the original
//! materialized path survives as [`VecSource`] behind [`drive`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod histogram;
mod loopback;
mod source;

pub use histogram::LatencyHistogram;
pub use loopback::{LoopbackConfig, LoopbackVfs};
pub use source::{ChannelSource, FinishFn, OpSource, SourceError, SpillSource, VecSource};

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use uswg_usim::{OpRecord, RetryPolicy};

/// A transient failure reported by a [`Target`]. Every target error is
/// treated as retryable; the [`RetryPolicy`] bounds how often.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetError(pub String);

impl std::fmt::Display for TargetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TargetError {}

/// Something a generated workload can be replayed against.
///
/// `apply` executes one operation and blocks for however long the target
/// takes — service time is the target's business, pacing is the driver's.
/// Implementations must be callable from several worker threads at once
/// (`&self`): internal locking decides how much real concurrency the
/// target admits.
pub trait Target: Send + Sync {
    /// Executes one operation against the live system.
    ///
    /// # Errors
    ///
    /// Returns [`TargetError`] for a transient failure; the driver retries
    /// under its [`RetryPolicy`].
    fn apply(&self, op: &OpRecord) -> Result<(), TargetError>;

    /// A short name for reports.
    fn name(&self) -> &'static str {
        "target"
    }
}

/// Errors from the drive layer itself (bad configuration, a failed op
/// source; target errors are retried/aborted per-op, never surfaced here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriveError {
    /// A configuration field is out of range.
    BadConfig(&'static str),
    /// The op source failed mid-run (truncated spill, dead DES producer).
    /// Every op offered before the failure was still drained — completed,
    /// shed, or expired — and the carried report accounts for each one.
    Source {
        /// What the source reported.
        message: String,
        /// The partial report over the ops actually offered.
        report: Box<DriveReport>,
    },
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::BadConfig(msg) => write!(f, "bad drive config: {msg}"),
            DriveError::Source { message, report } => write!(
                f,
                "op source failed after {} ops: {message}",
                report.offered
            ),
        }
    }
}

impl std::error::Error for DriveError {}

/// How to pace, bound and retry an open-loop replay.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveConfig {
    /// Wall-time compression: an op at simulated time `t` µs is offered at
    /// wall time `t / speedup` µs. 1.0 replays in real time.
    pub speedup: f64,
    /// Maximum concurrently executing operations (= worker pool size).
    pub max_in_flight: usize,
    /// Bounded pacer→worker queue; when full the **oldest** waiting op is
    /// shed (counted in [`DriveReport::shed`]). Memory never exceeds this.
    pub queue_cap: usize,
    /// Per-op deadline in wall µs from the scheduled arrival; an op that
    /// would start or retry past it is counted expired. 0 = no deadline.
    pub deadline_micros: u64,
    /// Backoff schedule for transient target errors (same policy type the
    /// simulator's fault injection uses).
    pub retry: RetryPolicy,
    /// Seeds the per-worker jitter streams.
    pub seed: u64,
}

impl Default for DriveConfig {
    fn default() -> Self {
        Self {
            speedup: 1.0,
            max_in_flight: 4,
            queue_cap: 1024,
            deadline_micros: 0,
            retry: RetryPolicy::default(),
            seed: 0x5EED,
        }
    }
}

impl DriveConfig {
    fn validate(&self) -> Result<(), DriveError> {
        if !(self.speedup.is_finite() && self.speedup > 0.0) {
            return Err(DriveError::BadConfig("speedup must be finite and > 0"));
        }
        if self.max_in_flight == 0 {
            return Err(DriveError::BadConfig("max_in_flight must be at least 1"));
        }
        if self.queue_cap == 0 {
            return Err(DriveError::BadConfig("queue_cap must be at least 1"));
        }
        if self.retry.max_attempts == 0 {
            return Err(DriveError::BadConfig(
                "retry.max_attempts must be at least 1",
            ));
        }
        Ok(())
    }
}

/// What happened to an offered operation stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveReport {
    /// Target name the stream was offered to.
    pub target: &'static str,
    /// Operations offered (every op the source yielded).
    pub offered: u64,
    /// Operations that completed successfully.
    pub completed: u64,
    /// Operations shed from the full queue (oldest-first).
    pub shed: u64,
    /// Operations dropped because their deadline passed before they could
    /// start (or retry).
    pub expired: u64,
    /// Operations that exhausted their retry budget.
    pub aborted: u64,
    /// Transiently failed attempts that were retried.
    pub retries: u64,
    /// Highest observed concurrent executions (≤ `max_in_flight`).
    pub peak_in_flight: usize,
    /// The configured in-flight cap, for the report.
    pub max_in_flight: usize,
    /// Wall-clock duration of the replay in µs.
    pub wall_micros: u64,
    /// Queue-wait + service latency of **completed** ops, µs.
    pub latency: LatencyHistogram,
}

impl DriveReport {
    /// Completed operations per wall second (goodput).
    pub fn goodput_ops_per_sec(&self) -> f64 {
        if self.wall_micros == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e6 / self.wall_micros as f64
    }

    /// The human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut text = format!(
            "drive report (target {}): offered {} | completed {} | shed {} | \
             expired {} | aborted {}\n",
            self.target, self.offered, self.completed, self.shed, self.expired, self.aborted
        );
        let _ = writeln!(
            text,
            "retries {} | peak in-flight {}/{} | wall {:.3} s | goodput {:.1} ops/s",
            self.retries,
            self.peak_in_flight,
            self.max_in_flight,
            self.wall_micros as f64 / 1e6,
            self.goodput_ops_per_sec(),
        );
        let _ = writeln!(
            text,
            "latency µs (queue+service, completed ops): p50 {} | p90 {} | p99 {} | max {}",
            self.latency.quantile(0.50),
            self.latency.quantile(0.90),
            self.latency.quantile(0.99),
            self.latency.max(),
        );
        text
    }
}

/// One queued operation: the record plus its scheduled arrival instant.
struct Job {
    scheduled: Instant,
    op: OpRecord,
}

struct QueueState {
    jobs: VecDeque<Job>,
    done: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    ready: Condvar,
    shed: AtomicU64,
    in_flight: AtomicUsize,
    peak: AtomicUsize,
}

/// Per-worker tallies, merged after join.
#[derive(Default)]
struct WorkerStats {
    completed: u64,
    expired: u64,
    aborted: u64,
    retries: u64,
    latency: LatencyHistogram,
}

/// Fractional bits used to hold the speedup divisor in fixed point.
const SPEEDUP_FRAC_BITS: u32 = 32;

/// `at / speedup` in wall µs, computed in 128-bit fixed point.
///
/// The obvious `(at as f64 / speedup) as u64` loses integer precision
/// above 2^53 µs (an `f64` mantissa is 53 bits) and its cast saturates
/// silently; here the division is exact for any `at` when the 32.32
/// divisor represents the speedup exactly (all integral speedups up to
/// 2^21 do), and the result saturates at `u64::MAX` explicitly.
fn scaled_arrival_micros(at: u64, speedup: f64) -> u64 {
    // validate() guarantees speedup is finite and > 0; clamp the rounded
    // divisor to one ulp so a denormal speedup never divides by zero.
    let divisor = (speedup * (1u64 << SPEEDUP_FRAC_BITS) as f64).round();
    let divisor = if divisor >= u128::MAX as f64 {
        u128::MAX
    } else {
        (divisor as u128).max(1)
    };
    let scaled = ((at as u128) << SPEEDUP_FRAC_BITS) / divisor;
    u64::try_from(scaled).unwrap_or(u64::MAX)
}

/// Replays the materialized `ops` (sorted by timestamp) against `target`
/// under `config` — the [`VecSource`] adapter over [`drive_stream`].
///
/// Blocks until every offered operation is accounted for; under overload
/// that is bounded by the queue capacity and the deadline, never by the
/// backlog — see the module docs for the accounting identity.
///
/// # Errors
///
/// Returns [`DriveError::BadConfig`] for out-of-range configuration.
pub fn drive(
    ops: Vec<OpRecord>,
    target: Arc<dyn Target>,
    config: &DriveConfig,
) -> Result<DriveReport, DriveError> {
    drive_stream(VecSource::new(ops), target, config)
}

/// Replays a streaming [`OpSource`] against `target` under `config`.
///
/// The pacer pulls one op at a time, so resident memory is bounded by the
/// queue (plus whatever the source buffers), never by the stream length.
/// The wall clock anchors at the *first* op, so a slow-starting producer
/// (a DES warming up its file system) does not count as lateness; an op
/// whose scaled arrival has already passed is offered immediately.
///
/// # Errors
///
/// Returns [`DriveError::BadConfig`] for out-of-range configuration. When
/// the source fails mid-run the already-queued ops still drain and the
/// partial report comes back inside [`DriveError::Source`], with the
/// conservation identity intact over the ops actually offered.
pub fn drive_stream<S: OpSource>(
    mut source: S,
    target: Arc<dyn Target>,
    config: &DriveConfig,
) -> Result<DriveReport, DriveError> {
    config.validate()?;
    let shared = Arc::new(Shared {
        queue: Mutex::new(QueueState {
            jobs: VecDeque::with_capacity(config.queue_cap.min(4096)),
            done: false,
        }),
        ready: Condvar::new(),
        shed: AtomicU64::new(0),
        in_flight: AtomicUsize::new(0),
        peak: AtomicUsize::new(0),
    });

    let workers: Vec<_> = (0..config.max_in_flight)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let target = Arc::clone(&target);
            let retry = config.retry;
            let deadline = config.deadline_micros;
            let mut rng =
                StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            std::thread::spawn(move || worker(&shared, &*target, retry, deadline, &mut rng))
        })
        .collect();

    // The pacer: offer each op at its scaled arrival time. A full queue
    // sheds its oldest entry — the pacer itself never blocks on workers,
    // which is what makes the loop open.
    let mut start = Instant::now();
    let mut offered = 0u64;
    let mut source_error: Option<SourceError> = None;
    loop {
        let (at, op) = match source.next_op() {
            Ok(Some(item)) => item,
            Ok(None) => break,
            Err(err) => {
                source_error = Some(err);
                break;
            }
        };
        if offered == 0 {
            start = Instant::now();
        }
        offered += 1;
        let scheduled = start + Duration::from_micros(scaled_arrival_micros(at, config.speedup));
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let mut q = shared.queue.lock().expect("queue poisoned");
        if q.jobs.len() >= config.queue_cap {
            q.jobs.pop_front();
            shared.shed.fetch_add(1, Ordering::Relaxed);
        }
        q.jobs.push_back(Job { scheduled, op });
        drop(q);
        shared.ready.notify_one();
    }
    // Mark the stream done and drain: on a source error this is the early
    // termination path, and the already-queued ops are still completed,
    // shed, or expired — never silently dropped.
    {
        let mut q = shared.queue.lock().expect("queue poisoned");
        q.done = true;
    }
    shared.ready.notify_all();

    let mut totals = WorkerStats::default();
    for handle in workers {
        let stats = handle.join().expect("drive worker panicked");
        totals.completed += stats.completed;
        totals.expired += stats.expired;
        totals.aborted += stats.aborted;
        totals.retries += stats.retries;
        totals.latency.merge(&stats.latency);
    }
    let wall_micros = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let report = DriveReport {
        target: target.name(),
        offered,
        completed: totals.completed,
        shed: shared.shed.load(Ordering::Relaxed),
        expired: totals.expired,
        aborted: totals.aborted,
        retries: totals.retries,
        peak_in_flight: shared.peak.load(Ordering::Relaxed),
        max_in_flight: config.max_in_flight,
        wall_micros,
        latency: totals.latency,
    };
    debug_assert_eq!(
        report.offered,
        report.completed + report.shed + report.expired + report.aborted,
        "every offered op is accounted for exactly once"
    );
    match source_error {
        None => Ok(report),
        Some(err) => Err(DriveError::Source {
            message: err.0,
            report: Box::new(report),
        }),
    }
}

fn worker(
    shared: &Shared,
    target: &dyn Target,
    retry: RetryPolicy,
    deadline_micros: u64,
    rng: &mut StdRng,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.done {
                    return stats;
                }
                q = shared.ready.wait(q).expect("queue poisoned");
            }
        };
        let depth = shared.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        shared.peak.fetch_max(depth, Ordering::Relaxed);
        run_job(&job, target, retry, deadline_micros, rng, &mut stats);
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Executes one job: deadline check, attempt, backoff-retry loop.
fn run_job(
    job: &Job,
    target: &dyn Target,
    retry: RetryPolicy,
    deadline_micros: u64,
    rng: &mut StdRng,
    stats: &mut WorkerStats,
) {
    let past_deadline = |at: Instant| {
        deadline_micros > 0 && at >= job.scheduled + Duration::from_micros(deadline_micros)
    };
    if past_deadline(Instant::now()) {
        stats.expired += 1;
        return;
    }
    let mut attempts = 1u32;
    let mut prev_backoff = 0u64;
    loop {
        if target.apply(&job.op).is_ok() {
            stats.completed += 1;
            let waited = Instant::now().saturating_duration_since(job.scheduled);
            stats
                .latency
                .record(waited.as_micros().min(u128::from(u64::MAX)) as u64);
            return;
        }
        if attempts >= retry.max_attempts {
            stats.aborted += 1;
            return;
        }
        let backoff = retry.backoff(prev_backoff, rng);
        // A retry that would land past the deadline is abandoned now: the
        // client has given up, so adding the load anyway only deepens the
        // overload.
        if past_deadline(Instant::now() + Duration::from_micros(backoff)) {
            stats.expired += 1;
            return;
        }
        std::thread::sleep(Duration::from_micros(backoff));
        prev_backoff = backoff;
        attempts += 1;
        stats.retries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use uswg_fsc::FileCategory;
    use uswg_netfs::OpKind;

    fn op(at: u64, i: u64) -> OpRecord {
        OpRecord {
            at,
            user: (i % 3) as usize,
            session: 0,
            op: OpKind::ALL[(i % 8) as usize],
            ino: i % 5,
            bytes: 128,
            file_size: 4096,
            response: 0,
            category: FileCategory::REG_USER_RDONLY,
            retries: 0,
            aborted: false,
        }
    }

    /// A target that fails the first `fail_first` calls, then succeeds.
    struct Flaky {
        fail_first: u32,
        calls: AtomicU32,
    }

    impl Target for Flaky {
        fn apply(&self, _op: &OpRecord) -> Result<(), TargetError> {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.fail_first {
                Err(TargetError("transient".into()))
            } else {
                Ok(())
            }
        }
        fn name(&self) -> &'static str {
            "flaky"
        }
    }

    #[test]
    fn underloaded_run_completes_everything() {
        let ops: Vec<_> = (0..40).map(|i| op(i * 10, i)).collect();
        let config = DriveConfig {
            speedup: 1000.0,
            max_in_flight: 2,
            queue_cap: 64,
            ..DriveConfig::default()
        };
        let report = drive(
            ops,
            Arc::new(Flaky {
                fail_first: 0,
                calls: AtomicU32::new(0),
            }),
            &config,
        )
        .unwrap();
        assert_eq!(report.offered, 40);
        assert_eq!(report.completed, 40);
        assert_eq!(report.shed + report.expired + report.aborted, 0);
        assert!(report.peak_in_flight <= 2);
        assert_eq!(report.latency.count(), 40);
    }

    #[test]
    fn transient_errors_retry_and_then_complete() {
        let ops: Vec<_> = (0..10).map(|i| op(0, i)).collect();
        let config = DriveConfig {
            speedup: 1e6,
            max_in_flight: 1,
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff_micros: 10,
                max_backoff_micros: 50,
            },
            ..DriveConfig::default()
        };
        let report = drive(
            ops,
            Arc::new(Flaky {
                fail_first: 3,
                calls: AtomicU32::new(0),
            }),
            &config,
        )
        .unwrap();
        assert_eq!(report.completed, 10);
        assert_eq!(report.retries, 3);
        assert_eq!(report.aborted, 0);
    }

    #[test]
    fn permanent_errors_exhaust_the_budget_and_abort() {
        let ops: Vec<_> = (0..5).map(|i| op(0, i)).collect();
        let config = DriveConfig {
            speedup: 1e6,
            max_in_flight: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_micros: 5,
                max_backoff_micros: 20,
            },
            ..DriveConfig::default()
        };
        let report = drive(
            ops,
            Arc::new(Flaky {
                fail_first: u32::MAX,
                calls: AtomicU32::new(0),
            }),
            &config,
        )
        .unwrap();
        assert_eq!(report.aborted, 5);
        assert_eq!(report.completed, 0);
        // 2 retried attempts per op before the budget runs out.
        assert_eq!(report.retries, 10);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let base = DriveConfig::default();
        for config in [
            DriveConfig {
                speedup: 0.0,
                ..base.clone()
            },
            DriveConfig {
                speedup: f64::NAN,
                ..base.clone()
            },
            DriveConfig {
                max_in_flight: 0,
                ..base.clone()
            },
            DriveConfig {
                queue_cap: 0,
                ..base.clone()
            },
            DriveConfig {
                retry: RetryPolicy {
                    max_attempts: 0,
                    ..RetryPolicy::default()
                },
                ..base.clone()
            },
        ] {
            assert!(drive(
                Vec::new(),
                Arc::new(Flaky {
                    fail_first: 0,
                    calls: AtomicU32::new(0)
                }),
                &config
            )
            .is_err());
        }
    }

    #[test]
    fn empty_stream_reports_cleanly() {
        let report = drive(
            Vec::new(),
            Arc::new(Flaky {
                fail_first: 0,
                calls: AtomicU32::new(0),
            }),
            &DriveConfig::default(),
        )
        .unwrap();
        assert_eq!(report.offered, 0);
        let text = report.render();
        assert!(text.contains("offered 0"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn scaled_arrivals_keep_integer_precision() {
        // A far-future arrival the old f64 path rounds away: (1<<60) + 12345
        // has 61 significant bits, so `as f64` collapses it to a multiple
        // of 16 and the replay schedule silently drifts.
        let far = (1u64 << 60) + 12_345;
        assert_eq!(scaled_arrival_micros(far, 1.0), far);
        assert_eq!(scaled_arrival_micros(u64::MAX, 1.0), u64::MAX);
        // Integral speedups divide exactly, at any magnitude.
        assert_eq!(scaled_arrival_micros(1_000_000, 4.0), 250_000);
        assert_eq!(scaled_arrival_micros(far, 2.0), far / 2);
        // Sub-1 speedups stretch time; the result clamps instead of wrapping.
        assert_eq!(scaled_arrival_micros(1_000, 0.5), 2_000);
        assert_eq!(scaled_arrival_micros(u64::MAX, 0.5), u64::MAX);
        // Extreme compression: u64::MAX µs at 1e18x is 18 µs of wall time.
        assert_eq!(scaled_arrival_micros(u64::MAX, 1e18), 18);
        // Degenerate divisors stay safe at both ends.
        assert_eq!(scaled_arrival_micros(u64::MAX, f64::MAX), 0);
        assert_eq!(scaled_arrival_micros(u64::MAX, f64::MIN_POSITIVE), u64::MAX);
        assert_eq!(scaled_arrival_micros(0, 1.0), 0);
    }

    #[test]
    fn far_future_arrivals_drive_cleanly_at_high_speedup() {
        // Timestamps past 2^53 µs (where f64 pacing lost precision) still
        // replay: at 1e15x the whole stream lands within ~18 ms of wall time.
        let ops: Vec<_> = (0..4)
            .map(|i| op((1u64 << 60) + i * 1_000_000_000, i))
            .collect();
        let config = DriveConfig {
            speedup: 1e15,
            max_in_flight: 2,
            ..DriveConfig::default()
        };
        let report = drive(
            ops,
            Arc::new(Flaky {
                fail_first: 0,
                calls: AtomicU32::new(0),
            }),
            &config,
        )
        .unwrap();
        assert_eq!(report.completed, 4);
    }

    /// A source that yields `good` ops and then fails, like a spill
    /// capture cut off mid-frame.
    struct FailingSource {
        good: u64,
        yielded: u64,
    }

    impl OpSource for FailingSource {
        fn next_op(&mut self) -> Result<Option<(u64, OpRecord)>, SourceError> {
            if self.yielded < self.good {
                self.yielded += 1;
                Ok(Some((0, op(0, self.yielded))))
            } else {
                Err(SourceError("stream cut".into()))
            }
        }
    }

    #[test]
    fn source_error_drains_queued_ops_and_accounts_for_them() {
        let config = DriveConfig {
            speedup: 1e6,
            max_in_flight: 2,
            ..DriveConfig::default()
        };
        let err = drive_stream(
            FailingSource {
                good: 10,
                yielded: 0,
            },
            Arc::new(Flaky {
                fail_first: 0,
                calls: AtomicU32::new(0),
            }),
            &config,
        )
        .unwrap_err();
        match err {
            DriveError::Source { message, report } => {
                assert_eq!(message, "stream cut");
                assert_eq!(report.offered, 10);
                // The conservation identity holds over the ops actually
                // offered before the failure.
                assert_eq!(
                    report.offered,
                    report.completed + report.shed + report.expired + report.aborted
                );
                assert_eq!(report.completed, 10);
                let text = format!("{}", DriveError::Source { message, report });
                assert!(text.contains("after 10 ops"), "{text}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn source_error_before_any_op_carries_an_empty_report() {
        let err = drive_stream(
            FailingSource {
                good: 0,
                yielded: 0,
            },
            Arc::new(Flaky {
                fail_first: 0,
                calls: AtomicU32::new(0),
            }),
            &DriveConfig::default(),
        )
        .unwrap_err();
        match err {
            DriveError::Source { report, .. } => assert_eq!(report.offered, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn vec_source_yields_sorted_timestamps() {
        let mut source = VecSource::new(vec![op(30, 0), op(10, 1), op(20, 2)]);
        let mut ats = Vec::new();
        while let Some((at, _)) = source.next_op().unwrap() {
            ats.push(at);
        }
        assert_eq!(ats, vec![10, 20, 30]);
        assert!(source.next_op().unwrap().is_none());
    }

    #[test]
    fn channel_source_ends_with_finish_hook() {
        let (tx, rx) = std::sync::mpsc::sync_channel(2);
        let mut source =
            ChannelSource::new(rx).on_finish(Box::new(|| Err(SourceError("producer died".into()))));
        tx.send(op(5, 0)).unwrap();
        drop(tx);
        assert_eq!(source.next_op().unwrap().unwrap().0, 5);
        assert_eq!(
            source.next_op().unwrap_err(),
            SourceError("producer died".into())
        );
        // The hook fires once; afterwards the stream is a clean end.
        assert!(source.next_op().unwrap().is_none());
    }
}
