//! The in-process loopback target: the workspace's own UNIX-like
//! in-memory file system (`uswg-vfs`) behind the [`Target`] trait.
//!
//! It exists for two reasons: an end-to-end `uswg drive` that works on any
//! machine with no external system to set up, and a *controllable*
//! capacity knob for overload tests — `service_micros` sets how long each
//! operation holds a worker, so offered-load ≫ capacity is a config
//! choice, not a hardware accident. A `fail_ppm` knob injects transient
//! errors to exercise the driver's retry path the same way `FaultSpec`
//! exercises the simulator's.

use crate::{Target, TargetError};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Mutex;
use std::time::Duration;
use uswg_netfs::OpKind;
use uswg_usim::OpRecord;
use uswg_vfs::{Vfs, VfsConfig};

/// Parts-per-million scale for the injected failure rate.
const PPM: u64 = 1_000_000;
/// Cap on a single replayed write, so a log with pathological sizes cannot
/// make the loopback allocate unboundedly.
const MAX_IO_BYTES: u64 = 64 * 1024;

/// Configuration of the [`LoopbackVfs`] target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopbackConfig {
    /// Synthetic service time per operation in µs (holds a worker, not the
    /// file-system lock, so `max_in_flight` workers really overlap).
    pub service_micros: u64,
    /// Injected transient-failure rate in parts per million.
    pub fail_ppm: u32,
    /// Distinct files the replay maps inode numbers onto (bounds the
    /// loopback's memory).
    pub working_set: u64,
    /// Seed for the failure-injection stream.
    pub seed: u64,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        Self {
            service_micros: 0,
            fail_ppm: 0,
            working_set: 64,
            seed: 0x10BB,
        }
    }
}

/// An in-process [`Target`] over the workspace VFS.
#[derive(Debug)]
pub struct LoopbackVfs {
    config: LoopbackConfig,
    fs: Mutex<Vfs>,
    rng: Mutex<StdRng>,
}

impl LoopbackVfs {
    /// Builds the target with a fresh in-memory file system.
    pub fn new(config: LoopbackConfig) -> Self {
        let mut vfs = Vfs::new(VfsConfig::default());
        vfs.mkdir("/drive").expect("fresh vfs accepts /drive");
        Self {
            config: LoopbackConfig {
                working_set: config.working_set.max(1),
                ..config
            },
            fs: Mutex::new(vfs),
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
        }
    }

    fn path_for(&self, ino: u64) -> String {
        format!("/drive/f{}", ino % self.config.working_set)
    }
}

impl Target for LoopbackVfs {
    fn apply(&self, op: &OpRecord) -> Result<(), TargetError> {
        // Service time first, outside every lock: this is the capacity
        // knob, and it must consume worker-time, not serialize the target.
        if self.config.service_micros > 0 {
            std::thread::sleep(Duration::from_micros(self.config.service_micros));
        }
        if self.config.fail_ppm > 0 {
            let draw = self.rng.lock().expect("rng poisoned").next_u64() % PPM;
            if draw < u64::from(self.config.fail_ppm) {
                return Err(TargetError("injected transient fault".into()));
            }
        }
        let path = self.path_for(op.ino);
        let mut fs = self.fs.lock().expect("vfs poisoned");
        let outcome = match op.op {
            OpKind::Write | OpKind::Create => {
                let data = vec![0u8; op.bytes.min(MAX_IO_BYTES) as usize];
                fs.write_file(&path, &data)
            }
            OpKind::Read => {
                if !fs.exists(&path) {
                    fs.write_file(&path, &[])?;
                }
                fs.read_file(&path).map(drop)
            }
            OpKind::Stat => {
                if !fs.exists(&path) {
                    fs.write_file(&path, &[])?;
                }
                fs.stat(&path).map(drop)
            }
            OpKind::Unlink => {
                if fs.exists(&path) {
                    fs.unlink(&path)
                } else {
                    Ok(())
                }
            }
            // Open/Close/Seek are per-process cursor motion; the replay has
            // no long-lived processes, so they only touch the namespace.
            OpKind::Open | OpKind::Close | OpKind::Seek => {
                let _ = fs.exists(&path);
                Ok(())
            }
            // OpKind is non_exhaustive: treat future kinds as metadata.
            _ => Ok(()),
        };
        outcome.map_err(TargetError::from)
    }

    fn name(&self) -> &'static str {
        "loopback-vfs"
    }
}

impl From<uswg_vfs::FsError> for TargetError {
    fn from(e: uswg_vfs::FsError) -> Self {
        TargetError(format!("vfs: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uswg_fsc::FileCategory;

    fn op(kind: OpKind, ino: u64, bytes: u64) -> OpRecord {
        OpRecord {
            at: 0,
            user: 0,
            session: 0,
            op: kind,
            ino,
            bytes,
            file_size: bytes,
            response: 0,
            category: FileCategory::REG_USER_RDONLY,
            retries: 0,
            aborted: false,
        }
    }

    #[test]
    fn applies_every_op_kind() {
        let target = LoopbackVfs::new(LoopbackConfig::default());
        for kind in OpKind::ALL {
            for ino in 0..4 {
                target.apply(&op(kind, ino, 512)).unwrap();
            }
        }
    }

    #[test]
    fn oversized_writes_are_capped() {
        let target = LoopbackVfs::new(LoopbackConfig::default());
        target.apply(&op(OpKind::Write, 1, u64::MAX)).unwrap();
    }

    #[test]
    fn working_set_bounds_distinct_files() {
        let target = LoopbackVfs::new(LoopbackConfig {
            working_set: 3,
            ..LoopbackConfig::default()
        });
        for ino in 0..100 {
            target.apply(&op(OpKind::Create, ino, 16)).unwrap();
        }
        let mut fs = target.fs.lock().unwrap();
        let entries = fs.readdir("/drive").unwrap();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn fail_ppm_injects_transient_errors() {
        let target = LoopbackVfs::new(LoopbackConfig {
            fail_ppm: 500_000,
            ..LoopbackConfig::default()
        });
        let results: Vec<bool> = (0..200)
            .map(|i| target.apply(&op(OpKind::Read, i, 64)).is_ok())
            .collect();
        let failures = results.iter().filter(|ok| !**ok).count();
        assert!(
            (40..=160).contains(&failures),
            "~50% failure rate expected, saw {failures}/200"
        );
    }
}
