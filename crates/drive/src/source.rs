//! Where the pacer's operations come from.
//!
//! The driver used to demand the whole op vector up front, which tied the
//! length of a replay to resident memory. [`OpSource`] inverts that: the
//! pacer pulls one timestamped op at a time from a fallible stream, so a
//! soak run is bounded by the drive queue, never by the log. Three sources
//! cover the workspace's producers:
//!
//! * [`VecSource`] — the original materialized path (sorted on
//!   construction), kept so existing callers and tests are untouched;
//! * [`SpillSource`] — replays a `uswg run --spill` capture through
//!   [`SpillReader`] in ops-only mode (both codecs), one frame resident;
//! * [`ChannelSource`] — drains a bounded channel fed by a live DES run on
//!   a producer thread, with a `finish` hook to surface the producer's
//!   outcome once the channel closes.

use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::sync::mpsc::Receiver;
use uswg_usim::{OpRecord, SpillReader, SpillRecord};

/// Why an op source stopped yielding before its end of stream (an I/O
/// error in a spill capture, a failed DES producer). The driver drains
/// what was already offered and reports it alongside this message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError(pub String);

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SourceError {}

impl From<std::io::Error> for SourceError {
    fn from(err: std::io::Error) -> Self {
        SourceError(err.to_string())
    }
}

/// A fallible stream of timestamped operations for the pacer.
///
/// Items arrive in whatever order the producer emits them; the pacer
/// sleeps until each op's scaled arrival and offers an already-late op
/// immediately, so a source need not guarantee nondecreasing timestamps
/// (a merged sharded log is ordered; a raw one may interleave).
pub trait OpSource {
    /// The next operation and its simulated arrival time in µs, `None` at
    /// a clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError`] when the stream fails mid-run; the driver
    /// stops offering, drains the queue, and surfaces the partial report.
    fn next_op(&mut self) -> Result<Option<(u64, OpRecord)>, SourceError>;
}

/// The materialized adapter: owns a `Vec<OpRecord>`, sorted by arrival
/// time on construction exactly as [`drive`](crate::drive) always did.
#[derive(Debug)]
pub struct VecSource {
    ops: std::vec::IntoIter<OpRecord>,
}

impl VecSource {
    /// Wraps an owned op vector, sorting it by `at`.
    pub fn new(mut ops: Vec<OpRecord>) -> Self {
        ops.sort_by_key(|op| op.at);
        Self {
            ops: ops.into_iter(),
        }
    }
}

impl OpSource for VecSource {
    fn next_op(&mut self) -> Result<Option<(u64, OpRecord)>, SourceError> {
        Ok(self.ops.next().map(|op| (op.at, op)))
    }
}

/// Replays a spill capture without ever materializing the log: the
/// [`SpillReader`] keeps one frame resident and skips session payloads
/// structurally. Works for both codecs (raw v1 and compressed v2).
#[derive(Debug)]
pub struct SpillSource {
    reader: SpillReader<BufReader<File>>,
}

impl SpillSource {
    /// Opens a spill capture for ops-only streaming.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened or
    /// its magic is not a spill header.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            reader: SpillReader::open(path)?.ops_only(),
        })
    }
}

impl OpSource for SpillSource {
    fn next_op(&mut self) -> Result<Option<(u64, OpRecord)>, SourceError> {
        loop {
            match self.reader.next() {
                None => return Ok(None),
                Some(Ok(SpillRecord::Op(op))) => return Ok(Some((op.at, op))),
                // ops_only skips sessions structurally; tolerate one anyway.
                Some(Ok(SpillRecord::Session(_))) => continue,
                Some(Err(err)) => return Err(SourceError(format!("spill source: {err}"))),
            }
        }
    }
}

/// A hook the channel source runs once its channel closes, to learn how
/// the producer ended (joined cleanly, failed, panicked).
pub type FinishFn = Box<dyn FnOnce() -> Result<(), SourceError> + Send>;

/// Drains ops from a bounded channel fed by a producer thread (a live DES
/// run through `ChannelSink`). The channel's capacity *is* the
/// backpressure: the producer blocks once the pacer falls that many ops
/// behind, so resident memory stays O(channel + queue) however long the
/// run. When the channel disconnects, the optional `finish` hook reports
/// whether the producer ended cleanly.
pub struct ChannelSource {
    rx: Receiver<OpRecord>,
    finish: Option<FinishFn>,
}

impl ChannelSource {
    /// Wraps a receiver whose sender just ends the stream when dropped.
    pub fn new(rx: Receiver<OpRecord>) -> Self {
        Self { rx, finish: None }
    }

    /// Installs a hook run once when the channel closes; an `Err` from it
    /// becomes the source error (so a failed producer fails the drive).
    #[must_use]
    pub fn on_finish(mut self, finish: FinishFn) -> Self {
        self.finish = Some(finish);
        self
    }
}

impl std::fmt::Debug for ChannelSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelSource")
            .field("finish", &self.finish.is_some())
            .finish_non_exhaustive()
    }
}

impl OpSource for ChannelSource {
    fn next_op(&mut self) -> Result<Option<(u64, OpRecord)>, SourceError> {
        match self.rx.recv() {
            Ok(op) => Ok(Some((op.at, op))),
            // Sender gone: a clean end of stream unless the finish hook
            // says the producer died.
            Err(_) => match self.finish.take() {
                Some(finish) => finish().map(|()| None),
                None => Ok(None),
            },
        }
    }
}
