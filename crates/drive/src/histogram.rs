//! A fixed-size log-bucketed latency histogram: O(1) memory however long
//! the run, ~3% relative quantile error (16 linear sub-buckets per power
//! of two), exact min/max.
//!
//! `uswg_analyze::Histogram` is a *presentation* histogram — it needs the
//! sample vector up front to pick a range. The live driver cannot afford
//! that: an overloaded replay produces unbounded samples, so latency here
//! folds into fixed buckets online, one `record` per completion.

/// Linear sub-buckets per power-of-two range; 16 gives ≤ 1/16 ≈ 6.25%
/// bucket width, so a reported quantile is within ~3% of the true value.
const SUB: usize = 16;
/// log2 of `SUB`.
const SUB_BITS: u32 = 4;
/// Bucket count covering the full `u64` range of microseconds.
const BUCKETS: usize = SUB * (64 - SUB_BITS as usize) + SUB;

/// An online log-bucketed histogram of microsecond latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let top = 63 - value.leading_zeros();
        let sub = ((value >> (top - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (top - SUB_BITS + 1) as usize * SUB + sub
    }

    /// The lower edge of a bucket (what `quantile` reports).
    fn bucket_floor(index: usize) -> u64 {
        if index < SUB {
            return index as u64;
        }
        let range = (index / SUB) as u32 + SUB_BITS - 1;
        let sub = (index % SUB) as u64;
        (1u64 << range) + (sub << (range - SUB_BITS))
    }

    /// Records one latency sample.
    pub fn record(&mut self, micros: u64) {
        self.counts[Self::bucket(micros)] += 1;
        self.total += 1;
        self.min = self.min.min(micros);
        self.max = self.max.max(micros);
    }

    /// Folds another histogram in (for per-worker merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (slot, &c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += c;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The q-quantile in µs (bucket lower edge, clamped to the exact
    /// min/max; 0 when empty). `q` is clamped into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample to report, 1-based ceil: p50 of 4 samples is
        // the 2nd, p99 of 4 is the 4th.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        // The top rank is the largest sample, which is tracked exactly —
        // report it rather than its (lower) bucket edge.
        if rank == self.total {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_self_consistent() {
        let mut prev = 0;
        for value in [
            0u64,
            1,
            5,
            15,
            16,
            17,
            31,
            32,
            63,
            64,
            100,
            1000,
            4096,
            65_535,
            1 << 30,
            u64::MAX,
        ] {
            let b = LatencyHistogram::bucket(value);
            assert!(b >= prev, "bucket({value}) = {b} < {prev}");
            assert!(b < BUCKETS);
            // The bucket's floor maps back into the same bucket, and never
            // exceeds the value it stands for.
            assert!(LatencyHistogram::bucket_floor(b) <= value);
            assert_eq!(
                LatencyHistogram::bucket(LatencyHistogram::bucket_floor(b)),
                b
            );
            prev = b;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn quantiles_are_within_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let got = h.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.07, "q{q}: got {got}, exact {exact}, err {err}");
        }
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 8192;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn empty_histogram_boundary_quantiles_are_zero() {
        let h = LatencyHistogram::new();
        // The boundary quantiles must not reach the clamp path, where the
        // empty sentinel (min = u64::MAX > max = 0) would invert the range.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 0);
    }

    #[test]
    fn zero_sample_is_exact_everywhere() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn u64_max_sample_survives_the_top_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.min(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        // The top bucket's floor is below the sample; the clamp (and the
        // exact-max top rank) must bring the report back up to it.
        assert_eq!(h.quantile(0.0), u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn full_range_extremes_report_exactly() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
        // Rank 1 of 2 is the smaller sample.
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Out-of-range q clamps to the boundary quantiles.
        assert_eq!(h.quantile(-3.0), 0);
        assert_eq!(h.quantile(7.0), u64::MAX);
    }

    #[test]
    fn top_rank_reports_the_exact_max_not_the_bucket_edge() {
        let mut h = LatencyHistogram::new();
        h.record(3);
        h.record(1_000);
        // 1000 sits in a bucket whose floor is 992; the top rank must
        // report the tracked max exactly.
        assert_eq!(h.quantile(1.0), 1_000);
        assert_eq!(h.quantile(0.99), 1_000);
    }
}
