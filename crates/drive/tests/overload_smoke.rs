//! The overload smoke: offered load an order of magnitude beyond the
//! target's capacity must leave the driver standing — bounded memory
//! (the queue cap *is* the bound), bounded wall time, a nonzero shed
//! count, an in-flight peak at or under the cap, and a percentile report
//! at the end. This is the robustness acceptance test of the open-loop
//! design: a closed loop would simply slow down; the open loop must shed.

use std::sync::Arc;
use std::time::Instant;
use uswg_drive::{drive, DriveConfig, LoopbackConfig, LoopbackVfs};
use uswg_fsc::FileCategory;
use uswg_netfs::OpKind;
use uswg_usim::{OpRecord, RetryPolicy};

fn op(at: u64, i: u64) -> OpRecord {
    OpRecord {
        at,
        user: (i % 5) as usize,
        session: 0,
        op: OpKind::ALL[(i % 8) as usize],
        ino: i % 16,
        bytes: 256,
        file_size: 4096,
        response: 0,
        category: FileCategory::REG_USER_RDONLY,
        retries: 0,
        aborted: false,
    }
}

#[test]
fn ten_x_overload_sheds_and_terminates_bounded() {
    // Capacity: 2 workers × 1 op / 1000 µs = 2000 ops/s.
    // Offered: 2000 ops arriving over ~0.1 s of wall time = 20 000 ops/s,
    // i.e. 10× capacity.
    let service_micros = 1_000;
    let max_in_flight = 2;
    let queue_cap = 32;
    let ops: Vec<_> = (0..2_000).map(|i| op(i * 50, i)).collect();
    let config = DriveConfig {
        speedup: 1.0,
        max_in_flight,
        queue_cap,
        deadline_micros: 0,
        retry: RetryPolicy::default(),
        seed: 7,
    };
    let target = Arc::new(LoopbackVfs::new(LoopbackConfig {
        service_micros,
        ..LoopbackConfig::default()
    }));

    let started = Instant::now();
    let report = drive(ops, target, &config).unwrap();
    let wall = started.elapsed();

    // Bounded termination: the backlog can never exceed queue_cap, so the
    // tail after the last arrival is at most (queue_cap + in-flight) ops
    // of service time. 10 s is two orders of magnitude of slack over the
    // ~0.13 s this takes; the point is "not proportional to the backlog
    // an unbounded queue would have built".
    assert!(
        wall.as_secs() < 10,
        "overload run must terminate bounded, took {wall:?}"
    );

    // Conservation: every offered op accounted for exactly once.
    assert_eq!(report.offered, 2_000);
    assert_eq!(
        report.offered,
        report.completed + report.shed + report.expired + report.aborted
    );

    // The shed path engaged: at 10× overload the queue must overflow.
    assert!(
        report.shed > 0,
        "10x overload must shed from the bounded queue: {report:?}"
    );
    // And it dominates: most of the excess is shed, not mysteriously lost.
    assert!(
        report.shed > report.offered / 2,
        "at 10x overload the majority of ops shed: {report:?}"
    );

    // The in-flight cap held.
    assert!(
        report.peak_in_flight <= max_in_flight,
        "peak in-flight {} exceeds cap {max_in_flight}",
        report.peak_in_flight
    );
    assert!(report.completed > 0, "workers made progress: {report:?}");

    // The percentile report is produced and self-consistent.
    assert_eq!(report.latency.count(), report.completed);
    let p50 = report.latency.quantile(0.50);
    let p99 = report.latency.quantile(0.99);
    assert!(p50 <= p99 && p99 <= report.latency.max());
    assert!(
        report.latency.max() >= service_micros,
        "a completed op cannot beat its own service time"
    );
    let text = report.render();
    assert!(text.contains("shed"), "{text}");
    assert!(text.contains("p99"), "{text}");
    assert!(text.contains("loopback-vfs"), "{text}");
}

#[test]
fn deadlines_expire_stale_queue_entries() {
    // One slow worker, generous queue, tight deadline: everything that
    // waits behind the head-of-line op expires instead of executing.
    let ops: Vec<_> = (0..50).map(|i| op(0, i)).collect();
    let config = DriveConfig {
        speedup: 1.0,
        max_in_flight: 1,
        queue_cap: 64,
        deadline_micros: 20_000,
        retry: RetryPolicy::default(),
        seed: 7,
    };
    let target = Arc::new(LoopbackVfs::new(LoopbackConfig {
        service_micros: 5_000,
        ..LoopbackConfig::default()
    }));
    let report = drive(ops, target, &config).unwrap();
    assert_eq!(
        report.offered,
        report.completed + report.shed + report.expired + report.aborted
    );
    assert!(
        report.expired > 0,
        "50 ops × 5 ms service under a 20 ms deadline must expire some: {report:?}"
    );
    assert!(report.completed >= 1, "the head of line completes");
}

#[test]
fn overload_with_faulty_target_still_conserves_ops() {
    // Overload *and* a 20% transient failure rate: retries add load, the
    // accounting identity still holds and nothing hangs.
    let ops: Vec<_> = (0..400).map(|i| op(i * 20, i)).collect();
    let config = DriveConfig {
        speedup: 1.0,
        max_in_flight: 2,
        queue_cap: 16,
        deadline_micros: 0,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_micros: 100,
            max_backoff_micros: 800,
        },
        seed: 11,
    };
    let target = Arc::new(LoopbackVfs::new(LoopbackConfig {
        service_micros: 500,
        fail_ppm: 200_000,
        ..LoopbackConfig::default()
    }));
    let report = drive(ops, target, &config).unwrap();
    assert_eq!(
        report.offered,
        report.completed + report.shed + report.expired + report.aborted
    );
    assert!(report.retries > 0, "20% failures must retry: {report:?}");
    assert!(report.completed > 0);
}
