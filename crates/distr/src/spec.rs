//! Serializable distribution specifications.
//!
//! A [`DistributionSpec`] is the on-disk form of a usage-measure
//! distribution; together with `serde_json` it replaces the interactive GDS
//! editing loop: workload specs are JSON documents that can be inspected,
//! versioned and modified, then instantiated into live [`Distribution`]
//! objects with [`DistributionSpec::build`].

use crate::{
    Constant, DistrError, Distribution, EmpiricalCdf, Exponential, MultiStageGamma, PdfTable,
    PhaseTypeExp, Uniform,
};
use serde::{Deserialize, Serialize};

/// A declarative, serializable description of a distribution.
///
/// # Example
///
/// ```
/// use uswg_distr::DistributionSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = DistributionSpec::exponential(1024.0);
/// let json = serde_json::to_string(&spec)?;
/// let back: DistributionSpec = serde_json::from_str(&json)?;
/// let dist = back.build()?;
/// assert!((dist.mean() - 1024.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "family", rename_all = "snake_case")]
pub enum DistributionSpec {
    /// Plain exponential with the given mean (optionally shifted).
    Exponential {
        /// Mean of the exponential part.
        mean: f64,
        /// Offset added to every variate.
        #[serde(default)]
        offset: f64,
    },
    /// Degenerate point mass.
    Constant {
        /// The constant value.
        value: f64,
    },
    /// Continuous uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Phase-type exponential mixture; `(weight, theta, offset)` per phase.
    PhaseTypeExp {
        /// The mixture phases.
        phases: Vec<(f64, f64, f64)>,
    },
    /// Multi-stage gamma mixture; `(weight, alpha, theta, offset)` per stage.
    MultiStageGamma {
        /// The mixture stages.
        stages: Vec<(f64, f64, f64, f64)>,
    },
    /// Tabular density `(x, pdf)`; integrated with Simpson's rule.
    PdfTable {
        /// The density sample points.
        points: Vec<(f64, f64)>,
    },
    /// Tabular CDF `(x, cdf)`.
    CdfTable {
        /// The CDF sample points.
        points: Vec<(f64, f64)>,
    },
}

impl DistributionSpec {
    /// Shorthand for an exponential spec with no offset.
    pub fn exponential(mean: f64) -> Self {
        DistributionSpec::Exponential { mean, offset: 0.0 }
    }

    /// Shorthand for a constant spec.
    pub fn constant(value: f64) -> Self {
        DistributionSpec::Constant { value }
    }

    /// Instantiates the spec into a live distribution.
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of the underlying family (bad
    /// weights, scales, offsets, or malformed tables).
    pub fn build(&self) -> Result<Box<dyn Distribution>, DistrError> {
        Ok(match self {
            DistributionSpec::Exponential { mean, offset } => {
                Box::new(Exponential::with_offset(*mean, *offset)?)
            }
            DistributionSpec::Constant { value } => Box::new(Constant::new(*value)?),
            DistributionSpec::Uniform { lo, hi } => Box::new(Uniform::new(*lo, *hi)?),
            DistributionSpec::PhaseTypeExp { phases } => {
                Box::new(PhaseTypeExp::new(phases.clone())?)
            }
            DistributionSpec::MultiStageGamma { stages } => {
                Box::new(MultiStageGamma::new(stages.clone())?)
            }
            DistributionSpec::PdfTable { points } => Box::new(PdfTable::new(points.clone())?),
            DistributionSpec::CdfTable { points } => Box::new(EmpiricalCdf::new(points.clone())?),
        })
    }

    /// The analytic mean of the spec, without instantiating it.
    ///
    /// # Errors
    ///
    /// Same as [`DistributionSpec::build`].
    pub fn mean(&self) -> Result<f64, DistrError> {
        Ok(self.build()?.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_builds() {
        let specs = vec![
            DistributionSpec::exponential(5000.0),
            DistributionSpec::constant(0.0),
            DistributionSpec::Uniform {
                lo: 128.0,
                hi: 2048.0,
            },
            DistributionSpec::PhaseTypeExp {
                phases: vec![(0.4, 12.7, 0.0), (0.6, 18.2, 18.0)],
            },
            DistributionSpec::MultiStageGamma {
                stages: vec![(1.0, 1.5, 25.4, 12.0)],
            },
            DistributionSpec::PdfTable {
                points: vec![(0.0, 0.5), (1.0, 0.5), (2.0, 0.5)],
            },
            DistributionSpec::CdfTable {
                points: vec![(0.0, 0.0), (10.0, 1.0)],
            },
        ];
        for spec in specs {
            let d = spec.build().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert!(d.mean() >= 0.0);
        }
    }

    #[test]
    fn bad_specs_fail_to_build() {
        assert!(DistributionSpec::exponential(-1.0).build().is_err());
        assert!(DistributionSpec::PhaseTypeExp { phases: vec![] }
            .build()
            .is_err());
        assert!(DistributionSpec::CdfTable {
            points: vec![(0.0, 0.9), (1.0, 0.1)]
        }
        .build()
        .is_err());
    }

    #[test]
    fn json_round_trip_preserves_semantics() {
        let spec = DistributionSpec::MultiStageGamma {
            stages: vec![(0.7, 1.3, 12.3, 0.0), (0.3, 1.5, 12.4, 23.0)],
        };
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: DistributionSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        assert!((spec.mean().unwrap() - back.mean().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn json_is_tagged_by_family() {
        let json = serde_json::to_string(&DistributionSpec::exponential(7.0)).unwrap();
        assert!(json.contains("\"family\":\"exponential\""));
    }

    #[test]
    fn offset_defaults_to_zero_when_absent() {
        let spec: DistributionSpec =
            serde_json::from_str(r#"{"family":"exponential","mean":10.0}"#).unwrap();
        assert!((spec.mean().unwrap() - 10.0).abs() < 1e-12);
    }
}
