//! CDF tables — the artifact the GDS hands to the FSC and the USIM.
//!
//! "These are used to compute tables of cumulative distribution function
//! (CDF) values for use in random number generation" (Section 4.1). A
//! [`CdfTable`] discretizes any [`Distribution`] onto a fixed grid and
//! samples by inverse transform, exactly like the original tool. The paper
//! also warns (Section 4.2) that the memory for these tables is the product
//! of user types × file types × samples per distribution —
//! [`CdfTable::memory_bytes`] exposes that cost so the trade-off can be
//! measured (see the `cdf_table_resolution` bench).

use crate::empirical::{inverse_transform, inverse_transform_guided};
use crate::guide::GuideTable;
use crate::{uniform01, DistrError, Distribution};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A discretized CDF used for inverse-transform random variate generation.
///
/// Sampling is O(1): a precomputed [`GuideTable`] replaces the per-draw
/// binary search with an equal-probability bucket lookup, producing
/// bit-identical variates for the same uniform draw (see
/// [`CdfTable::quantile_unguided`] for the reference path).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdfTable {
    xs: Vec<f64>,
    cdf: Vec<f64>,
    mean: f64,
    std_dev: f64,
    /// O(1) sampling index; rebuilt by constructors, empty (= binary-search
    /// fallback) when absent from serialized input.
    #[serde(default)]
    guide: GuideTable,
}

/// Equality ignores the guide: it is a derived index, and deserialized
/// tables legitimately carry an empty one until [`CdfTable::rebuild_guide`]
/// runs, while sampling identically either way.
impl PartialEq for CdfTable {
    fn eq(&self, other: &Self) -> bool {
        self.xs == other.xs
            && self.cdf == other.cdf
            && self.mean == other.mean
            && self.std_dev == other.std_dev
    }
}

impl CdfTable {
    /// Tabulates `dist` on `points` uniformly spaced grid points covering
    /// `[support_min, support_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadParameter`] if `points < 2`.
    pub fn from_distribution(dist: &dyn Distribution, points: usize) -> Result<Self, DistrError> {
        if points < 2 {
            return Err(DistrError::BadParameter {
                name: "points",
                value: points as f64,
            });
        }
        let lo = dist.support_min();
        let hi = dist.support_max();
        if hi <= lo {
            // Degenerate distribution (e.g. Constant): a two-point step.
            let cdf = vec![1.0, 1.0];
            let guide = GuideTable::build(&cdf);
            return Ok(Self {
                xs: vec![lo, lo],
                cdf,
                mean: dist.mean(),
                std_dev: 0.0,
                guide,
            });
        }
        let mut xs = Vec::with_capacity(points);
        let mut cdf = Vec::with_capacity(points);
        for i in 0..points {
            let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
            xs.push(x);
            cdf.push(dist.cdf(x).clamp(0.0, 1.0));
        }
        // Force monotonicity against numerical noise and pin the last entry.
        for i in 1..cdf.len() {
            if cdf[i] < cdf[i - 1] {
                cdf[i] = cdf[i - 1];
            }
        }
        *cdf.last_mut().expect("points >= 2") = 1.0;
        let guide = GuideTable::build(&cdf);
        Ok(Self {
            xs,
            cdf,
            mean: dist.mean(),
            std_dev: dist.std_dev(),
            guide,
        })
    }

    /// Draws a variate by inverse transform over the table: O(1) guide-table
    /// bucket lookup plus local interpolation.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        inverse_transform_guided(&self.xs, &self.cdf, &self.guide, uniform01(rng))
    }

    /// Draws a variate via the unguided O(log n) binary search — the
    /// reference implementation. Public so equivalence tests and benches can
    /// compare the two paths; both produce bit-identical variates for the
    /// same RNG stream.
    pub fn sample_unguided(&self, rng: &mut dyn RngCore) -> f64 {
        inverse_transform(&self.xs, &self.cdf, uniform01(rng))
    }

    /// Draws a variate and rounds it to a non-negative integer count.
    ///
    /// Usage measures like "number of files" are integral; the paper samples
    /// them from continuous fits, so rounding is applied at use sites.
    pub fn sample_count(&self, rng: &mut dyn RngCore) -> u64 {
        self.sample(rng).round().max(0.0) as u64
    }

    /// The quantile function by interpolation over the table.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        inverse_transform_guided(&self.xs, &self.cdf, &self.guide, p)
    }

    /// The quantile via the unguided binary search (reference path; see
    /// [`CdfTable::sample_unguided`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn quantile_unguided(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        inverse_transform(&self.xs, &self.cdf, p)
    }

    /// Mean recorded from the source distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation recorded from the source distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Approximate resident size of the table in bytes.
    ///
    /// This is the quantity the paper flags as a scaling problem in Section
    /// 4.2: total memory is `user types × file types × samples` of this.
    pub fn memory_bytes(&self) -> usize {
        2 * self.xs.len() * std::mem::size_of::<f64>()
    }

    /// Resident bytes of the guide-table sampling index (~a quarter of
    /// [`Self::memory_bytes`]), reported separately so resolution ablations
    /// keep comparing grid cost alone.
    pub fn guide_memory_bytes(&self) -> usize {
        self.guide.memory_bytes()
    }

    /// Rebuilds the O(1) sampling index. Guides are never trusted from
    /// serialized input (deserialization leaves the empty binary-search
    /// fallback); call this after loading a table to restore O(1) draws.
    pub fn rebuild_guide(&mut self) {
        self.guide = GuideTable::build(&self.cdf);
    }

    /// Whether the O(1) guide index is present (false after deserialization
    /// until [`Self::rebuild_guide`] runs; sampling then falls back to the
    /// binary search).
    pub fn has_guide(&self) -> bool {
        !self.guide.is_empty()
    }

    /// The grid of `x` values.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The CDF values at [`Self::xs`].
    pub fn cumulative(&self) -> &[f64] {
        &self.cdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constant, Exponential, MultiStageGamma, PhaseTypeExp};
    use rand::SeedableRng;

    #[test]
    fn rejects_tiny_tables() {
        let d = Exponential::new(1.0).unwrap();
        assert!(CdfTable::from_distribution(&d, 1).is_err());
    }

    #[test]
    fn table_mean_matches_distribution() {
        let d = Exponential::new(1024.0).unwrap();
        let t = CdfTable::from_distribution(&d, 4096).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let n = 200_000;
        let mean = (0..n).map(|_| t.sample(&mut rng)).sum::<f64>() / n as f64;
        // Tabulation truncates the far tail; allow ~2% bias.
        assert!((mean - 1024.0).abs() / 1024.0 < 0.02, "mean = {mean}");
    }

    #[test]
    fn table_quantiles_match_analytic() {
        let d = PhaseTypeExp::new(vec![(0.4, 12.7, 0.0), (0.6, 18.2, 18.0)]).unwrap();
        let t = CdfTable::from_distribution(&d, 8192).unwrap();
        for &p in &[0.1, 0.5, 0.9] {
            let analytic = d.quantile(p);
            let tabulated = t.quantile(p);
            assert!(
                (analytic - tabulated).abs() < 0.25,
                "p={p}: {analytic} vs {tabulated}"
            );
        }
    }

    #[test]
    fn constant_distribution_degenerates_gracefully() {
        let d = Constant::new(5000.0).unwrap();
        let t = CdfTable::from_distribution(&d, 128).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert_eq!(t.sample(&mut rng), 5000.0);
        assert_eq!(t.std_dev(), 0.0);
    }

    #[test]
    fn sample_count_rounds() {
        let d = Constant::new(2.9).unwrap();
        let t = CdfTable::from_distribution(&d, 16).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(t.sample_count(&mut rng), 3);
    }

    #[test]
    fn memory_grows_linearly_with_resolution() {
        let d = MultiStageGamma::single(1.5, 25.4, 0.0).unwrap();
        let small = CdfTable::from_distribution(&d, 64).unwrap();
        let big = CdfTable::from_distribution(&d, 6400).unwrap();
        assert_eq!(big.memory_bytes(), 100 * small.memory_bytes());
        assert_eq!(small.len(), 64);
        assert!(!small.is_empty());
    }

    #[test]
    fn resolution_improves_accuracy() {
        let d = MultiStageGamma::new(vec![(0.7, 1.3, 12.3, 0.0), (0.3, 1.5, 12.4, 23.0)]).unwrap();
        let coarse = CdfTable::from_distribution(&d, 8).unwrap();
        let fine = CdfTable::from_distribution(&d, 4096).unwrap();
        let p = 0.5;
        let exact = d.quantile(p);
        let err_coarse = (coarse.quantile(p) - exact).abs();
        let err_fine = (fine.quantile(p) - exact).abs();
        assert!(err_fine <= err_coarse, "{err_fine} vs {err_coarse}");
    }

    #[test]
    fn deserialized_guide_is_never_trusted() {
        // A serialized guide could be stale or hand-edited relative to its
        // grid, so deserialization always yields the binary-search fallback;
        // rebuild_guide restores O(1) sampling with identical output.
        let d = Exponential::new(50.0).unwrap();
        let t = CdfTable::from_distribution(&d, 256).unwrap();
        assert!(t.has_guide());
        let json = serde_json::to_string(&t).unwrap();
        // Even a hostile guide payload in the JSON is ignored.
        let json = json.replace("\"guide\":null", "\"guide\":{\"cuts\":[500]}");
        let mut back: CdfTable = serde_json::from_str(&json).unwrap();
        assert!(!back.has_guide());
        for k in 0..=100 {
            let p = k as f64 / 100.0;
            assert_eq!(back.quantile(p).to_bits(), t.quantile(p).to_bits());
        }
        back.rebuild_guide();
        assert!(back.has_guide());
        for k in 0..=100 {
            let p = k as f64 / 100.0;
            assert_eq!(back.quantile(p).to_bits(), t.quantile(p).to_bits());
        }
    }

    #[test]
    fn serde_round_trip() {
        let d = Exponential::new(5.0).unwrap();
        let t = CdfTable::from_distribution(&d, 32).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: CdfTable = serde_json::from_str(&json).unwrap();
        // JSON float formatting may drift by 1 ulp; compare approximately.
        assert_eq!(t.len(), back.len());
        for (a, b) in t.xs().iter().zip(back.xs()) {
            assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()));
        }
        for (a, b) in t.cumulative().iter().zip(back.cumulative()) {
            assert!((a - b).abs() <= 1e-12);
        }
        assert!((t.mean() - back.mean()).abs() <= 1e-12 * (1.0 + t.mean().abs()));
    }
}
