//! Elementary distributions used throughout the workload specifications:
//! plain exponential (the paper's default assumption for every usage
//! measure), degenerate constants (zero think time for "extremely heavy I/O"
//! users, Table 5.4) and uniform ranges.

use crate::{uniform01, DistrError, Distribution};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// An exponential distribution with the given mean, optionally shifted.
///
/// The paper assumes every characterizing measure in Tables 5.1 and 5.2 is
/// exponentially distributed, because only mean values were published by the
/// underlying trace studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    mean: f64,
    offset: f64,
}

impl Exponential {
    /// Creates an exponential with the given mean and no offset.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadScale`] if `mean` is not strictly positive.
    pub fn new(mean: f64) -> Result<Self, DistrError> {
        Self::with_offset(mean, 0.0)
    }

    /// Creates a shifted exponential: `offset + Exp(mean)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadScale`] if `mean <= 0` or
    /// [`DistrError::BadOffset`] if `offset` is negative or non-finite.
    pub fn with_offset(mean: f64, offset: f64) -> Result<Self, DistrError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistrError::BadScale { value: mean });
        }
        if !(offset.is_finite() && offset >= 0.0) {
            return Err(DistrError::BadOffset { value: offset });
        }
        Ok(Self { mean, offset })
    }

    /// The mean of the unshifted exponential part.
    pub fn rate_mean(&self) -> f64 {
        self.mean
    }

    /// The offset added to every variate.
    pub fn offset(&self) -> f64 {
        self.offset
    }
}

impl Distribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        let y = x - self.offset;
        if y < 0.0 {
            0.0
        } else {
            (-y / self.mean).exp() / self.mean
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        let y = x - self.offset;
        if y < 0.0 {
            0.0
        } else {
            1.0 - (-y / self.mean).exp()
        }
    }

    fn mean(&self) -> f64 {
        self.offset + self.mean
    }

    fn variance(&self) -> f64 {
        self.mean * self.mean
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.offset - self.mean * (1.0 - uniform01(rng)).ln()
    }

    fn support_min(&self) -> f64 {
        self.offset
    }
}

/// A degenerate distribution that always produces `value`.
///
/// Used for the zero think time of "extremely heavy I/O" users (Table 5.4)
/// and for fixed-size experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant {
    value: f64,
}

impl Constant {
    /// Creates a constant distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadParameter`] if `value` is negative or
    /// non-finite (usage measures are non-negative).
    pub fn new(value: f64) -> Result<Self, DistrError> {
        if !(value.is_finite() && value >= 0.0) {
            return Err(DistrError::BadParameter {
                name: "value",
                value,
            });
        }
        Ok(Self { value })
    }

    /// The constant value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Distribution for Constant {
    fn pdf(&self, x: f64) -> f64 {
        // Point mass: density is not a function; report the conventional
        // indicator so plots show a spike at the value.
        if x == self.value {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }

    fn support_min(&self) -> f64 {
        self.value
    }

    fn support_max(&self) -> f64 {
        self.value
    }
}

/// A continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadParameter`] if the bounds are not finite,
    /// `lo` is negative, or `hi <= lo`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistrError> {
        if !(lo.is_finite() && lo >= 0.0) {
            return Err(DistrError::BadParameter {
                name: "lo",
                value: lo,
            });
        }
        if !(hi.is_finite() && hi > lo) {
            return Err(DistrError::BadParameter {
                name: "hi",
                value: hi,
            });
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.lo && x < self.hi {
            1.0 / (self.hi - self.lo)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.lo + (self.hi - self.lo) * uniform01(rng)
    }

    fn support_min(&self) -> f64 {
        self.lo
    }

    fn support_max(&self) -> f64 {
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exponential_rejects_bad_mean() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-3.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn exponential_moments_and_shift() {
        let d = Exponential::with_offset(1024.0, 10.0).unwrap();
        assert_eq!(d.mean(), 1034.0);
        assert_eq!(d.variance(), 1024.0 * 1024.0);
        assert_eq!(d.support_min(), 10.0);
        assert_eq!(d.cdf(9.0), 0.0);
    }

    #[test]
    fn exponential_median() {
        let d = Exponential::new(5000.0).unwrap();
        let med = d.quantile(0.5);
        assert!((med - 5000.0 * std::f64::consts::LN_2).abs() < 1.0);
    }

    #[test]
    fn constant_is_degenerate() {
        let d = Constant::new(42.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 42.0);
        assert_eq!(d.mean(), 42.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cdf(41.9), 0.0);
        assert_eq!(d.cdf(42.0), 1.0);
    }

    #[test]
    fn constant_zero_allowed() {
        // Zero think time for extremely heavy I/O users.
        let d = Constant::new(0.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 0.0);
    }

    #[test]
    fn uniform_bounds_and_moments() {
        let d = Uniform::new(128.0, 2048.0).unwrap();
        assert_eq!(d.mean(), 1088.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((128.0..2048.0).contains(&x));
        }
    }

    #[test]
    fn uniform_rejects_inverted_range() {
        assert!(Uniform::new(10.0, 10.0).is_err());
        assert!(Uniform::new(10.0, 5.0).is_err());
    }
}
