//! Phase-type exponential mixtures.
//!
//! The paper (Section 5.1) defines the family as
//!
//! ```text
//! f(x) = Σ_{i=1..N} w_i · exp(θ_i, x − s_i),   exp(θ, y) = (1/θ) e^{−y/θ},  y ≥ 0
//! ```
//!
//! where `w_i` are weights summing to one, `θ_i` are scale parameters and
//! `s_i` are offsets. The GDS supports this family because "these can
//! represent any type of distribution" (dense in the space of non-negative
//! distributions).

use crate::{uniform01, DistrError, Distribution};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Tolerance accepted when validating that mixture weights sum to one.
const WEIGHT_SUM_TOL: f64 = 1e-6;

/// One phase of a [`PhaseTypeExp`] mixture: a shifted exponential
/// `s + Exp(θ)` selected with probability `weight`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpPhase {
    /// Mixing probability of this phase.
    pub weight: f64,
    /// Scale (mean of the unshifted exponential), `θ > 0`.
    pub theta: f64,
    /// Offset `s ≥ 0` added to the exponential variate.
    pub offset: f64,
}

impl ExpPhase {
    /// Creates a phase after validating its parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadWeights`] for a non-positive or non-finite
    /// weight, [`DistrError::BadScale`] for `theta <= 0`, and
    /// [`DistrError::BadOffset`] for a negative or non-finite offset.
    pub fn new(weight: f64, theta: f64, offset: f64) -> Result<Self, DistrError> {
        if !(weight.is_finite() && weight > 0.0) {
            return Err(DistrError::BadWeights { sum: weight });
        }
        if !(theta.is_finite() && theta > 0.0) {
            return Err(DistrError::BadScale { value: theta });
        }
        if !(offset.is_finite() && offset >= 0.0) {
            return Err(DistrError::BadOffset { value: offset });
        }
        Ok(Self {
            weight,
            theta,
            offset,
        })
    }

    /// Density of this phase alone (without the mixture weight).
    fn pdf(&self, x: f64) -> f64 {
        let y = x - self.offset;
        if y < 0.0 {
            0.0
        } else {
            (-y / self.theta).exp() / self.theta
        }
    }

    /// CDF of this phase alone.
    fn cdf(&self, x: f64) -> f64 {
        let y = x - self.offset;
        if y < 0.0 {
            0.0
        } else {
            1.0 - (-y / self.theta).exp()
        }
    }
}

/// A phase-type exponential mixture distribution.
///
/// # Example
///
/// ```
/// use uswg_distr::{Distribution, PhaseTypeExp};
///
/// # fn main() -> Result<(), uswg_distr::DistrError> {
/// // Single exponential with mean 22.1 — the top panel of Figure 5.1.
/// let d = PhaseTypeExp::new(vec![(1.0, 22.1, 0.0)])?;
/// assert!((d.mean() - 22.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTypeExp {
    phases: Vec<ExpPhase>,
}

impl PhaseTypeExp {
    /// Builds a mixture from `(weight, theta, offset)` triples.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::Empty`] when no phases are supplied,
    /// [`DistrError::BadWeights`] when the weights do not sum to one within
    /// `1e-6`, and the per-phase errors of [`ExpPhase::new`].
    pub fn new(phases: Vec<(f64, f64, f64)>) -> Result<Self, DistrError> {
        let phases = phases
            .into_iter()
            .map(|(w, t, s)| ExpPhase::new(w, t, s))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_phases(phases)
    }

    /// Builds a mixture from already-constructed phases.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::Empty`] when no phases are supplied and
    /// [`DistrError::BadWeights`] when the weights do not sum to one.
    pub fn from_phases(phases: Vec<ExpPhase>) -> Result<Self, DistrError> {
        if phases.is_empty() {
            return Err(DistrError::Empty);
        }
        let sum: f64 = phases.iter().map(|p| p.weight).sum();
        if (sum - 1.0).abs() > WEIGHT_SUM_TOL {
            return Err(DistrError::BadWeights { sum });
        }
        Ok(Self { phases })
    }

    /// Builds a mixture, rescaling the weights so they sum to one.
    ///
    /// Useful when the weights are relative frequencies (e.g. cluster sizes
    /// from [`crate::fit`]).
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::Empty`] when no phases are supplied or
    /// [`DistrError::BadWeights`] when the weight sum is not positive.
    pub fn new_normalized(phases: Vec<(f64, f64, f64)>) -> Result<Self, DistrError> {
        if phases.is_empty() {
            return Err(DistrError::Empty);
        }
        let sum: f64 = phases.iter().map(|&(w, _, _)| w).sum();
        if !(sum.is_finite() && sum > 0.0) {
            return Err(DistrError::BadWeights { sum });
        }
        Self::new(
            phases
                .into_iter()
                .map(|(w, t, s)| (w / sum, t, s))
                .collect(),
        )
    }

    /// Convenience constructor for a plain exponential with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadScale`] if `mean <= 0`.
    pub fn exponential(mean: f64) -> Result<Self, DistrError> {
        Self::new(vec![(1.0, mean, 0.0)])
    }

    /// The phases of the mixture.
    pub fn phases(&self) -> &[ExpPhase] {
        &self.phases
    }
}

impl Distribution for PhaseTypeExp {
    fn pdf(&self, x: f64) -> f64 {
        self.phases.iter().map(|p| p.weight * p.pdf(x)).sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        // The weighted sum can exceed 1 by an ulp; clamp to stay a CDF.
        self.phases
            .iter()
            .map(|p| p.weight * p.cdf(x))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.weight * (p.offset + p.theta))
            .sum()
    }

    fn variance(&self) -> f64 {
        // E[X²] of a shifted exponential s + Exp(θ) is s² + 2sθ + 2θ².
        let m = self.mean();
        let m2: f64 = self
            .phases
            .iter()
            .map(|p| {
                p.weight
                    * (p.offset * p.offset + 2.0 * p.offset * p.theta + 2.0 * p.theta * p.theta)
            })
            .sum();
        (m2 - m * m).max(0.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u = uniform01(rng);
        let mut chosen = &self.phases[self.phases.len() - 1];
        for p in &self.phases {
            if u < p.weight {
                chosen = p;
                break;
            }
            u -= p.weight;
        }
        // Inverse-transform sample of the shifted exponential. `1 - u` avoids
        // ln(0); uniform01 never returns exactly 1.
        let v = uniform01(rng);
        chosen.offset - chosen.theta * (1.0 - v).ln()
    }

    fn support_min(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.offset)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_mean_var(d: &dyn Distribution, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
        (m, v)
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(PhaseTypeExp::new(vec![]), Err(DistrError::Empty));
    }

    #[test]
    fn rejects_bad_weight_sum() {
        let err = PhaseTypeExp::new(vec![(0.4, 1.0, 0.0), (0.4, 2.0, 0.0)]).unwrap_err();
        assert!(matches!(err, DistrError::BadWeights { .. }));
    }

    #[test]
    fn rejects_bad_scale_and_offset() {
        assert!(matches!(
            PhaseTypeExp::new(vec![(1.0, 0.0, 0.0)]),
            Err(DistrError::BadScale { .. })
        ));
        assert!(matches!(
            PhaseTypeExp::new(vec![(1.0, 1.0, -2.0)]),
            Err(DistrError::BadOffset { .. })
        ));
    }

    #[test]
    fn normalized_constructor_rescales() {
        let d = PhaseTypeExp::new_normalized(vec![(2.0, 1.0, 0.0), (6.0, 3.0, 0.0)]).unwrap();
        let w: f64 = d.phases().iter().map(|p| p.weight).sum();
        assert!((w - 1.0).abs() < 1e-12);
        assert!((d.phases()[0].weight - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exponential_moments() {
        let d = PhaseTypeExp::exponential(22.1).unwrap();
        assert!((d.mean() - 22.1).abs() < 1e-12);
        assert!((d.variance() - 22.1 * 22.1).abs() < 1e-9);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Figure 5.1 bottom panel: three-phase mixture.
        let d = PhaseTypeExp::new(vec![(0.4, 12.7, 0.0), (0.3, 18.2, 18.0), (0.3, 15.0, 40.0)])
            .unwrap();
        // Trapezoidal integral of the pdf over the support.
        let (lo, hi) = (0.0, d.support_max());
        let n = 20_000;
        let h = (hi - lo) / n as f64;
        let mut total = 0.5 * (d.pdf(lo) + d.pdf(hi));
        for i in 1..n {
            total += d.pdf(lo + i as f64 * h);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-3, "integral = {total}");
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let d = PhaseTypeExp::new(vec![(0.6, 10.0, 0.0), (0.4, 5.0, 30.0)]).unwrap();
        let mut prev = 0.0;
        for i in 0..500 {
            let x = i as f64 * 0.5;
            let c = d.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn pdf_zero_before_offset() {
        let d = PhaseTypeExp::new(vec![(1.0, 10.0, 25.0)]).unwrap();
        assert_eq!(d.pdf(10.0), 0.0);
        assert_eq!(d.cdf(24.999), 0.0);
        assert_eq!(d.support_min(), 25.0);
    }

    #[test]
    fn sample_moments_match_analytic() {
        let d = PhaseTypeExp::new(vec![(0.4, 12.7, 0.0), (0.6, 18.2, 18.0)]).unwrap();
        let (m, v) = sample_mean_var(&d, 200_000, 42);
        assert!((m - d.mean()).abs() < 0.15, "mean {m} vs {}", d.mean());
        assert!((v - d.variance()).abs() / d.variance() < 0.05);
    }

    #[test]
    fn samples_never_below_support() {
        let d = PhaseTypeExp::new(vec![(0.5, 3.0, 5.0), (0.5, 8.0, 12.0)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 5.0);
        }
    }

    #[test]
    fn serde_round_trip() {
        let d = PhaseTypeExp::new(vec![(0.4, 12.7, 0.0), (0.6, 18.2, 18.0)]).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: PhaseTypeExp = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
