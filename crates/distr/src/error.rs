use std::fmt;

/// Errors produced when constructing or evaluating a distribution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistrError {
    /// A mixture was given no phases/stages.
    Empty,
    /// Mixture weights must be positive and sum to one.
    BadWeights {
        /// The offending weight sum.
        sum: f64,
    },
    /// A scale parameter (`theta`) was not strictly positive.
    BadScale {
        /// The offending value.
        value: f64,
    },
    /// A shape parameter (`alpha`) was not strictly positive.
    BadShape {
        /// The offending value.
        value: f64,
    },
    /// An offset was negative or non-finite.
    BadOffset {
        /// The offending value.
        value: f64,
    },
    /// A tabular specification was malformed (unsorted, too short, negative
    /// density, or non-monotone CDF).
    BadTable {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Not enough data points for the requested operation (e.g. fitting).
    InsufficientData {
        /// Number of points required.
        needed: usize,
        /// Number of points supplied.
        got: usize,
    },
    /// A generic parameter was out of its documented range.
    BadParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for DistrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistrError::Empty => write!(f, "mixture has no phases"),
            DistrError::BadWeights { sum } => {
                write!(
                    f,
                    "mixture weights must be positive and sum to 1 (sum = {sum})"
                )
            }
            DistrError::BadScale { value } => {
                write!(f, "scale parameter must be positive (got {value})")
            }
            DistrError::BadShape { value } => {
                write!(f, "shape parameter must be positive (got {value})")
            }
            DistrError::BadOffset { value } => {
                write!(f, "offset must be finite and non-negative (got {value})")
            }
            DistrError::BadTable { reason } => write!(f, "invalid table: {reason}"),
            DistrError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed}, got {got}")
            }
            DistrError::BadParameter { name, value } => {
                write!(f, "parameter `{name}` out of range (got {value})")
            }
        }
    }
}

impl std::error::Error for DistrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_lowercase() {
        let errors = [
            DistrError::Empty,
            DistrError::BadWeights { sum: 0.5 },
            DistrError::BadScale { value: -1.0 },
            DistrError::BadShape { value: 0.0 },
            DistrError::BadOffset { value: f64::NAN },
            DistrError::BadTable { reason: "x".into() },
            DistrError::InsufficientData { needed: 2, got: 0 },
            DistrError::BadParameter {
                name: "p",
                value: 2.0,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DistrError>();
    }
}
