//! Tabular distribution specifications.
//!
//! The GDS lets users "supply the probability density function (PDF) values
//! or CDF values directly" (Section 4.1.1). [`PdfTable`] holds `(x, f(x))`
//! samples and integrates them into a CDF with **Simpson's rule** — the
//! method the paper names — while [`EmpiricalCdf`] holds `(x, F(x))` samples
//! directly and samples by inverse transform.

use crate::guide::GuideTable;
use crate::{uniform01, DistrError, Distribution};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Relative tolerance for a uniform grid check.
const GRID_TOL: f64 = 1e-9;

/// A probability density supplied as a table of `(x, pdf(x))` points.
///
/// Construction integrates the table into a CDF: composite Simpson's rule on
/// uniformly spaced grids with an even number of intervals (with a trapezoid
/// correction for a trailing odd interval), plain trapezoid otherwise. The
/// integrated table is normalized so the final CDF value is exactly one,
/// which mirrors how the GDS "creates CDF tables for the FSC and the USIM".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PdfTable {
    xs: Vec<f64>,
    pdf: Vec<f64>,
    cdf: Vec<f64>,
    mean: f64,
    variance: f64,
    /// O(1) sampling index; rebuilt by constructors, empty (= binary-search
    /// fallback) when absent from serialized input.
    #[serde(default)]
    guide: GuideTable,
}

/// Equality ignores the guide: a derived index, legitimately empty on
/// deserialized tables until [`PdfTable::rebuild_guide`] runs.
impl PartialEq for PdfTable {
    fn eq(&self, other: &Self) -> bool {
        self.xs == other.xs
            && self.pdf == other.pdf
            && self.cdf == other.cdf
            && self.mean == other.mean
            && self.variance == other.variance
    }
}

impl PdfTable {
    /// Builds a density table from `(x, pdf)` points sorted by `x`.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadTable`] when fewer than three points are
    /// given, when `x` values are not strictly increasing or negative, when a
    /// density value is negative or non-finite, or when the total integral is
    /// not positive.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, DistrError> {
        if points.len() < 3 {
            return Err(DistrError::BadTable {
                reason: format!("need at least 3 points, got {}", points.len()),
            });
        }
        for window in points.windows(2) {
            if window[1].0 <= window[0].0 {
                return Err(DistrError::BadTable {
                    reason: "x values must be strictly increasing".into(),
                });
            }
        }
        if points[0].0 < 0.0 {
            return Err(DistrError::BadTable {
                reason: "x values must be non-negative".into(),
            });
        }
        if points.iter().any(|&(_, f)| !f.is_finite() || f < 0.0) {
            return Err(DistrError::BadTable {
                reason: "density values must be finite and non-negative".into(),
            });
        }

        let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
        let pdf: Vec<f64> = points.iter().map(|&(_, f)| f).collect();
        let raw_cdf = integrate_cumulative(&xs, &pdf);
        let total = *raw_cdf.last().expect("at least 3 points");
        if !(total.is_finite() && total > 0.0) {
            return Err(DistrError::BadTable {
                reason: format!("density integrates to {total}, expected > 0"),
            });
        }
        let cdf: Vec<f64> = raw_cdf.iter().map(|c| c / total).collect();
        let norm_pdf: Vec<f64> = pdf.iter().map(|f| f / total).collect();

        // Moments by trapezoid on the normalized density.
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for i in 1..xs.len() {
            let h = xs[i] - xs[i - 1];
            mean += 0.5 * h * (xs[i] * norm_pdf[i] + xs[i - 1] * norm_pdf[i - 1]);
            m2 += 0.5 * h * (xs[i] * xs[i] * norm_pdf[i] + xs[i - 1] * xs[i - 1] * norm_pdf[i - 1]);
        }
        let variance = (m2 - mean * mean).max(0.0);

        let guide = GuideTable::build(&cdf);
        Ok(Self {
            xs,
            pdf: norm_pdf,
            cdf,
            mean,
            variance,
            guide,
        })
    }

    /// The grid of `x` values.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The normalized density values at [`Self::xs`].
    pub fn densities(&self) -> &[f64] {
        &self.pdf
    }

    /// The integrated, normalized CDF values at [`Self::xs`].
    pub fn cumulative(&self) -> &[f64] {
        &self.cdf
    }

    /// Converts this table into an [`EmpiricalCdf`] (the GDS output format).
    pub fn to_empirical_cdf(&self) -> EmpiricalCdf {
        EmpiricalCdf {
            xs: self.xs.clone(),
            cdf: self.cdf.clone(),
            // Same CDF grid, so the bucket index transfers verbatim.
            guide: self.guide.clone(),
        }
    }

    /// Rebuilds the O(1) sampling index (empty after deserialization; see
    /// [`crate::GuideTable`]).
    pub fn rebuild_guide(&mut self) {
        self.guide = GuideTable::build(&self.cdf);
    }
}

/// Cumulative integral of tabulated `f` over grid `xs`.
///
/// Uses composite Simpson's rule on pairs of uniform intervals (the paper:
/// "Sympson's method for numerical integration is used") and falls back to
/// the trapezoid rule for non-uniform grids or a trailing odd interval.
/// The running prefix at interior odd points is interpolated with the
/// trapezoid rule so the output is monotone and defined at every grid point.
fn integrate_cumulative(xs: &[f64], f: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut out = vec![0.0; n];
    let uniform = {
        let h0 = xs[1] - xs[0];
        xs.windows(2)
            .all(|w| ((w[1] - w[0]) - h0).abs() <= GRID_TOL * h0.abs().max(1.0))
    };
    if uniform {
        let h = xs[1] - xs[0];
        let mut i = 0;
        while i + 2 < n {
            // Simpson over [x_i, x_{i+2}]; trapezoid estimate at the midpoint.
            let simpson = h / 3.0 * (f[i] + 4.0 * f[i + 1] + f[i + 2]);
            let mid = 0.5 * h * (f[i] + f[i + 1]);
            // Keep the running sum monotone even if Simpson < mid numerically.
            let mid = mid.min(simpson).max(0.0);
            out[i + 1] = out[i] + mid;
            out[i + 2] = out[i] + simpson.max(0.0);
            i += 2;
        }
        if i + 1 < n {
            // Trailing odd interval.
            out[i + 1] = out[i] + 0.5 * h * (f[i] + f[i + 1]);
        }
    } else {
        for i in 1..n {
            let h = xs[i] - xs[i - 1];
            out[i] = out[i - 1] + 0.5 * h * (f[i] + f[i - 1]);
        }
    }
    out
}

impl Distribution for PdfTable {
    fn pdf(&self, x: f64) -> f64 {
        interp(&self.xs, &self.pdf, x).unwrap_or(0.0)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            0.0
        } else if x >= *self.xs.last().expect("non-empty") {
            1.0
        } else {
            interp(&self.xs, &self.cdf, x).unwrap_or(0.0)
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        inverse_transform_guided(&self.xs, &self.cdf, &self.guide, uniform01(rng))
    }

    fn support_min(&self) -> f64 {
        self.xs[0]
    }

    fn support_max(&self) -> f64 {
        *self.xs.last().expect("non-empty")
    }
}

/// A distribution supplied directly as a table of `(x, F(x))` CDF points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    xs: Vec<f64>,
    cdf: Vec<f64>,
    /// O(1) sampling index; rebuilt by constructors, empty (= binary-search
    /// fallback) when absent from serialized input.
    #[serde(default)]
    guide: GuideTable,
}

/// Equality ignores the guide: a derived index, legitimately empty on
/// deserialized tables until [`EmpiricalCdf::rebuild_guide`] runs.
impl PartialEq for EmpiricalCdf {
    fn eq(&self, other: &Self) -> bool {
        self.xs == other.xs && self.cdf == other.cdf
    }
}

impl EmpiricalCdf {
    /// Builds a CDF table from `(x, F(x))` points sorted by `x`.
    ///
    /// The first CDF value must be `>= 0`, the last is rescaled to exactly 1
    /// if it is within 1% of 1, and the sequence must be non-decreasing.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadTable`] on violation of any constraint above.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, DistrError> {
        if points.len() < 2 {
            return Err(DistrError::BadTable {
                reason: format!("need at least 2 points, got {}", points.len()),
            });
        }
        // Reject non-finite values first: NaN slips through every ordering
        // comparison below (`NaN < x` and `x <= NaN` are both false) and
        // would then be laundered to 1.0 by the rescaling clamp.
        if points
            .iter()
            .any(|&(x, c)| !x.is_finite() || !c.is_finite())
        {
            return Err(DistrError::BadTable {
                reason: "x and cdf values must be finite".into(),
            });
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(DistrError::BadTable {
                    reason: "x values must be strictly increasing".into(),
                });
            }
            if w[1].1 < w[0].1 {
                return Err(DistrError::BadTable {
                    reason: "cdf values must be non-decreasing".into(),
                });
            }
        }
        if points[0].0 < 0.0 {
            return Err(DistrError::BadTable {
                reason: "x values must be non-negative".into(),
            });
        }
        let first = points[0].1;
        let last = points.last().expect("non-empty").1;
        if !(0.0..=1.0).contains(&first) {
            return Err(DistrError::BadTable {
                reason: format!("first cdf value {first} outside [0, 1]"),
            });
        }
        if (last - 1.0).abs() > 0.01 {
            return Err(DistrError::BadTable {
                reason: format!("last cdf value {last} not within 1% of 1"),
            });
        }
        let xs = points.iter().map(|&(x, _)| x).collect();
        let cdf: Vec<f64> = points.iter().map(|&(_, c)| (c / last).min(1.0)).collect();
        // Re-validate after rescaling: dividing by a `last` below 1 inflates
        // every value, so the table-shape invariants are re-checked on the
        // rescaled sequence rather than assumed from the raw input. With
        // finite inputs this is defense in depth — it documents and enforces
        // the invariant every downstream sampler relies on.
        Self::validate_rescaled(&cdf)?;
        let guide = GuideTable::build(&cdf);
        Ok(Self { xs, cdf, guide })
    }

    /// Checks that a rescaled CDF sequence is within `[0, 1]`, ends at
    /// exactly 1 and is non-decreasing.
    fn validate_rescaled(cdf: &[f64]) -> Result<(), DistrError> {
        let first = cdf[0];
        if !(0.0..=1.0).contains(&first) {
            return Err(DistrError::BadTable {
                reason: format!("rescaled first cdf value {first} outside [0, 1]"),
            });
        }
        let last = *cdf.last().expect("non-empty");
        if last != 1.0 {
            return Err(DistrError::BadTable {
                reason: format!("rescaled last cdf value {last} is not 1"),
            });
        }
        for w in cdf.windows(2) {
            if !(w[1].is_finite() && w[1] >= w[0]) {
                return Err(DistrError::BadTable {
                    reason: format!("rescaled cdf not non-decreasing: {} then {}", w[0], w[1]),
                });
            }
        }
        Ok(())
    }

    /// Builds the empirical CDF of a data sample (the standard step function
    /// evaluated at each order statistic).
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::InsufficientData`] for fewer than 2 samples and
    /// [`DistrError::BadTable`] if any sample is negative or non-finite.
    pub fn from_samples(data: &[f64]) -> Result<Self, DistrError> {
        if data.len() < 2 {
            return Err(DistrError::InsufficientData {
                needed: 2,
                got: data.len(),
            });
        }
        if data.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err(DistrError::BadTable {
                reason: "samples must be finite and non-negative".into(),
            });
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len() as f64;
        // Deduplicate x values, keeping the highest CDF at each x.
        let mut xs: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut cdf: Vec<f64> = Vec::with_capacity(sorted.len());
        for (i, &x) in sorted.iter().enumerate() {
            let p = (i + 1) as f64 / n;
            if let Some(last) = xs.last() {
                if (x - last).abs() < f64::EPSILON * x.abs().max(1.0) {
                    *cdf.last_mut().expect("same length") = p;
                    continue;
                }
            }
            xs.push(x);
            cdf.push(p);
        }
        if xs.len() < 2 {
            // All samples identical: widen into a two-point step.
            let x = xs[0];
            let cdf = vec![0.0, 1.0];
            let guide = GuideTable::build(&cdf);
            return Ok(Self {
                xs: vec![x, x + x.abs().max(1.0) * 1e-9],
                cdf,
                guide,
            });
        }
        let guide = GuideTable::build(&cdf);
        Ok(Self { xs, cdf, guide })
    }

    /// The grid of `x` values.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The CDF values at [`Self::xs`].
    pub fn cumulative(&self) -> &[f64] {
        &self.cdf
    }

    /// The quantile function by linear interpolation over the table.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn table_quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        inverse_transform_guided(&self.xs, &self.cdf, &self.guide, p)
    }

    /// The quantile via the unguided binary search: the reference
    /// implementation the guide-table path must match bit for bit. Kept
    /// public for equivalence tests and benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn table_quantile_unguided(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        inverse_transform(&self.xs, &self.cdf, p)
    }

    /// Rebuilds the O(1) sampling index (empty after deserialization; see
    /// [`crate::GuideTable`]).
    pub fn rebuild_guide(&mut self) {
        self.guide = GuideTable::build(&self.cdf);
    }
}

impl Distribution for EmpiricalCdf {
    fn pdf(&self, x: f64) -> f64 {
        // Piecewise-constant density induced by the interpolated CDF.
        if x < self.xs[0] || x > *self.xs.last().expect("non-empty") {
            return 0.0;
        }
        match self
            .xs
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
        {
            Ok(i) | Err(i) => {
                let i = i.clamp(1, self.xs.len() - 1);
                let dx = self.xs[i] - self.xs[i - 1];
                let dc = self.cdf[i] - self.cdf[i - 1];
                if dx > 0.0 {
                    dc / dx
                } else {
                    0.0
                }
            }
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            if x == self.xs[0] {
                self.cdf[0]
            } else {
                0.0
            }
        } else if x >= *self.xs.last().expect("non-empty") {
            1.0
        } else {
            interp(&self.xs, &self.cdf, x).unwrap_or(0.0)
        }
    }

    fn mean(&self) -> f64 {
        // E[X] from the interpolated CDF: piecewise-linear F means uniform
        // density on each cell; contribution is midpoint × mass.
        let mut mean = self.xs[0] * self.cdf[0];
        for i in 1..self.xs.len() {
            let mass = self.cdf[i] - self.cdf[i - 1];
            mean += mass * 0.5 * (self.xs[i] + self.xs[i - 1]);
        }
        mean
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        // Second moment of a uniform on [a, b] is (a² + ab + b²)/3.
        let mut m2 = self.xs[0] * self.xs[0] * self.cdf[0];
        for i in 1..self.xs.len() {
            let mass = self.cdf[i] - self.cdf[i - 1];
            let (a, b) = (self.xs[i - 1], self.xs[i]);
            m2 += mass * (a * a + a * b + b * b) / 3.0;
        }
        (m2 - m * m).max(0.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        inverse_transform_guided(&self.xs, &self.cdf, &self.guide, uniform01(rng))
    }

    fn support_min(&self) -> f64 {
        self.xs[0]
    }

    fn support_max(&self) -> f64 {
        *self.xs.last().expect("non-empty")
    }
}

/// Linear interpolation of `(xs, ys)` at `x`; `None` outside the grid.
fn interp(xs: &[f64], ys: &[f64], x: f64) -> Option<f64> {
    if x < xs[0] || x > *xs.last()? {
        return None;
    }
    let i = match xs.binary_search_by(|v| v.partial_cmp(&x).expect("finite")) {
        Ok(i) => return Some(ys[i]),
        Err(i) => i,
    };
    let (x0, x1) = (xs[i - 1], xs[i]);
    let (y0, y1) = (ys[i - 1], ys[i]);
    Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
}

/// Interpolates within the bracket `[hi - 1, hi]`, where `hi` is the first
/// index with `cdf[hi] >= p`. Shared by the guided and unguided transforms
/// so both produce bit-identical variates.
#[inline]
fn bracket_interpolate(xs: &[f64], cdf: &[f64], p: f64, hi: usize) -> f64 {
    let lo = hi - 1;
    let (c0, c1) = (cdf[lo], cdf[hi]);
    if c1 <= c0 {
        return xs[hi];
    }
    xs[lo] + (xs[hi] - xs[lo]) * (p - c0) / (c1 - c0)
}

/// Inverse-transform lookup: smallest `x` with `cdf(x) >= p`, interpolated.
/// O(log n) binary search — the reference path.
pub(crate) fn inverse_transform(xs: &[f64], cdf: &[f64], p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    if p <= cdf[0] {
        return xs[0];
    }
    let last = *cdf.last().expect("non-empty");
    if p >= last {
        return *xs.last().expect("non-empty");
    }
    // Binary search for the first index with cdf >= p.
    let (mut lo, mut hi) = (0usize, cdf.len() - 1);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if cdf[mid] < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    bracket_interpolate(xs, cdf, p, hi)
}

/// Inverse-transform lookup through a [`GuideTable`]: O(1) bucket lookup
/// plus local scan instead of the binary search, bit-identical output.
/// Falls back to [`inverse_transform`] when the guide is empty (e.g. a table
/// deserialized from a pre-guide snapshot).
#[inline]
pub(crate) fn inverse_transform_guided(xs: &[f64], cdf: &[f64], guide: &GuideTable, p: f64) -> f64 {
    if guide.is_empty() {
        return inverse_transform(xs, cdf, p);
    }
    let p = p.clamp(0.0, 1.0);
    if p <= cdf[0] {
        return xs[0];
    }
    let last = *cdf.last().expect("non-empty");
    if p >= last {
        return *xs.last().expect("non-empty");
    }
    let hi = guide.first_at_or_above(cdf, p);
    bracket_interpolate(xs, cdf, p, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn uniform_pdf_table(n: usize) -> PdfTable {
        // Uniform density on [0, 10].
        let points: Vec<(f64, f64)> = (0..=n).map(|i| (10.0 * i as f64 / n as f64, 0.1)).collect();
        PdfTable::new(points).unwrap()
    }

    #[test]
    fn rejects_short_and_unsorted_tables() {
        assert!(PdfTable::new(vec![(0.0, 1.0), (1.0, 1.0)]).is_err());
        assert!(PdfTable::new(vec![(0.0, 1.0), (2.0, 1.0), (1.0, 1.0)]).is_err());
        assert!(PdfTable::new(vec![(0.0, 1.0), (1.0, -1.0), (2.0, 1.0)]).is_err());
    }

    #[test]
    fn uniform_table_normalizes() {
        let t = uniform_pdf_table(10);
        assert!((t.cumulative().last().unwrap() - 1.0).abs() < 1e-12);
        assert!((t.cdf(5.0) - 0.5).abs() < 1e-9);
        assert!((t.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn simpson_beats_trapezoid_on_smooth_density() {
        // Quadratic density f(x) = 3x²/1000 on [0, 10]: Simpson is exact.
        let n = 10;
        let points: Vec<(f64, f64)> = (0..=n)
            .map(|i| {
                let x = 10.0 * i as f64 / n as f64;
                (x, 3.0 * x * x / 1000.0)
            })
            .collect();
        let t = PdfTable::new(points).unwrap();
        // CDF at even grid points should match x³/1000 almost exactly.
        assert!((t.cdf(4.0) - 0.064).abs() < 1e-10);
        assert!((t.cdf(8.0) - 0.512).abs() < 1e-10);
    }

    #[test]
    fn non_uniform_grid_falls_back_to_trapezoid() {
        let t = PdfTable::new(vec![(0.0, 0.2), (1.0, 0.2), (4.0, 0.2), (5.0, 0.2)]).unwrap();
        assert!((t.cdf(5.0) - 1.0).abs() < 1e-12);
        assert!((t.cdf(1.0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone() {
        let t = uniform_pdf_table(17); // odd interval count exercises the tail case
        let mut prev = 0.0;
        for i in 0..=100 {
            let c = t.cdf(i as f64 * 0.1);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn sampling_matches_table() {
        let t = uniform_pdf_table(20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean = (0..n).map(|_| t.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn empirical_cdf_validation() {
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(0.0, 0.5), (1.0, 0.4)]).is_err());
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0), (1.0, 0.8)]).is_err());
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0), (1.0, 1.0)]).is_ok());
    }

    #[test]
    fn empirical_cdf_rejects_non_finite_values() {
        // NaN defeats ordering comparisons and would otherwise be clamped to
        // 1.0 by the rescale (`(NaN / last).min(1.0)` is 1.0).
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0), (1.0, f64::NAN), (2.0, 1.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0), (f64::NAN, 0.5), (2.0, 1.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0), (1.0, f64::INFINITY)]).is_err());
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0), (f64::INFINITY, 1.0)]).is_err());
    }

    #[test]
    fn empirical_cdf_rescales_last_value_0_995() {
        // Regression: a table whose raw CDF tops out at 0.995 (within the 1%
        // acceptance band) is rescaled by 1/0.995 — every rescaled value must
        // land back inside [0, 1], stay non-decreasing, and end at exactly 1.
        let e =
            EmpiricalCdf::new(vec![(0.0, 0.1), (5.0, 0.5), (10.0, 0.9), (20.0, 0.995)]).unwrap();
        let cdf = e.cumulative();
        assert_eq!(*cdf.last().unwrap(), 1.0);
        assert!((cdf[0] - 0.1 / 0.995).abs() < 1e-15);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(cdf.iter().all(|c| (0.0..=1.0).contains(c)));
        // The rescaled table samples and inverts sanely, guided == unguided.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..256 {
            let x = e.sample(&mut rng);
            assert!((0.0..=20.0).contains(&x));
        }
        for k in 0..=50 {
            let p = k as f64 / 50.0;
            assert_eq!(
                e.table_quantile(p).to_bits(),
                e.table_quantile_unguided(p).to_bits()
            );
        }
        // Just outside the band still fails.
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0), (1.0, 0.98)]).is_err());
    }

    #[test]
    fn empirical_cdf_from_samples_step_function() {
        let e = EmpiricalCdf::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.cdf(4.0), 1.0);
        assert!(e.cdf(1.0) > 0.0);
        assert_eq!(e.cdf(0.5), 0.0);
    }

    #[test]
    fn empirical_cdf_identical_samples() {
        let e = EmpiricalCdf::from_samples(&[7.0, 7.0, 7.0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = e.sample(&mut rng);
        assert!((x - 7.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_round_trip() {
        let e =
            EmpiricalCdf::new(vec![(0.0, 0.0), (10.0, 0.25), (20.0, 0.5), (40.0, 1.0)]).unwrap();
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.99] {
            let x = e.table_quantile(p);
            assert!((e.cdf(x) - p).abs() < 1e-9, "p={p} x={x}");
        }
    }

    #[test]
    fn empirical_mean_of_uniform_grid() {
        // CDF of U[0,100] sampled at 11 points.
        let pts: Vec<(f64, f64)> = (0..=10)
            .map(|i| (i as f64 * 10.0, i as f64 / 10.0))
            .collect();
        let e = EmpiricalCdf::new(pts).unwrap();
        assert!((e.mean() - 50.0).abs() < 1e-9);
        assert!((e.variance() - 100.0 * 100.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    fn pdf_table_round_trips_to_empirical() {
        let t = uniform_pdf_table(10);
        let e = t.to_empirical_cdf();
        assert!((e.cdf(5.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let t = uniform_pdf_table(6);
        let json = serde_json::to_string(&t).unwrap();
        let back: PdfTable = serde_json::from_str(&json).unwrap();
        // JSON float formatting may drift by 1 ulp; compare approximately.
        assert_eq!(t.xs().len(), back.xs().len());
        for (a, b) in t.cumulative().iter().zip(back.cumulative()) {
            assert!((a - b).abs() <= 1e-12);
        }
        assert!((t.mean() - back.mean()).abs() <= 1e-9);
    }
}
