//! ASCII density plots — the text-mode replacement for the GDS's X11 display.
//!
//! The paper notes that "if the X11 window system is not supported, the GDS
//! can still be used to specify distributions, but no graphical display will
//! be available" (Section 4.1.1). This module restores a display channel that
//! works everywhere: fixed-width character plots suitable for terminals, logs
//! and the experiment reports in `EXPERIMENTS.md`.

use crate::Distribution;

/// Renders the density of `dist` over `[x_min, x_max]` as an ASCII plot.
///
/// `width`/`height` are clamped to sensible minimums (16×4). The plot marks
/// the curve with `*`, includes a y-axis scale of the peak density, and an
/// x-axis rule with the endpoints labeled.
pub fn plot_pdf(
    dist: &dyn Distribution,
    x_min: f64,
    x_max: f64,
    width: usize,
    height: usize,
) -> String {
    plot_function(|x| dist.pdf(x), x_min, x_max, width, height)
}

/// Renders the CDF of `dist` over `[x_min, x_max]` as an ASCII plot.
pub fn plot_cdf(
    dist: &dyn Distribution,
    x_min: f64,
    x_max: f64,
    width: usize,
    height: usize,
) -> String {
    plot_function(|x| dist.cdf(x), x_min, x_max, width, height)
}

/// Renders an arbitrary function as an ASCII plot (see [`plot_pdf`]).
pub fn plot_function<F: Fn(f64) -> f64>(
    f: F,
    x_min: f64,
    x_max: f64,
    width: usize,
    height: usize,
) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let span = (x_max - x_min).max(f64::MIN_POSITIVE);

    let ys: Vec<f64> = (0..width)
        .map(|i| {
            let x = x_min + span * i as f64 / (width - 1) as f64;
            let y = f(x);
            if y.is_finite() {
                y.max(0.0)
            } else {
                0.0
            }
        })
        .collect();
    let y_max = ys
        .iter()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; width]; height];
    for (i, &y) in ys.iter().enumerate() {
        let level = ((y / y_max) * (height - 1) as f64).round() as usize;
        let row = height - 1 - level.min(height - 1);
        grid[row][i] = '*';
    }

    let mut out = String::new();
    out.push_str(&format!("{y_max:>10.4} +\n"));
    for row in grid {
        out.push_str("           |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("           +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "            {x_min:<12.2}{:>w$.2}\n",
        x_max,
        w = width.saturating_sub(12)
    ));
    out
}

/// Renders a histogram of `(bin_center, count)` pairs as horizontal ASCII
/// bars, used to display the "before/after smoothing" figures (5.3–5.5).
pub fn plot_histogram(bins: &[(f64, f64)], width: usize) -> String {
    let width = width.max(16);
    let max_count = bins.iter().map(|&(_, c)| c).fold(0.0f64, f64::max);
    let mut out = String::new();
    if max_count <= 0.0 {
        out.push_str("(empty histogram)\n");
        return out;
    }
    for &(center, count) in bins {
        let bar_len = ((count / max_count) * width as f64).round() as usize;
        out.push_str(&format!(
            "{center:>12.2} | {:<w$} {count:.1}\n",
            "#".repeat(bar_len),
            w = width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, PhaseTypeExp};

    #[test]
    fn plot_contains_curve_and_axes() {
        let d = Exponential::new(22.1).unwrap();
        let s = plot_pdf(&d, 0.0, 100.0, 60, 12);
        assert!(s.contains('*'));
        assert!(s.contains('+'));
        assert!(s.contains("0.00"));
        assert!(s.contains("100.00"));
        // One curve mark per column.
        let stars = s.chars().filter(|&c| c == '*').count();
        assert_eq!(stars, 60);
    }

    #[test]
    fn plot_dimensions_are_clamped() {
        let d = Exponential::new(1.0).unwrap();
        let s = plot_pdf(&d, 0.0, 5.0, 1, 1);
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn cdf_plot_is_monotone_visual() {
        let d = PhaseTypeExp::new(vec![(0.4, 12.7, 0.0), (0.6, 18.2, 18.0)]).unwrap();
        let s = plot_cdf(&d, 0.0, 120.0, 40, 10);
        // The last column of the CDF plot should be at the top row.
        let first_grid_line = s.lines().nth(1).unwrap();
        assert!(first_grid_line.ends_with('*'));
    }

    #[test]
    fn plot_handles_infinite_density() {
        // Gamma with α < 1 has infinite density at its offset.
        let d = crate::MultiStageGamma::single(0.5, 10.0, 0.0).unwrap();
        let s = plot_pdf(&d, 0.0, 50.0, 40, 8);
        assert!(s.contains('*'));
    }

    #[test]
    fn histogram_renders_bars() {
        let s = plot_histogram(&[(1.0, 10.0), (2.0, 5.0), (3.0, 0.0)], 20);
        assert!(s.contains("####################"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn empty_histogram_is_handled() {
        let s = plot_histogram(&[(1.0, 0.0)], 20);
        assert!(s.contains("empty"));
    }
}
