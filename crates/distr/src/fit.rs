//! Fitting distribution families to empirical data.
//!
//! The GDS lets users "fit a phase-type exponential or multi-stage gamma
//! distribution to an empirical distribution" (Section 4.1.1). This module
//! implements that fitting step: data is partitioned into `k` clusters with a
//! one-dimensional Lloyd iteration, then each cluster is fitted by the method
//! of moments (exponential: mean; gamma: `α = m²/v`, `θ = v/m`) with the
//! cluster minimum as the offset and the cluster fraction as the weight.

use crate::gof::{ks_statistic, KsTest};
use crate::{DistrError, DistributionSpec, MultiStageGamma, PhaseTypeExp};

/// Smallest permitted scale when a cluster degenerates to a point.
const MIN_SCALE: f64 = 1e-9;
/// Gamma shapes are clamped into this range to keep fits sane.
const SHAPE_RANGE: (f64, f64) = (0.05, 500.0);

/// Fits a single exponential to `data` by matching the sample mean.
///
/// # Errors
///
/// Returns [`DistrError::InsufficientData`] for an empty sample and
/// [`DistrError::BadTable`] for negative, non-finite, or overflowing
/// samples (a sum too large for the mean to stay finite).
pub fn fit_exponential(data: &[f64]) -> Result<PhaseTypeExp, DistrError> {
    validate(data, 1)?;
    let mean = finite_mean(data)?;
    PhaseTypeExp::exponential(mean.max(MIN_SCALE))
}

/// Fits a `k`-phase phase-type exponential mixture to `data`.
///
/// # Errors
///
/// Returns [`DistrError::BadParameter`] when `k == 0`,
/// [`DistrError::InsufficientData`] when `data.len() < 2 * k`, and
/// [`DistrError::BadTable`] for invalid samples.
pub fn fit_phase_type(data: &[f64], k: usize) -> Result<PhaseTypeExp, DistrError> {
    validate(data, components_needed(k)?)?;
    let clusters = cluster_1d(data, k);
    let n = data.len() as f64;
    let phases = clusters
        .into_iter()
        .map(|c| {
            if !(c.mean.is_finite() && c.min.is_finite()) {
                return Err(DistrError::BadTable {
                    reason: "cluster mean overflowed (samples too large to average)".into(),
                });
            }
            let offset = c.min;
            let shifted_mean = (c.mean - offset).max(MIN_SCALE);
            Ok((c.count as f64 / n, shifted_mean, offset))
        })
        .collect::<Result<Vec<_>, _>>()?;
    PhaseTypeExp::new_normalized(phases)
}

/// Fits a `k`-stage multi-stage gamma mixture to `data`.
///
/// # Errors
///
/// Returns [`DistrError::BadParameter`] when `k == 0`,
/// [`DistrError::InsufficientData`] when `data.len() < 2 * k`, and
/// [`DistrError::BadTable`] for invalid samples.
pub fn fit_multi_stage_gamma(data: &[f64], k: usize) -> Result<MultiStageGamma, DistrError> {
    validate(data, components_needed(k)?)?;
    let clusters = cluster_1d(data, k);
    let n = data.len() as f64;
    let stages = clusters
        .into_iter()
        .map(|c| {
            if !(c.mean.is_finite() && c.variance.is_finite()) {
                return Err(DistrError::BadTable {
                    reason: "cluster moments overflowed (samples too large to average)".into(),
                });
            }
            // Offset slightly below the cluster minimum so the minimum itself
            // has positive density.
            let offset = (c.min - 0.05 * (c.mean - c.min).max(MIN_SCALE)).max(0.0);
            let m = (c.mean - offset).max(MIN_SCALE);
            let v = c.variance.max(MIN_SCALE * m);
            let alpha = (m * m / v).clamp(SHAPE_RANGE.0, SHAPE_RANGE.1);
            let theta = (m / alpha).max(MIN_SCALE);
            Ok((c.count as f64 / n, alpha, theta, offset))
        })
        .collect::<Result<Vec<_>, _>>()?;
    MultiStageGamma::new_normalized(stages)
}

/// The minimum sample count a `k`-component mixture fit needs (`2k`),
/// rejecting `k == 0` and `k` large enough to overflow the requirement.
fn components_needed(k: usize) -> Result<usize, DistrError> {
    if k == 0 {
        return Err(DistrError::BadParameter {
            name: "k",
            value: 0.0,
        });
    }
    k.checked_mul(2).ok_or(DistrError::BadParameter {
        name: "k",
        value: k as f64,
    })
}

/// The sample mean, rejecting a sum that overflowed to infinity — every
/// individual sample may be finite while their sum is not.
fn finite_mean(data: &[f64]) -> Result<f64, DistrError> {
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    if mean.is_finite() {
        Ok(mean)
    } else {
        Err(DistrError::BadTable {
            reason: "sample mean overflowed (samples too large to average)".into(),
        })
    }
}

/// One candidate family tried by [`fit_best`], with its goodness of fit.
#[derive(Debug, Clone, PartialEq)]
pub struct BestFit {
    /// Short family label: `"constant"`, `"exponential"`, `"phase:K"` or
    /// `"gamma:K"`.
    pub family: String,
    /// The fitted distribution in serializable form.
    pub spec: DistributionSpec,
    /// KS test of the data against the fitted distribution.
    pub ks: KsTest,
}

/// Fits every supported family to `data` — a single exponential,
/// phase-type mixtures with 2..=`max_k` phases and multi-stage gammas with
/// 1..=`max_k` stages — and returns the candidate with the smallest KS
/// statistic. A sample with zero spread short-circuits to the exact
/// [`DistributionSpec::Constant`] point mass (the mixtures cannot represent
/// an atom, and a degenerate measure like an all-zero think time must
/// round-trip as the constant it is).
///
/// Candidates that fail to fit (e.g. too few samples for a large `k`) are
/// skipped; the error surfaces only when *no* family fits.
///
/// # Errors
///
/// Returns [`DistrError::InsufficientData`] for an empty sample,
/// [`DistrError::BadTable`] for invalid samples, and
/// [`DistrError::BadParameter`] when `max_k == 0`.
pub fn fit_best(data: &[f64], max_k: usize) -> Result<BestFit, DistrError> {
    if max_k == 0 {
        return Err(DistrError::BadParameter {
            name: "max_k",
            value: 0.0,
        });
    }
    validate(data, 1)?;
    let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if lo == hi {
        // Zero spread: the point mass is exact; no continuous family is.
        return Ok(BestFit {
            family: "constant".into(),
            spec: DistributionSpec::constant(lo),
            ks: KsTest {
                statistic: 0.0,
                p_value: 1.0,
            },
        });
    }
    let mut best: Option<BestFit> = None;
    let mut consider = |family: String, spec: DistributionSpec| -> Result<(), DistrError> {
        let dist = spec.build()?;
        let ks = ks_statistic(data, dist.as_ref())?;
        if best
            .as_ref()
            .is_none_or(|b| ks.statistic < b.ks.statistic)
        {
            best = Some(BestFit { family, spec, ks });
        }
        Ok(())
    };
    match fit_exponential(data) {
        Ok(d) => {
            let p = d.phases()[0];
            consider(
                "exponential".into(),
                DistributionSpec::Exponential {
                    mean: p.theta,
                    offset: p.offset,
                },
            )?;
        }
        Err(e) => return Err(e),
    }
    for k in 2..=max_k {
        if let Ok(d) = fit_phase_type(data, k) {
            let phases = d.phases().iter().map(|p| (p.weight, p.theta, p.offset));
            consider(
                format!("phase:{k}"),
                DistributionSpec::PhaseTypeExp {
                    phases: phases.collect(),
                },
            )?;
        }
    }
    for k in 1..=max_k {
        if let Ok(d) = fit_multi_stage_gamma(data, k) {
            let stages = d
                .stages()
                .iter()
                .map(|s| (s.weight, s.alpha, s.theta, s.offset));
            consider(
                format!("gamma:{k}"),
                DistributionSpec::MultiStageGamma {
                    stages: stages.collect(),
                },
            )?;
        }
    }
    best.ok_or(DistrError::InsufficientData { needed: 1, got: 0 })
}

/// Summary of one cluster produced by [`cluster_1d`].
#[derive(Debug, Clone, Copy)]
struct Cluster {
    count: usize,
    min: f64,
    mean: f64,
    variance: f64,
}

/// One-dimensional Lloyd (k-means) clustering on sorted data.
///
/// Initializes centroids at the `k` quantile midpoints and iterates
/// assignment/update until stable (1-D clusters are always contiguous in the
/// sorted order, so assignment reduces to threshold search).
fn cluster_1d(data: &[f64], k: usize) -> Vec<Cluster> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    let k = k.min(n);

    // Initial boundaries at equal-count quantiles.
    let mut bounds: Vec<usize> = (1..k).map(|i| i * n / k).collect();

    for _ in 0..64 {
        // Centroids of current segments.
        let mut centroids = Vec::with_capacity(k);
        let mut start = 0;
        for b in bounds.iter().copied().chain(std::iter::once(n)) {
            let seg = &sorted[start..b];
            if seg.is_empty() {
                centroids.push(sorted[start.min(n - 1)]);
            } else {
                centroids.push(seg.iter().sum::<f64>() / seg.len() as f64);
            }
            start = b;
        }
        // New boundaries: midpoint between adjacent centroids.
        let mut new_bounds = Vec::with_capacity(k.saturating_sub(1));
        for w in centroids.windows(2) {
            let cut = 0.5 * (w[0] + w[1]);
            let idx = sorted.partition_point(|&x| x < cut);
            new_bounds.push(idx);
        }
        // Enforce strictly increasing, non-empty segments.
        for i in 0..new_bounds.len() {
            let lo = if i == 0 { 1 } else { new_bounds[i - 1] + 1 };
            let hi = n - (new_bounds.len() - i);
            new_bounds[i] = new_bounds[i].clamp(lo, hi);
        }
        if new_bounds == bounds {
            break;
        }
        bounds = new_bounds;
    }

    let mut clusters = Vec::with_capacity(k);
    let mut start = 0;
    for b in bounds.iter().copied().chain(std::iter::once(n)) {
        let seg = &sorted[start..b];
        if !seg.is_empty() {
            let mean = seg.iter().sum::<f64>() / seg.len() as f64;
            let variance = if seg.len() > 1 {
                seg.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (seg.len() - 1) as f64
            } else {
                0.0
            };
            clusters.push(Cluster {
                count: seg.len(),
                min: seg[0],
                mean,
                variance,
            });
        }
        start = b;
    }
    clusters
}

fn validate(data: &[f64], needed: usize) -> Result<(), DistrError> {
    if data.len() < needed {
        return Err(DistrError::InsufficientData {
            needed,
            got: data.len(),
        });
    }
    if data.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return Err(DistrError::BadTable {
            reason: "samples must be finite and non-negative".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distribution;
    use rand::SeedableRng;

    fn draws(d: &dyn Distribution, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_fit_recovers_mean() {
        let truth = crate::Exponential::new(5000.0).unwrap();
        let data = draws(&truth, 50_000, 1);
        let fitted = fit_exponential(&data).unwrap();
        assert!((fitted.mean() - 5000.0).abs() / 5000.0 < 0.02);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(fit_exponential(&[]).is_err());
        assert!(fit_phase_type(&[1.0], 0).is_err());
        assert!(fit_phase_type(&[1.0, 2.0], 4).is_err());
        assert!(fit_exponential(&[1.0, f64::NAN]).is_err());
        assert!(fit_exponential(&[-1.0, 2.0]).is_err());
    }

    /// Every fitter, against every degenerate real-log input shape: the
    /// result is either a clean `DistrError` or a distribution with finite,
    /// usable parameters — never a panic, never NaN.
    #[test]
    fn fitters_survive_degenerate_inputs() {
        let empty: Vec<f64> = vec![];
        let single = vec![7.5];
        let identical = vec![3.0; 64];
        let zeros = vec![0.0; 64];
        let with_nan = vec![1.0, f64::NAN, 2.0];
        let with_inf = vec![1.0, f64::INFINITY];
        let negative = vec![-1.0, 1.0, 2.0];
        let huge = vec![f64::MAX; 8]; // finite samples, overflowing sum
        let cases: [(&str, &[f64]); 8] = [
            ("empty", &empty),
            ("single", &single),
            ("identical", &identical),
            ("zeros", &zeros),
            ("nan", &with_nan),
            ("inf", &with_inf),
            ("negative", &negative),
            ("huge", &huge),
        ];
        for (name, data) in cases {
            match fit_exponential(data) {
                Ok(d) => assert!(d.mean().is_finite(), "exp {name}: NaN/inf mean"),
                Err(e) => drop(e), // clean error is acceptable
            }
            for k in [1usize, 2, 3] {
                match fit_phase_type(data, k) {
                    Ok(d) => {
                        assert!(d.mean().is_finite(), "phase:{k} {name}");
                        for p in d.phases() {
                            assert!(
                                p.weight.is_finite() && p.theta.is_finite() && p.offset.is_finite(),
                                "phase:{k} {name}: non-finite parameter {p:?}"
                            );
                        }
                    }
                    Err(e) => drop(e),
                }
                match fit_multi_stage_gamma(data, k) {
                    Ok(d) => {
                        assert!(d.mean().is_finite(), "gamma:{k} {name}");
                        for s in d.stages() {
                            assert!(
                                s.weight.is_finite()
                                    && s.alpha.is_finite()
                                    && s.theta.is_finite()
                                    && s.offset.is_finite(),
                                "gamma:{k} {name}: non-finite parameter {s:?}"
                            );
                        }
                    }
                    Err(e) => drop(e),
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs_error_cleanly_where_no_fit_exists() {
        // Empty and too-short samples: InsufficientData, not a panic.
        assert!(matches!(
            fit_exponential(&[]),
            Err(DistrError::InsufficientData { .. })
        ));
        assert!(matches!(
            fit_phase_type(&[1.0], 2),
            Err(DistrError::InsufficientData { needed: 4, got: 1 })
        ));
        assert!(matches!(
            fit_multi_stage_gamma(&[1.0, 2.0, 3.0], 2),
            Err(DistrError::InsufficientData { needed: 4, got: 3 })
        ));
        // NaN / inf / negative samples: BadTable.
        for bad in [&[f64::NAN][..], &[f64::INFINITY], &[-0.5, 1.0]] {
            assert!(matches!(
                fit_phase_type(bad, 1),
                Err(DistrError::InsufficientData { .. }) | Err(DistrError::BadTable { .. })
            ));
        }
        // A sum overflowing to infinity from finite samples: clean error.
        let huge = vec![f64::MAX; 4];
        assert!(matches!(
            fit_exponential(&huge),
            Err(DistrError::BadTable { .. })
        ));
        assert!(matches!(
            fit_phase_type(&huge, 2),
            Err(DistrError::BadTable { .. }) | Err(DistrError::BadScale { .. })
        ));
        assert!(matches!(
            fit_multi_stage_gamma(&huge, 2),
            Err(DistrError::BadTable { .. }) | Err(DistrError::BadScale { .. })
        ));
        // k so large that `2 * k` would overflow: BadParameter, not a
        // debug-build panic.
        assert!(matches!(
            fit_phase_type(&[1.0, 2.0], usize::MAX),
            Err(DistrError::BadParameter { name: "k", .. })
        ));
        assert!(matches!(
            fit_multi_stage_gamma(&[1.0, 2.0], usize::MAX / 2 + 1),
            Err(DistrError::BadParameter { name: "k", .. })
        ));
    }

    #[test]
    fn single_sample_and_zeros_fit_cleanly() {
        // One sample is enough for an exponential; the fit degenerates to
        // the sample itself as the mean.
        let d = fit_exponential(&[7.5]).unwrap();
        assert!((d.mean() - 7.5).abs() < 1e-9);
        // All zeros: a clean minimal-scale exponential, not NaN.
        let d = fit_exponential(&[0.0; 32]).unwrap();
        assert!(d.mean().is_finite());
        let d = fit_multi_stage_gamma(&[0.0; 32], 2).unwrap();
        assert!(d.mean().is_finite());
    }

    #[test]
    fn fit_best_selects_reasonable_families() {
        // Constant data short-circuits to the exact point mass.
        let best = fit_best(&[3.0; 50], 3).unwrap();
        assert_eq!(best.family, "constant");
        assert_eq!(best.spec, DistributionSpec::constant(3.0));
        assert_eq!(best.ks.statistic, 0.0);
        // Exponential draws select a 1-ish component family whose KS
        // statistic is small.
        let truth = crate::Exponential::new(1000.0).unwrap();
        let data = draws(&truth, 4_000, 11);
        let best = fit_best(&data, 3).unwrap();
        assert!(best.ks.statistic < 0.05, "{best:?}");
        assert!((best.spec.mean().unwrap() - 1000.0).abs() / 1000.0 < 0.1);
        // A well-separated bimodal mixture is matched far better by the
        // winning candidate than by a single exponential.
        let truth = PhaseTypeExp::new(vec![(0.5, 10.0, 0.0), (0.5, 10.0, 500.0)]).unwrap();
        let data = draws(&truth, 4_000, 12);
        let best = fit_best(&data, 3).unwrap();
        let single = fit_exponential(&data).unwrap();
        let single_ks = crate::gof::ks_statistic(&data, &single).unwrap();
        assert!(
            best.ks.statistic < single_ks.statistic * 0.5,
            "best {} vs single-exp {}",
            best.ks.statistic,
            single_ks.statistic
        );
        // The winner always round-trips through its serializable spec.
        assert!(best.spec.build().is_ok());
    }

    #[test]
    fn fit_best_validates_input() {
        assert!(matches!(
            fit_best(&[], 3),
            Err(DistrError::InsufficientData { .. })
        ));
        assert!(matches!(
            fit_best(&[1.0, 2.0], 0),
            Err(DistrError::BadParameter { name: "max_k", .. })
        ));
        assert!(fit_best(&[1.0, f64::NAN], 3).is_err());
    }

    #[test]
    fn phase_type_fit_recovers_bimodal_mixture() {
        // Well-separated two-phase mixture.
        let truth = PhaseTypeExp::new(vec![(0.5, 5.0, 0.0), (0.5, 5.0, 100.0)]).unwrap();
        let data = draws(&truth, 40_000, 2);
        let fitted = fit_phase_type(&data, 2).unwrap();
        assert!((fitted.mean() - truth.mean()).abs() / truth.mean() < 0.05);
        // The fitted phases should be well separated; the second phase's
        // offset is the cluster minimum, which a stray tail sample from the
        // first mode can pull well below 100, so only require separation.
        let offsets: Vec<f64> = fitted.phases().iter().map(|p| p.offset).collect();
        let spread = offsets.iter().cloned().fold(0.0f64, f64::max)
            - offsets.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 40.0, "offsets = {offsets:?}");
    }

    #[test]
    fn gamma_fit_recovers_shape_roughly() {
        let truth = MultiStageGamma::single(4.0, 10.0, 0.0).unwrap();
        let data = draws(&truth, 40_000, 3);
        let fitted = fit_multi_stage_gamma(&data, 1).unwrap();
        let stage = fitted.stages()[0];
        assert!((fitted.mean() - truth.mean()).abs() / truth.mean() < 0.05);
        assert!(
            stage.alpha > 2.0 && stage.alpha < 8.0,
            "alpha = {}",
            stage.alpha
        );
    }

    #[test]
    fn gamma_mixture_fit_improves_ks_over_single() {
        let truth =
            MultiStageGamma::new(vec![(0.6, 2.0, 5.0, 0.0), (0.4, 3.0, 8.0, 80.0)]).unwrap();
        let data = draws(&truth, 20_000, 4);
        let single = fit_multi_stage_gamma(&data, 1).unwrap();
        let double = fit_multi_stage_gamma(&data, 2).unwrap();
        let ks1 = crate::gof::ks_statistic(&data, &single).unwrap();
        let ks2 = crate::gof::ks_statistic(&data, &double).unwrap();
        assert!(
            ks2.statistic < ks1.statistic,
            "{} vs {}",
            ks2.statistic,
            ks1.statistic
        );
    }

    #[test]
    fn fit_handles_identical_samples() {
        let data = vec![3.0; 100];
        let fitted = fit_phase_type(&data, 2).unwrap();
        assert!((fitted.mean() - 3.0).abs() < 0.1);
    }

    #[test]
    fn cluster_count_never_exceeds_k() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        for k in 1..=5 {
            let c = cluster_1d(&data, k);
            assert!(c.len() <= k);
            assert_eq!(c.iter().map(|c| c.count).sum::<usize>(), 100);
        }
    }

    #[test]
    fn clusters_partition_sorted_data() {
        let data = vec![1.0, 1.1, 1.2, 50.0, 51.0, 52.0, 200.0, 201.0];
        let c = cluster_1d(&data, 3);
        assert_eq!(c.len(), 3);
        assert!(c[0].min < c[1].min && c[1].min < c[2].min);
    }
}
