//! Fitting distribution families to empirical data.
//!
//! The GDS lets users "fit a phase-type exponential or multi-stage gamma
//! distribution to an empirical distribution" (Section 4.1.1). This module
//! implements that fitting step: data is partitioned into `k` clusters with a
//! one-dimensional Lloyd iteration, then each cluster is fitted by the method
//! of moments (exponential: mean; gamma: `α = m²/v`, `θ = v/m`) with the
//! cluster minimum as the offset and the cluster fraction as the weight.

use crate::{DistrError, MultiStageGamma, PhaseTypeExp};

/// Smallest permitted scale when a cluster degenerates to a point.
const MIN_SCALE: f64 = 1e-9;
/// Gamma shapes are clamped into this range to keep fits sane.
const SHAPE_RANGE: (f64, f64) = (0.05, 500.0);

/// Fits a single exponential to `data` by matching the sample mean.
///
/// # Errors
///
/// Returns [`DistrError::InsufficientData`] for an empty sample and
/// [`DistrError::BadTable`] for negative or non-finite samples.
pub fn fit_exponential(data: &[f64]) -> Result<PhaseTypeExp, DistrError> {
    validate(data, 1)?;
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    PhaseTypeExp::exponential(mean.max(MIN_SCALE))
}

/// Fits a `k`-phase phase-type exponential mixture to `data`.
///
/// # Errors
///
/// Returns [`DistrError::BadParameter`] when `k == 0`,
/// [`DistrError::InsufficientData`] when `data.len() < 2 * k`, and
/// [`DistrError::BadTable`] for invalid samples.
pub fn fit_phase_type(data: &[f64], k: usize) -> Result<PhaseTypeExp, DistrError> {
    if k == 0 {
        return Err(DistrError::BadParameter {
            name: "k",
            value: 0.0,
        });
    }
    validate(data, 2 * k)?;
    let clusters = cluster_1d(data, k);
    let n = data.len() as f64;
    let phases = clusters
        .into_iter()
        .map(|c| {
            let offset = c.min;
            let shifted_mean = (c.mean - offset).max(MIN_SCALE);
            (c.count as f64 / n, shifted_mean, offset)
        })
        .collect();
    PhaseTypeExp::new_normalized(phases)
}

/// Fits a `k`-stage multi-stage gamma mixture to `data`.
///
/// # Errors
///
/// Returns [`DistrError::BadParameter`] when `k == 0`,
/// [`DistrError::InsufficientData`] when `data.len() < 2 * k`, and
/// [`DistrError::BadTable`] for invalid samples.
pub fn fit_multi_stage_gamma(data: &[f64], k: usize) -> Result<MultiStageGamma, DistrError> {
    if k == 0 {
        return Err(DistrError::BadParameter {
            name: "k",
            value: 0.0,
        });
    }
    validate(data, 2 * k)?;
    let clusters = cluster_1d(data, k);
    let n = data.len() as f64;
    let stages = clusters
        .into_iter()
        .map(|c| {
            // Offset slightly below the cluster minimum so the minimum itself
            // has positive density.
            let offset = (c.min - 0.05 * (c.mean - c.min).max(MIN_SCALE)).max(0.0);
            let m = (c.mean - offset).max(MIN_SCALE);
            let v = c.variance.max(MIN_SCALE * m);
            let alpha = (m * m / v).clamp(SHAPE_RANGE.0, SHAPE_RANGE.1);
            let theta = (m / alpha).max(MIN_SCALE);
            (c.count as f64 / n, alpha, theta, offset)
        })
        .collect();
    MultiStageGamma::new_normalized(stages)
}

/// Summary of one cluster produced by [`cluster_1d`].
#[derive(Debug, Clone, Copy)]
struct Cluster {
    count: usize,
    min: f64,
    mean: f64,
    variance: f64,
}

/// One-dimensional Lloyd (k-means) clustering on sorted data.
///
/// Initializes centroids at the `k` quantile midpoints and iterates
/// assignment/update until stable (1-D clusters are always contiguous in the
/// sorted order, so assignment reduces to threshold search).
fn cluster_1d(data: &[f64], k: usize) -> Vec<Cluster> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    let k = k.min(n);

    // Initial boundaries at equal-count quantiles.
    let mut bounds: Vec<usize> = (1..k).map(|i| i * n / k).collect();

    for _ in 0..64 {
        // Centroids of current segments.
        let mut centroids = Vec::with_capacity(k);
        let mut start = 0;
        for b in bounds.iter().copied().chain(std::iter::once(n)) {
            let seg = &sorted[start..b];
            if seg.is_empty() {
                centroids.push(sorted[start.min(n - 1)]);
            } else {
                centroids.push(seg.iter().sum::<f64>() / seg.len() as f64);
            }
            start = b;
        }
        // New boundaries: midpoint between adjacent centroids.
        let mut new_bounds = Vec::with_capacity(k.saturating_sub(1));
        for w in centroids.windows(2) {
            let cut = 0.5 * (w[0] + w[1]);
            let idx = sorted.partition_point(|&x| x < cut);
            new_bounds.push(idx);
        }
        // Enforce strictly increasing, non-empty segments.
        for i in 0..new_bounds.len() {
            let lo = if i == 0 { 1 } else { new_bounds[i - 1] + 1 };
            let hi = n - (new_bounds.len() - i);
            new_bounds[i] = new_bounds[i].clamp(lo, hi);
        }
        if new_bounds == bounds {
            break;
        }
        bounds = new_bounds;
    }

    let mut clusters = Vec::with_capacity(k);
    let mut start = 0;
    for b in bounds.iter().copied().chain(std::iter::once(n)) {
        let seg = &sorted[start..b];
        if !seg.is_empty() {
            let mean = seg.iter().sum::<f64>() / seg.len() as f64;
            let variance = if seg.len() > 1 {
                seg.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (seg.len() - 1) as f64
            } else {
                0.0
            };
            clusters.push(Cluster {
                count: seg.len(),
                min: seg[0],
                mean,
                variance,
            });
        }
        start = b;
    }
    clusters
}

fn validate(data: &[f64], needed: usize) -> Result<(), DistrError> {
    if data.len() < needed {
        return Err(DistrError::InsufficientData {
            needed,
            got: data.len(),
        });
    }
    if data.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return Err(DistrError::BadTable {
            reason: "samples must be finite and non-negative".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distribution;
    use rand::SeedableRng;

    fn draws(d: &dyn Distribution, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_fit_recovers_mean() {
        let truth = crate::Exponential::new(5000.0).unwrap();
        let data = draws(&truth, 50_000, 1);
        let fitted = fit_exponential(&data).unwrap();
        assert!((fitted.mean() - 5000.0).abs() / 5000.0 < 0.02);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(fit_exponential(&[]).is_err());
        assert!(fit_phase_type(&[1.0], 0).is_err());
        assert!(fit_phase_type(&[1.0, 2.0], 4).is_err());
        assert!(fit_exponential(&[1.0, f64::NAN]).is_err());
        assert!(fit_exponential(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn phase_type_fit_recovers_bimodal_mixture() {
        // Well-separated two-phase mixture.
        let truth = PhaseTypeExp::new(vec![(0.5, 5.0, 0.0), (0.5, 5.0, 100.0)]).unwrap();
        let data = draws(&truth, 40_000, 2);
        let fitted = fit_phase_type(&data, 2).unwrap();
        assert!((fitted.mean() - truth.mean()).abs() / truth.mean() < 0.05);
        // The fitted phases should be well separated; the second phase's
        // offset is the cluster minimum, which a stray tail sample from the
        // first mode can pull well below 100, so only require separation.
        let offsets: Vec<f64> = fitted.phases().iter().map(|p| p.offset).collect();
        let spread = offsets.iter().cloned().fold(0.0f64, f64::max)
            - offsets.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 40.0, "offsets = {offsets:?}");
    }

    #[test]
    fn gamma_fit_recovers_shape_roughly() {
        let truth = MultiStageGamma::single(4.0, 10.0, 0.0).unwrap();
        let data = draws(&truth, 40_000, 3);
        let fitted = fit_multi_stage_gamma(&data, 1).unwrap();
        let stage = fitted.stages()[0];
        assert!((fitted.mean() - truth.mean()).abs() / truth.mean() < 0.05);
        assert!(
            stage.alpha > 2.0 && stage.alpha < 8.0,
            "alpha = {}",
            stage.alpha
        );
    }

    #[test]
    fn gamma_mixture_fit_improves_ks_over_single() {
        let truth =
            MultiStageGamma::new(vec![(0.6, 2.0, 5.0, 0.0), (0.4, 3.0, 8.0, 80.0)]).unwrap();
        let data = draws(&truth, 20_000, 4);
        let single = fit_multi_stage_gamma(&data, 1).unwrap();
        let double = fit_multi_stage_gamma(&data, 2).unwrap();
        let ks1 = crate::gof::ks_statistic(&data, &single).unwrap();
        let ks2 = crate::gof::ks_statistic(&data, &double).unwrap();
        assert!(
            ks2.statistic < ks1.statistic,
            "{} vs {}",
            ks2.statistic,
            ks1.statistic
        );
    }

    #[test]
    fn fit_handles_identical_samples() {
        let data = vec![3.0; 100];
        let fitted = fit_phase_type(&data, 2).unwrap();
        assert!((fitted.mean() - 3.0).abs() < 0.1);
    }

    #[test]
    fn cluster_count_never_exceeds_k() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        for k in 1..=5 {
            let c = cluster_1d(&data, k);
            assert!(c.len() <= k);
            assert_eq!(c.iter().map(|c| c.count).sum::<usize>(), 100);
        }
    }

    #[test]
    fn clusters_partition_sorted_data() {
        let data = vec![1.0, 1.1, 1.2, 50.0, 51.0, 52.0, 200.0, 201.0];
        let c = cluster_1d(&data, 3);
        assert_eq!(c.len(), 3);
        assert!(c[0].min < c[1].min && c[1].min < c[2].min);
    }
}
