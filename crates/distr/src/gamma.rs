//! Multi-stage gamma mixtures.
//!
//! The paper (Section 5.1) defines the family as
//!
//! ```text
//! f(x) = Σ_{i=1..N} w_i · g(α_i, θ_i, x − s_i),
//! g(α, θ, y) = y^{α−1} e^{−y/θ} / (Γ(α) θ^α),  0 ≤ y
//! ```
//!
//! The GDS supports this family because "actual file and usage distributions
//! have been shown to be well approximated by multi-stage gamma
//! distributions \[DI86\]".

use crate::special::{ln_gamma, reg_lower_gamma};
use crate::{uniform01, DistrError, Distribution};
use rand::RngCore;
use rand_distr::Distribution as _;
use serde::{Deserialize, Serialize};

/// Tolerance accepted when validating that mixture weights sum to one.
const WEIGHT_SUM_TOL: f64 = 1e-6;

/// One stage of a [`MultiStageGamma`] mixture: a shifted gamma
/// `s + Gamma(α, θ)` selected with probability `weight`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaStage {
    /// Mixing probability of this stage.
    pub weight: f64,
    /// Shape parameter `α > 0`.
    pub alpha: f64,
    /// Scale parameter `θ > 0`.
    pub theta: f64,
    /// Offset `s ≥ 0` added to the gamma variate.
    pub offset: f64,
}

impl GammaStage {
    /// Creates a stage after validating its parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::BadWeights`] for a non-positive weight,
    /// [`DistrError::BadShape`] for `alpha <= 0`, [`DistrError::BadScale`]
    /// for `theta <= 0`, and [`DistrError::BadOffset`] for a negative offset.
    pub fn new(weight: f64, alpha: f64, theta: f64, offset: f64) -> Result<Self, DistrError> {
        if !(weight.is_finite() && weight > 0.0) {
            return Err(DistrError::BadWeights { sum: weight });
        }
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(DistrError::BadShape { value: alpha });
        }
        if !(theta.is_finite() && theta > 0.0) {
            return Err(DistrError::BadScale { value: theta });
        }
        if !(offset.is_finite() && offset >= 0.0) {
            return Err(DistrError::BadOffset { value: offset });
        }
        Ok(Self {
            weight,
            alpha,
            theta,
            offset,
        })
    }

    /// Density of this stage alone (without the mixture weight).
    fn pdf(&self, x: f64) -> f64 {
        let y = x - self.offset;
        if y < 0.0 {
            return 0.0;
        }
        if y == 0.0 {
            // Limit at the left edge: finite only for α ≥ 1.
            return if self.alpha > 1.0 {
                0.0
            } else if self.alpha == 1.0 {
                1.0 / self.theta
            } else {
                f64::INFINITY
            };
        }
        let ln_pdf = (self.alpha - 1.0) * y.ln()
            - y / self.theta
            - ln_gamma(self.alpha)
            - self.alpha * self.theta.ln();
        ln_pdf.exp()
    }

    /// CDF of this stage alone.
    fn cdf(&self, x: f64) -> f64 {
        let y = x - self.offset;
        if y <= 0.0 {
            0.0
        } else {
            reg_lower_gamma(self.alpha, y / self.theta)
        }
    }
}

/// A multi-stage gamma mixture distribution.
///
/// # Example
///
/// ```
/// use uswg_distr::{Distribution, MultiStageGamma};
///
/// # fn main() -> Result<(), uswg_distr::DistrError> {
/// // g(1.5, 25.4, x − 12) — the middle panel of Figure 5.2.
/// let d = MultiStageGamma::new(vec![(1.0, 1.5, 25.4, 12.0)])?;
/// assert!((d.mean() - (12.0 + 1.5 * 25.4)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiStageGamma {
    stages: Vec<GammaStage>,
}

impl MultiStageGamma {
    /// Builds a mixture from `(weight, alpha, theta, offset)` tuples.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::Empty`] when no stages are supplied,
    /// [`DistrError::BadWeights`] when the weights do not sum to one within
    /// `1e-6`, and the per-stage errors of [`GammaStage::new`].
    pub fn new(stages: Vec<(f64, f64, f64, f64)>) -> Result<Self, DistrError> {
        let stages = stages
            .into_iter()
            .map(|(w, a, t, s)| GammaStage::new(w, a, t, s))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_stages(stages)
    }

    /// Builds a mixture from already-constructed stages.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::Empty`] when no stages are supplied and
    /// [`DistrError::BadWeights`] when the weights do not sum to one.
    pub fn from_stages(stages: Vec<GammaStage>) -> Result<Self, DistrError> {
        if stages.is_empty() {
            return Err(DistrError::Empty);
        }
        let sum: f64 = stages.iter().map(|s| s.weight).sum();
        if (sum - 1.0).abs() > WEIGHT_SUM_TOL {
            return Err(DistrError::BadWeights { sum });
        }
        Ok(Self { stages })
    }

    /// Builds a mixture, rescaling the weights so they sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`DistrError::Empty`] when no stages are supplied or
    /// [`DistrError::BadWeights`] when the weight sum is not positive.
    pub fn new_normalized(stages: Vec<(f64, f64, f64, f64)>) -> Result<Self, DistrError> {
        if stages.is_empty() {
            return Err(DistrError::Empty);
        }
        let sum: f64 = stages.iter().map(|&(w, _, _, _)| w).sum();
        if !(sum.is_finite() && sum > 0.0) {
            return Err(DistrError::BadWeights { sum });
        }
        Self::new(
            stages
                .into_iter()
                .map(|(w, a, t, s)| (w / sum, a, t, s))
                .collect(),
        )
    }

    /// Convenience constructor for a single-stage gamma.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`GammaStage::new`].
    pub fn single(alpha: f64, theta: f64, offset: f64) -> Result<Self, DistrError> {
        Self::new(vec![(1.0, alpha, theta, offset)])
    }

    /// The stages of the mixture.
    pub fn stages(&self) -> &[GammaStage] {
        &self.stages
    }
}

impl Distribution for MultiStageGamma {
    fn pdf(&self, x: f64) -> f64 {
        self.stages.iter().map(|s| s.weight * s.pdf(x)).sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        // The weighted sum can exceed 1 by an ulp; clamp to stay a CDF.
        self.stages
            .iter()
            .map(|s| s.weight * s.cdf(x))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.weight * (s.offset + s.alpha * s.theta))
            .sum()
    }

    fn variance(&self) -> f64 {
        // E[X²] of s + Gamma(α, θ): var = αθ², mean = s + αθ.
        let m = self.mean();
        let m2: f64 = self
            .stages
            .iter()
            .map(|s| {
                let mu = s.offset + s.alpha * s.theta;
                s.weight * (s.alpha * s.theta * s.theta + mu * mu)
            })
            .sum();
        (m2 - m * m).max(0.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u = uniform01(rng);
        let mut chosen = &self.stages[self.stages.len() - 1];
        for s in &self.stages {
            if u < s.weight {
                chosen = s;
                break;
            }
            u -= s.weight;
        }
        let gamma = rand_distr::Gamma::new(chosen.alpha, chosen.theta)
            .expect("stage parameters validated at construction");
        chosen.offset + gamma.sample(rng)
    }

    fn support_min(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.offset)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_bad_params() {
        assert_eq!(MultiStageGamma::new(vec![]), Err(DistrError::Empty));
        assert!(matches!(
            MultiStageGamma::new(vec![(1.0, 0.0, 1.0, 0.0)]),
            Err(DistrError::BadShape { .. })
        ));
        assert!(matches!(
            MultiStageGamma::new(vec![(1.0, 1.0, -1.0, 0.0)]),
            Err(DistrError::BadScale { .. })
        ));
        assert!(matches!(
            MultiStageGamma::new(vec![(0.9, 1.0, 1.0, 0.0)]),
            Err(DistrError::BadWeights { .. })
        ));
    }

    #[test]
    fn figure_5_2_middle_panel_moments() {
        let d = MultiStageGamma::single(1.5, 25.4, 12.0).unwrap();
        assert!((d.mean() - 50.1).abs() < 1e-9);
        assert!((d.variance() - 1.5 * 25.4 * 25.4).abs() < 1e-9);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Figure 5.2 bottom panel.
        let d = MultiStageGamma::new(vec![
            (0.7, 1.3, 12.3, 0.0),
            (0.2, 1.5, 12.4, 23.0),
            (0.1, 1.4, 12.3, 41.0),
        ])
        .unwrap();
        let (lo, hi) = (0.0, d.support_max());
        let n = 40_000;
        let h = (hi - lo) / n as f64;
        let mut total = 0.5 * (d.pdf(lo) + d.pdf(hi));
        for i in 1..n {
            total += d.pdf(lo + i as f64 * h);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-3, "integral = {total}");
    }

    #[test]
    fn cdf_matches_numeric_integral_of_pdf() {
        let d = MultiStageGamma::new(vec![(0.6, 2.0, 5.0, 0.0), (0.4, 3.0, 4.0, 10.0)]).unwrap();
        let n = 50_000;
        let hi = 60.0;
        let h = hi / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let a = i as f64 * h;
            acc += 0.5 * (d.pdf(a) + d.pdf(a + h)) * h;
            if (i + 1) % 10_000 == 0 {
                let x = (i + 1) as f64 * h;
                assert!(
                    (acc - d.cdf(x)).abs() < 1e-4,
                    "x={x} acc={acc} cdf={}",
                    d.cdf(x)
                );
            }
        }
    }

    #[test]
    fn gamma_shape_one_equals_exponential() {
        let g = MultiStageGamma::single(1.0, 7.0, 0.0).unwrap();
        let e = crate::PhaseTypeExp::exponential(7.0).unwrap();
        for &x in &[0.0, 1.0, 5.0, 20.0] {
            assert!((g.pdf(x) - e.pdf(x)).abs() < 1e-12);
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_moments_match_analytic() {
        let d = MultiStageGamma::new(vec![(0.7, 1.3, 12.3, 0.0), (0.3, 1.5, 12.4, 23.0)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
        assert!((m - d.mean()).abs() < 0.15, "mean {m} vs {}", d.mean());
        assert!((v - d.variance()).abs() / d.variance() < 0.05);
    }

    #[test]
    fn samples_respect_offset() {
        let d = MultiStageGamma::single(2.0, 3.0, 12.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 12.0);
        }
    }

    #[test]
    fn pdf_edge_behavior_at_offset() {
        // α > 1: density 0 at the offset; α = 1: 1/θ; α < 1: +∞.
        let above = MultiStageGamma::single(2.0, 3.0, 0.0).unwrap();
        assert_eq!(above.pdf(0.0), 0.0);
        let at = MultiStageGamma::single(1.0, 4.0, 0.0).unwrap();
        assert!((at.pdf(0.0) - 0.25).abs() < 1e-12);
        let below = MultiStageGamma::single(0.5, 3.0, 0.0).unwrap();
        assert!(below.pdf(0.0).is_infinite());
    }

    #[test]
    fn serde_round_trip() {
        let d = MultiStageGamma::new(vec![(0.7, 1.3, 12.3, 0.0), (0.3, 1.5, 12.4, 23.0)]).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: MultiStageGamma = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
