//! Special functions needed by the distribution families.
//!
//! Implemented from scratch (no external math crate): the log-gamma function
//! via the Lanczos approximation and the regularized incomplete gamma
//! functions via the classic series / continued-fraction split. Accuracy is
//! around 1e-12 relative over the parameter ranges used by workload models,
//! which is far below the statistical noise of any experiment in the paper.

use std::f64::consts::PI;

const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`
/// (values in `(0, 0.5)` are handled through the reflection formula).
///
/// # Panics
///
/// Panics if `x` is zero, negative, or not finite: the distribution families
/// in this crate only require positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1 − x) = π / sin(πx).
        (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let z = x - 1.0;
        let mut acc = LANCZOS_COEF[0];
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            acc += c / (z + i as f64);
        }
        let t = z + LANCZOS_G + 0.5;
        0.5 * (2.0 * PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// This is the CDF of a Gamma(shape = `a`, scale = 1) random variable. Uses
/// the power series for `x < a + 1` and the Lentz continued fraction for the
/// complement otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        0.0
    } else if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_upper_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_upper_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        1.0
    } else if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_continued_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)`, converging fast for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..1_000 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (sum.ln() - x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz continued-fraction evaluation of `Q(a, x)` for `x >= a + 1`.
fn gamma_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..1_000 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (h.ln() - x + a * x.ln() - ln_gamma(a)).exp()
}

/// Asymptotic Kolmogorov–Smirnov tail probability `Q_KS(λ)`.
///
/// `Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`; used to convert a KS
/// statistic into an approximate p-value. Returns 1 for tiny arguments and 0
/// for very large ones.
pub fn ks_q(lambda: f64) -> f64 {
    if lambda < 1e-8 {
        return 1.0;
    }
    let mut sign = 1.0;
    let mut sum = 0.0;
    let a = -2.0 * lambda * lambda;
    for j in 1..=100 {
        let term = sign * (a * (j * j) as f64).exp();
        sum += term;
        if term.abs() <= 1e-12 * sum.abs() || term.abs() < 1e-300 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} !~ {b}");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..15u32 {
            assert_close(ln_gamma(n as f64), fact.ln(), 1e-12);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        assert_close(ln_gamma(0.5), PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(π)/2
        assert_close(ln_gamma(1.5), (PI.sqrt() / 2.0).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.1, 0.7, 1.3, 2.9, 10.5, 42.0] {
            assert_close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_is_exponential_cdf_for_shape_one() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.0, 0.1, 1.0, 3.0, 10.0] {
            assert_close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &a in &[0.3, 1.0, 2.5, 9.0] {
            for &x in &[0.01, 0.5, 1.0, 4.0, 30.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert_close(p + q, 1.0, 1e-12);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn incomplete_gamma_known_values() {
        // P(2, 2) = 1 - e^{-2}(1 + 2) = 0.59399415...
        assert_close(
            reg_lower_gamma(2.0, 2.0),
            1.0 - (-2.0f64).exp() * 3.0,
            1e-12,
        );
        // P(3, 1) = 1 - e^{-1}(1 + 1 + 0.5)
        assert_close(
            reg_lower_gamma(3.0, 1.0),
            1.0 - (-1.0f64).exp() * 2.5,
            1e-12,
        );
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = reg_lower_gamma(2.5, x);
            assert!(p >= prev - 1e-15);
            prev = p;
        }
    }

    #[test]
    fn ks_q_limits() {
        assert_close(ks_q(0.0), 1.0, 1e-12);
        assert!(ks_q(3.0) < 1e-6);
        // Known value: Q_KS(1.0) ≈ 0.26999967...
        assert_close(ks_q(1.0), 0.269_999_67, 1e-6);
    }

    #[test]
    fn ks_q_is_monotone_decreasing() {
        let mut prev = 1.0;
        for i in 1..60 {
            let q = ks_q(i as f64 * 0.1);
            assert!(q <= prev + 1e-12);
            prev = q;
        }
    }
}
