//! Guide tables: O(1) inverse-transform sampling over CDF grids.
//!
//! Inverse-transform sampling must find the first grid index whose CDF value
//! reaches the uniform draw `p`. A binary search does that in O(log n) per
//! draw; a **guide table** (Chen & Asau 1974, the classic table-lookup
//! accelerator) precomputes, for `G` equal-probability buckets, the first
//! grid index each bucket can start from. A draw then indexes its bucket in
//! O(1) and scans forward — with `G` equal to the grid size, the expected
//! scan length is below one step, so sampling cost is constant regardless of
//! table resolution.
//!
//! The guided lookup returns **exactly** the index the binary search would
//! (the first `i` with `cdf[i] >= p`), so interpolation — and therefore every
//! sampled variate — is bit-identical to the unguided path. The equivalence
//! is enforced by unit tests here and property tests in
//! `tests/properties.rs`.

use serde::{DeError, Deserialize, Serialize, Value};

/// An equal-probability bucket index over a CDF grid.
///
/// `cuts[k]` is the first grid index `i` with `cdf[i] >= k / G`, where `G`
/// is the number of buckets (one per grid point). An empty guide (the
/// [`Default`]) is valid everywhere a guide is accepted and simply means
/// "fall back to binary search" — this keeps old serialized tables loadable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GuideTable {
    cuts: Vec<u32>,
}

/// A guide is a pure derivation of its CDF grid, and its cuts index that
/// grid — stale or hand-edited cuts would panic or silently break the
/// bit-identical guarantee. Serialized form is therefore always `null`, and
/// deserialization always yields the empty fallback (correct, binary-search
/// sampling); owners rebuild the index via their `rebuild_guide()` methods.
impl Serialize for GuideTable {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for GuideTable {
    fn from_value(_v: &Value) -> Result<Self, DeError> {
        Ok(Self::default())
    }
}

impl GuideTable {
    /// Builds the guide for a monotone non-decreasing `cdf` grid.
    ///
    /// One bucket per grid point plus a terminal cut, so the guide costs
    /// `4 × (len + 1)` bytes next to the grid's `16 × len`.
    pub fn build(cdf: &[f64]) -> Self {
        if cdf.len() < 2 || cdf.len() > u32::MAX as usize {
            return Self::default();
        }
        let g = cdf.len();
        let mut cuts = Vec::with_capacity(g + 1);
        let mut i = 0usize;
        for k in 0..=g {
            let p = k as f64 / g as f64;
            while i < g && cdf[i] < p {
                i += 1;
            }
            cuts.push(i.min(g - 1) as u32);
        }
        Self { cuts }
    }

    /// Whether this guide is the empty fallback. A valid built guide always
    /// has at least two cuts (`G + 1` with `G >= 2`), so anything shorter is
    /// treated as absent.
    pub fn is_empty(&self) -> bool {
        self.cuts.len() < 2
    }

    /// Number of buckets (0 for the empty fallback).
    pub fn len(&self) -> usize {
        self.cuts.len().saturating_sub(1)
    }

    /// Resident bytes of the bucket index.
    pub fn memory_bytes(&self) -> usize {
        self.cuts.len() * std::mem::size_of::<u32>()
    }

    /// First index `i` with `cdf[i] >= p`, via bucket lookup + forward scan.
    ///
    /// Caller must guarantee `cdf[0] < p < cdf[len - 1]` (the interpolation
    /// bracket pre-conditions) and that `cdf` is the grid the guide was
    /// built from.
    #[inline]
    pub(crate) fn first_at_or_above(&self, cdf: &[f64], p: f64) -> usize {
        let g = self.cuts.len() - 1;
        // p < 1 here, so the bucket index is within [0, g).
        let bucket = ((p * g as f64) as usize).min(g - 1);
        let mut i = self.cuts[bucket] as usize;
        // cdf[len - 1] > p bounds the scan.
        while cdf[i] < p {
            i += 1;
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unguided reference: binary search for the first `i` with
    /// `cdf[i] >= p`.
    fn reference(cdf: &[f64], p: f64) -> usize {
        let (mut lo, mut hi) = (0usize, cdf.len() - 1);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if cdf[mid] < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    fn check_all_probes(cdf: &[f64]) {
        let guide = GuideTable::build(cdf);
        let last = *cdf.last().unwrap();
        for k in 1..2000 {
            let p = k as f64 / 2000.0;
            if p <= cdf[0] || p >= last {
                continue;
            }
            assert_eq!(
                guide.first_at_or_above(cdf, p),
                reference(cdf, p),
                "p = {p}"
            );
        }
    }

    #[test]
    fn matches_binary_search_on_uniform_grid() {
        let cdf: Vec<f64> = (0..=64).map(|i| i as f64 / 64.0).collect();
        check_all_probes(&cdf);
    }

    #[test]
    fn matches_binary_search_on_skewed_grid() {
        // Exponential-ish CDF: most mass early.
        let cdf: Vec<f64> = (0..=256)
            .map(|i| 1.0 - (-(i as f64) / 20.0).exp())
            .map(|c| c / (1.0 - (-256.0f64 / 20.0).exp()))
            .collect();
        check_all_probes(&cdf);
    }

    #[test]
    fn matches_binary_search_with_plateaus() {
        let cdf = vec![0.0, 0.1, 0.1, 0.1, 0.5, 0.5, 0.9, 1.0];
        check_all_probes(&cdf);
    }

    #[test]
    fn empty_guide_for_degenerate_input() {
        assert!(GuideTable::build(&[1.0]).is_empty());
        assert_eq!(GuideTable::default().len(), 0);
    }

    #[test]
    fn memory_is_linear() {
        let cdf: Vec<f64> = (0..=999).map(|i| i as f64 / 999.0).collect();
        let g = GuideTable::build(&cdf);
        assert_eq!(g.len(), 1000);
        assert_eq!(g.memory_bytes(), 1001 * 4);
    }
}
