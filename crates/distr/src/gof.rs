//! Goodness-of-fit statistics.
//!
//! One of the paper's stated criteria is that a workload generator "be
//! amenable to statistical tests of similarity to the real workload"
//! (Section 2.2). This module provides the two classic tests used for that
//! purpose: Kolmogorov–Smirnov and Pearson's chi-square.

use crate::special::{ks_q, reg_upper_gamma};
use crate::{DistrError, Distribution};
use serde::{Deserialize, Serialize};

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsTest {
    /// The KS statistic `D = sup_x |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value for the null hypothesis that the data was drawn
    /// from the reference distribution.
    pub p_value: f64,
}

/// Result of a chi-square test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChiSquareTest {
    /// Pearson's `X² = Σ (O_i − E_i)² / E_i`.
    pub statistic: f64,
    /// Degrees of freedom used (`usable bins − 1`, after low-expected-count
    /// bins are merged).
    pub degrees_of_freedom: usize,
    /// Upper-tail p-value from the chi-square distribution.
    pub p_value: f64,
}

/// Computes the one-sample Kolmogorov–Smirnov statistic of `data` against
/// the reference distribution `dist`.
///
/// Tied samples are handled as one block: the empirical CDF jumps by the
/// whole tie weight at the tied value, so the deviation is evaluated just
/// below the block (`F(x) − i/n`) and at its top (`(i + t)/n − F(x)`) —
/// evaluating per-index inside a tie block would understate the jump.
///
/// # Errors
///
/// Returns [`DistrError::InsufficientData`] for an empty sample and
/// [`DistrError::BadTable`] for non-finite samples.
pub fn ks_statistic(data: &[f64], dist: &dyn Distribution) -> Result<KsTest, DistrError> {
    if data.is_empty() {
        return Err(DistrError::InsufficientData { needed: 1, got: 0 });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(DistrError::BadTable {
            reason: "samples must be finite".into(),
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    let mut i = 0;
    while i < sorted.len() {
        let x = sorted[i];
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == x {
            j += 1;
        }
        let f = dist.cdf(x);
        let below = i as f64 / n; // empirical CDF just below the tie block
        let at = j as f64 / n; // empirical CDF at (and above) the block
        d = d.max((f - below).abs()).max((at - f).abs());
        i = j;
    }
    let sqrt_n = n.sqrt();
    // Asymptotic p-value with the standard small-sample correction.
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    Ok(KsTest {
        statistic: d,
        p_value: ks_q(lambda),
    })
}

/// Computes the two-sample Kolmogorov–Smirnov statistic between samples
/// `a` and `b`: `D = sup_x |F_a(x) − F_b(x)|`, with the asymptotic p-value
/// using the effective size `n_a n_b / (n_a + n_b)`. Ties within and across
/// the samples are handled by evaluating both empirical CDFs only at the
/// top of each distinct-value block.
///
/// # Errors
///
/// Returns [`DistrError::InsufficientData`] when either sample is empty and
/// [`DistrError::BadTable`] for non-finite samples.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<KsTest, DistrError> {
    if a.is_empty() || b.is_empty() {
        return Err(DistrError::InsufficientData {
            needed: 1,
            got: a.len().min(b.len()),
        });
    }
    if a.iter().chain(b).any(|x| !x.is_finite()) {
        return Err(DistrError::BadTable {
            reason: "samples must be finite".into(),
        });
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() || j < sb.len() {
        // The next distinct value across both samples.
        let x = match (sa.get(i), sb.get(j)) {
            (Some(&xa), Some(&xb)) => xa.min(xb),
            (Some(&xa), None) => xa,
            (None, Some(&xb)) => xb,
            (None, None) => break,
        };
        while i < sa.len() && sa[i] == x {
            i += 1;
        }
        while j < sb.len() && sb[j] == x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = na * nb / (na + nb);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    Ok(KsTest {
        statistic: d,
        p_value: ks_q(lambda),
    })
}

/// Computes Pearson's chi-square statistic of `data` against `dist`.
///
/// Bin edges start at the reference quantiles `i/bins`, but — unlike the
/// textbook equal-probability construction — the expected count of each bin
/// is computed from actual CDF differences, so a reference distribution
/// with atoms or flat CDF stretches (where several quantiles coincide) is
/// still binned correctly. Adjacent bins are then merged until every
/// expected count reaches the classic `≥ 5` validity threshold, and the
/// degrees of freedom reflect the merged bin count.
///
/// # Errors
///
/// Returns [`DistrError::BadParameter`] when `bins < 2`,
/// [`DistrError::InsufficientData`] when the sample cannot give every
/// requested bin an expected count of 5, [`DistrError::BadTable`] for
/// non-finite samples or when merging leaves fewer than 2 usable bins
/// (every bin of positive expected mass collapsed together — the reference
/// concentrates its mass too tightly for a chi-square comparison).
pub fn chi_square(
    data: &[f64],
    dist: &dyn Distribution,
    bins: usize,
) -> Result<ChiSquareTest, DistrError> {
    if bins < 2 {
        return Err(DistrError::BadParameter {
            name: "bins",
            value: bins as f64,
        });
    }
    let n = data.len();
    if (n as f64) / (bins as f64) < 5.0 {
        return Err(DistrError::InsufficientData {
            needed: 5 * bins,
            got: n,
        });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(DistrError::BadTable {
            reason: "samples must be finite".into(),
        });
    }
    // Candidate edges at the reference quantiles. Duplicate edges (flat
    // CDF regions, atoms) are collapsed: a duplicate would describe a bin
    // of zero width and zero probability.
    let mut edges: Vec<f64> = Vec::with_capacity(bins - 1);
    for i in 1..bins {
        let q = dist.quantile(i as f64 / bins as f64);
        if edges.last().is_none_or(|&e| q > e) {
            edges.push(q);
        }
    }
    // Observed counts by binary search; expected counts from CDF
    // differences across the same edges (never the flat `n / bins`, which
    // is wrong whenever quantiles collide).
    let mut observed = vec![0u64; edges.len() + 1];
    for &x in data {
        observed[edges.partition_point(|&e| e < x)] += 1;
    }
    let mut expected = Vec::with_capacity(edges.len() + 1);
    let mut prev_cdf = 0.0;
    for &e in &edges {
        let c = dist.cdf(e);
        expected.push((c - prev_cdf).max(0.0) * n as f64);
        prev_cdf = c;
    }
    expected.push((1.0 - prev_cdf).max(0.0) * n as f64);
    // Merge adjacent bins until every expected count is ≥ 5. Zero-expected
    // bins (reference says impossible, data may disagree) merge into a
    // neighbor rather than dividing by zero.
    let mut merged: Vec<(u64, f64)> = Vec::with_capacity(expected.len());
    let mut acc_obs = 0u64;
    let mut acc_exp = 0.0f64;
    for (&o, &e) in observed.iter().zip(&expected) {
        acc_obs += o;
        acc_exp += e;
        if acc_exp >= 5.0 {
            merged.push((acc_obs, acc_exp));
            acc_obs = 0;
            acc_exp = 0.0;
        }
    }
    if acc_exp > 0.0 || acc_obs > 0 {
        // Fold the low-mass tail into the last usable bin.
        if let Some(last) = merged.last_mut() {
            last.0 += acc_obs;
            last.1 += acc_exp;
        }
    }
    if merged.len() < 2 {
        return Err(DistrError::BadTable {
            reason: "fewer than 2 usable bins after merging low-expected-count bins \
                     (reference distribution concentrates its mass too tightly)"
                .into(),
        });
    }
    debug_assert!(merged.iter().all(|&(_, e)| e >= 5.0));
    let statistic: f64 = merged
        .iter()
        .map(|&(o, e)| {
            let d = o as f64 - e;
            d * d / e
        })
        .sum();
    let dof = merged.len() - 1;
    // Upper tail of chi-square(dof): Q(dof/2, x/2).
    let p_value = reg_upper_gamma(dof as f64 / 2.0, statistic / 2.0);
    Ok(ChiSquareTest {
        statistic,
        degrees_of_freedom: dof,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, PhaseTypeExp};
    use rand::SeedableRng;

    fn draws(d: &dyn Distribution, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn ks_accepts_correct_model() {
        let d = Exponential::new(1024.0).unwrap();
        let data = draws(&d, 5_000, 7);
        let t = ks_statistic(&data, &d).unwrap();
        assert!(t.p_value > 0.01, "p = {}", t.p_value);
        assert!(t.statistic < 0.03);
    }

    #[test]
    fn ks_rejects_wrong_model() {
        let truth = Exponential::new(1024.0).unwrap();
        let wrong = Exponential::new(128.0).unwrap();
        let data = draws(&truth, 5_000, 8);
        let t = ks_statistic(&data, &wrong).unwrap();
        assert!(t.p_value < 1e-6, "p = {}", t.p_value);
    }

    #[test]
    fn ks_distinguishes_mixture_from_single() {
        let truth = PhaseTypeExp::new(vec![(0.5, 10.0, 0.0), (0.5, 10.0, 200.0)]).unwrap();
        let single = Exponential::new(truth.mean()).unwrap();
        let data = draws(&truth, 5_000, 9);
        let against_truth = ks_statistic(&data, &truth).unwrap();
        let against_single = ks_statistic(&data, &single).unwrap();
        assert!(against_truth.statistic < against_single.statistic);
    }

    #[test]
    fn ks_validates_input() {
        let d = Exponential::new(1.0).unwrap();
        assert!(ks_statistic(&[], &d).is_err());
        assert!(ks_statistic(&[f64::NAN], &d).is_err());
    }

    #[test]
    fn chi_square_accepts_correct_model() {
        let d = Exponential::new(50.0).unwrap();
        let data = draws(&d, 10_000, 10);
        let t = chi_square(&data, &d, 20).unwrap();
        assert!(t.p_value > 0.001, "p = {}", t.p_value);
        assert_eq!(t.degrees_of_freedom, 19);
    }

    #[test]
    fn chi_square_rejects_wrong_model() {
        let truth = Exponential::new(50.0).unwrap();
        let wrong = Exponential::new(10.0).unwrap();
        let data = draws(&truth, 10_000, 11);
        let t = chi_square(&data, &wrong, 20).unwrap();
        assert!(t.p_value < 1e-9);
    }

    #[test]
    fn chi_square_validates_input() {
        let d = Exponential::new(1.0).unwrap();
        let data = draws(&d, 30, 12);
        assert!(chi_square(&data, &d, 1).is_err());
        assert!(chi_square(&data, &d, 10).is_err()); // 30/10 = 3 < 5 per bin
        assert!(chi_square(&[f64::NAN; 100], &d, 2).is_err());
    }

    // ---- tied samples ---------------------------------------------------

    #[test]
    fn ks_tied_samples_analytic() {
        // Two samples both at 0.5 against Uniform(0, 1): the empirical CDF
        // jumps from 0 to 1 at 0.5 where F = 0.5, so D = 0.5 exactly.
        let u = crate::Uniform::new(0.0, 1.0).unwrap();
        let t = ks_statistic(&[0.5, 0.5], &u).unwrap();
        assert!((t.statistic - 0.5).abs() < 1e-12, "D = {}", t.statistic);

        // All eight samples tied at 0.25: D = max(F(0.25), 1 - F(0.25)) = 0.75.
        let t = ks_statistic(&[0.25; 8], &u).unwrap();
        assert!((t.statistic - 0.75).abs() < 1e-12, "D = {}", t.statistic);

        // Partial tie block: [0.1, 0.5, 0.5, 0.5, 0.9] (n = 5). At the tie
        // block the ECDF spans 1/5..4/5 around F(0.5) = 0.5, so the largest
        // deviation is |4/5 − 0.5| = 0.3 (the 0.9 sample gives |4/5 − 0.9|
        // below and |1 − 0.9| at, both smaller).
        let t = ks_statistic(&[0.1, 0.5, 0.5, 0.5, 0.9], &u).unwrap();
        assert!((t.statistic - 0.3).abs() < 1e-12, "D = {}", t.statistic);
    }

    #[test]
    fn ks_ties_do_not_change_untied_result() {
        // On tie-free data the block walk must match the classic per-index
        // formula.
        let d = Exponential::new(64.0).unwrap();
        let data = draws(&d, 1_000, 13);
        let t = ks_statistic(&data, &d).unwrap();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len() as f64;
        let mut expect = 0.0f64;
        for (i, &x) in sorted.iter().enumerate() {
            let f = d.cdf(x);
            expect = expect
                .max((f - i as f64 / n).abs())
                .max(((i + 1) as f64 / n - f).abs());
        }
        assert!((t.statistic - expect).abs() < 1e-15);
    }

    // ---- two-sample KS --------------------------------------------------

    #[test]
    fn ks_two_sample_analytic() {
        // Identical samples: D = 0.
        let t = ks_two_sample(&[1.0, 2.0, 3.0], &[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(t.statistic, 0.0);
        assert!(t.p_value > 0.99);

        // Disjoint samples: D = 1.
        let t = ks_two_sample(&[0.0, 0.0], &[1.0, 1.0]).unwrap();
        assert_eq!(t.statistic, 1.0);

        // [1, 2] vs [1, 3]: the CDFs agree at 1 (both 1/2) and diverge at 2
        // (1 vs 1/2), so D = 1/2 — and ties across samples must not double
        // count.
        let t = ks_two_sample(&[1.0, 2.0], &[1.0, 3.0]).unwrap();
        assert!((t.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_two_sample_symmetric_and_validated() {
        let a = draws(&Exponential::new(10.0).unwrap(), 400, 14);
        let b = draws(&Exponential::new(12.0).unwrap(), 300, 15);
        let ab = ks_two_sample(&a, &b).unwrap();
        let ba = ks_two_sample(&b, &a).unwrap();
        assert_eq!(ab.statistic, ba.statistic);
        assert_eq!(ab.p_value, ba.p_value);
        assert!(ks_two_sample(&[], &a).is_err());
        assert!(ks_two_sample(&a, &[]).is_err());
        assert!(ks_two_sample(&[1.0, f64::INFINITY], &a).is_err());
    }

    #[test]
    fn ks_two_sample_accepts_same_source_rejects_different() {
        let d = Exponential::new(100.0).unwrap();
        let a = draws(&d, 2_000, 16);
        let b = draws(&d, 2_000, 17);
        let same = ks_two_sample(&a, &b).unwrap();
        assert!(same.p_value > 0.01, "p = {}", same.p_value);
        let c = draws(&Exponential::new(150.0).unwrap(), 2_000, 18);
        let diff = ks_two_sample(&a, &c).unwrap();
        assert!(diff.p_value < 1e-6, "p = {}", diff.p_value);
    }

    // ---- chi-square bin handling ----------------------------------------

    /// Mixture of an atom at 0.5 (weight `atom`) and Uniform(0, 1) for the
    /// rest — a CDF with a vertical jump, which collapses several reference
    /// quantiles onto the same edge.
    #[derive(Debug)]
    struct MidAtom {
        atom: f64,
    }

    impl Distribution for MidAtom {
        fn pdf(&self, _x: f64) -> f64 {
            unreachable!("not needed by gof tests")
        }
        fn cdf(&self, x: f64) -> f64 {
            if x < 0.0 {
                0.0
            } else if x >= 1.0 {
                1.0
            } else {
                let u = (1.0 - self.atom) * x;
                if x >= 0.5 {
                    u + self.atom
                } else {
                    u
                }
            }
        }
        fn mean(&self) -> f64 {
            0.5
        }
        fn variance(&self) -> f64 {
            (1.0 - self.atom) / 12.0
        }
        fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
            unreachable!("not needed by gof tests")
        }
        fn support_max(&self) -> f64 {
            1.0
        }
        fn quantile(&self, p: f64) -> f64 {
            let w = 1.0 - self.atom;
            let lo = 0.5 * w; // CDF just below the atom
            if p <= lo {
                p / w
            } else if p <= lo + self.atom {
                0.5
            } else {
                (p - self.atom) / w
            }
        }
    }

    /// A perfect quantile sample of size `n` from `d`.
    fn quantile_sample(d: &dyn Distribution, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| d.quantile((i as f64 + 0.5) / n as f64))
            .collect()
    }

    #[test]
    fn chi_square_atom_reference_accepts_its_own_sample() {
        // 30% atom at 0.5: quantiles 0.4, 0.5, 0.6 all collapse to x = 0.5.
        // The old flat `n / bins` expected-count rule would assign mass to
        // the duplicate zero-width bins and falsely reject; CDF-difference
        // expected counts must accept a perfect sample of the mixture.
        let d = MidAtom { atom: 0.3 };
        let data = quantile_sample(&d, 100);
        let t = chi_square(&data, &d, 10).unwrap();
        assert!(t.p_value > 0.5, "p = {} (stat {})", t.p_value, t.statistic);
        assert!(t.statistic < 2.0, "stat = {}", t.statistic);
    }

    #[test]
    fn chi_square_merges_low_expected_bins() {
        // n = 60, bins = 10 over the 30% mid-atom mixture: after collapsing
        // the duplicate 0.5 edges, the bin just above the atom expects only
        // 3 samples (< 5), so it must merge with its neighbor — leaving 7
        // usable bins and dof = 6.
        let d = MidAtom { atom: 0.3 };
        let data = quantile_sample(&d, 60);
        let t = chi_square(&data, &d, 10).unwrap();
        assert_eq!(t.degrees_of_freedom, 6);
        assert!(t.p_value > 0.5, "p = {} (stat {})", t.p_value, t.statistic);
    }

    #[test]
    fn chi_square_atom_reference_rejects_wrong_sample() {
        // Merged binning must still have power: a pure uniform sample (no
        // atom) against the 30%-atom reference is strongly rejected.
        let d = MidAtom { atom: 0.3 };
        let uniform = crate::Uniform::new(0.0, 1.0).unwrap();
        let data = quantile_sample(&uniform, 200);
        let t = chi_square(&data, &d, 10).unwrap();
        assert!(t.p_value < 1e-6, "p = {}", t.p_value);
    }

    #[test]
    fn chi_square_degenerate_reference_errors_cleanly() {
        // A constant reference collapses every quantile onto one edge and
        // every expected count into one bin: no valid chi-square comparison
        // exists, so this must be a clean error — never a division by a
        // zero expected count.
        let c = crate::Constant::new(5.0).unwrap();
        let data = vec![5.0; 100];
        match chi_square(&data, &c, 10) {
            Err(DistrError::BadTable { .. }) => {}
            other => panic!("expected BadTable, got {other:?}"),
        }
    }
}
