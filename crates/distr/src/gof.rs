//! Goodness-of-fit statistics.
//!
//! One of the paper's stated criteria is that a workload generator "be
//! amenable to statistical tests of similarity to the real workload"
//! (Section 2.2). This module provides the two classic tests used for that
//! purpose: Kolmogorov–Smirnov and Pearson's chi-square.

use crate::special::{ks_q, reg_upper_gamma};
use crate::{DistrError, Distribution};

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D = sup_x |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value for the null hypothesis that the data was drawn
    /// from the reference distribution.
    pub p_value: f64,
}

/// Result of a chi-square test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareTest {
    /// Pearson's `X² = Σ (O_i − E_i)² / E_i`.
    pub statistic: f64,
    /// Degrees of freedom used (`bins − 1`).
    pub degrees_of_freedom: usize,
    /// Upper-tail p-value from the chi-square distribution.
    pub p_value: f64,
}

/// Computes the one-sample Kolmogorov–Smirnov statistic of `data` against
/// the reference distribution `dist`.
///
/// # Errors
///
/// Returns [`DistrError::InsufficientData`] for an empty sample and
/// [`DistrError::BadTable`] for non-finite samples.
pub fn ks_statistic(data: &[f64], dist: &dyn Distribution) -> Result<KsTest, DistrError> {
    if data.is_empty() {
        return Err(DistrError::InsufficientData { needed: 1, got: 0 });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(DistrError::BadTable {
            reason: "samples must be finite".into(),
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let sqrt_n = n.sqrt();
    // Asymptotic p-value with the standard small-sample correction.
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    Ok(KsTest {
        statistic: d,
        p_value: ks_q(lambda),
    })
}

/// Computes Pearson's chi-square statistic of `data` against `dist` using
/// `bins` equal-probability bins (so every expected count is `n / bins`).
///
/// # Errors
///
/// Returns [`DistrError::BadParameter`] when `bins < 2` and
/// [`DistrError::InsufficientData`] when the expected count per bin falls
/// below 5 (the usual validity threshold for the chi-square approximation).
pub fn chi_square(
    data: &[f64],
    dist: &dyn Distribution,
    bins: usize,
) -> Result<ChiSquareTest, DistrError> {
    if bins < 2 {
        return Err(DistrError::BadParameter {
            name: "bins",
            value: bins as f64,
        });
    }
    let n = data.len();
    if (n as f64) / (bins as f64) < 5.0 {
        return Err(DistrError::InsufficientData {
            needed: 5 * bins,
            got: n,
        });
    }
    // Equal-probability bin edges from the reference quantiles.
    let mut edges = Vec::with_capacity(bins - 1);
    for i in 1..bins {
        edges.push(dist.quantile(i as f64 / bins as f64));
    }
    let mut observed = vec![0usize; bins];
    for &x in data {
        let idx = edges.partition_point(|&e| e < x);
        observed[idx] += 1;
    }
    let expected = n as f64 / bins as f64;
    let statistic: f64 = observed
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = bins - 1;
    // Upper tail of chi-square(dof): Q(dof/2, x/2).
    let p_value = reg_upper_gamma(dof as f64 / 2.0, statistic / 2.0);
    Ok(ChiSquareTest {
        statistic,
        degrees_of_freedom: dof,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, PhaseTypeExp};
    use rand::SeedableRng;

    fn draws(d: &dyn Distribution, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn ks_accepts_correct_model() {
        let d = Exponential::new(1024.0).unwrap();
        let data = draws(&d, 5_000, 7);
        let t = ks_statistic(&data, &d).unwrap();
        assert!(t.p_value > 0.01, "p = {}", t.p_value);
        assert!(t.statistic < 0.03);
    }

    #[test]
    fn ks_rejects_wrong_model() {
        let truth = Exponential::new(1024.0).unwrap();
        let wrong = Exponential::new(128.0).unwrap();
        let data = draws(&truth, 5_000, 8);
        let t = ks_statistic(&data, &wrong).unwrap();
        assert!(t.p_value < 1e-6, "p = {}", t.p_value);
    }

    #[test]
    fn ks_distinguishes_mixture_from_single() {
        let truth = PhaseTypeExp::new(vec![(0.5, 10.0, 0.0), (0.5, 10.0, 200.0)]).unwrap();
        let single = Exponential::new(truth.mean()).unwrap();
        let data = draws(&truth, 5_000, 9);
        let against_truth = ks_statistic(&data, &truth).unwrap();
        let against_single = ks_statistic(&data, &single).unwrap();
        assert!(against_truth.statistic < against_single.statistic);
    }

    #[test]
    fn ks_validates_input() {
        let d = Exponential::new(1.0).unwrap();
        assert!(ks_statistic(&[], &d).is_err());
        assert!(ks_statistic(&[f64::NAN], &d).is_err());
    }

    #[test]
    fn chi_square_accepts_correct_model() {
        let d = Exponential::new(50.0).unwrap();
        let data = draws(&d, 10_000, 10);
        let t = chi_square(&data, &d, 20).unwrap();
        assert!(t.p_value > 0.001, "p = {}", t.p_value);
        assert_eq!(t.degrees_of_freedom, 19);
    }

    #[test]
    fn chi_square_rejects_wrong_model() {
        let truth = Exponential::new(50.0).unwrap();
        let wrong = Exponential::new(10.0).unwrap();
        let data = draws(&truth, 10_000, 11);
        let t = chi_square(&data, &wrong, 20).unwrap();
        assert!(t.p_value < 1e-9);
    }

    #[test]
    fn chi_square_validates_input() {
        let d = Exponential::new(1.0).unwrap();
        let data = draws(&d, 30, 12);
        assert!(chi_square(&data, &d, 1).is_err());
        assert!(chi_square(&data, &d, 10).is_err()); // 30/10 = 3 < 5 per bin
    }
}
