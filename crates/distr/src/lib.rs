//! Distribution engine for the user-oriented synthetic workload generator.
//!
//! This crate is the programmatic equivalent of the paper's *Graphic
//! Distribution Specifier* (GDS). It lets callers
//!
//! * describe usage measures with **phase-type exponential** mixtures
//!   ([`PhaseTypeExp`]), **multi-stage gamma** mixtures ([`MultiStageGamma`]),
//!   or direct **tabular** PDF/CDF values ([`PdfTable`], [`EmpiricalCdf`]);
//! * **fit** those families to empirical samples ([`fit`]);
//! * check fits with **goodness-of-fit** statistics ([`gof`]);
//! * produce the **CDF tables** ([`CdfTable`]) consumed by the File System
//!   Creator and the User Simulator for inverse-transform random variate
//!   generation; and
//! * render **ASCII density plots** ([`plot`]), the text-mode stand-in for the
//!   paper's X11 display.
//!
//! # Example
//!
//! ```
//! use uswg_distr::{Distribution, PhaseTypeExp, CdfTable};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), uswg_distr::DistrError> {
//! // f(x) = 0.4 exp(12.7, x) + 0.6 exp(18.2, x - 18)   (paper, Figure 5.1)
//! let d = PhaseTypeExp::new(vec![(0.4, 12.7, 0.0), (0.6, 18.2, 18.0)])?;
//! let table = CdfTable::from_distribution(&d, 512)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x = table.sample(&mut rng);
//! assert!(x >= 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod empirical;
mod error;
mod gamma;
mod guide;
mod phase_type;
mod simple;
mod table;

pub mod fit;
pub mod gof;
pub mod plot;
pub mod spec;
pub mod special;

pub use empirical::{EmpiricalCdf, PdfTable};
pub use error::DistrError;
pub use gamma::{GammaStage, MultiStageGamma};
pub use guide::GuideTable;
pub use phase_type::{ExpPhase, PhaseTypeExp};
pub use simple::{Constant, Exponential, Uniform};
pub use spec::DistributionSpec;
pub use table::CdfTable;

use rand::RngCore;

/// A continuous, non-negative probability distribution of a usage measure.
///
/// The paper's workload model "allows general distributions for the usage
/// measures"; this trait is the common surface over every supported family.
/// It is object-safe so that heterogeneous distributions can be stored in a
/// single workload specification.
pub trait Distribution: std::fmt::Debug + Send + Sync {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Expected value of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;

    /// Draw one random variate.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Standard deviation of the distribution.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Lower end of the support (the smallest value with non-zero density).
    fn support_min(&self) -> f64 {
        0.0
    }

    /// An upper bound `u` such that `cdf(u) >= 1 - epsilon`.
    ///
    /// Used when tabulating the distribution into a [`CdfTable`]. The default
    /// implementation brackets outward from `mean + 10 * std_dev` and is
    /// adequate for light-tailed distributions.
    fn support_max(&self) -> f64 {
        let mut hi = (self.mean() + 10.0 * self.std_dev()).max(self.support_min() + 1.0);
        for _ in 0..128 {
            if self.cdf(hi) >= 1.0 - 1e-9 {
                return hi;
            }
            hi *= 2.0;
        }
        hi
    }

    /// The quantile function `inf { x : cdf(x) >= p }`, computed by bisection.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile probability out of range"
        );
        let mut lo = self.support_min();
        let mut hi = self.support_max();
        if p <= 0.0 {
            return lo;
        }
        if p >= 1.0 {
            return hi;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Draw a uniform variate in `[0, 1)` from a dynamically-typed RNG.
///
/// Uses the top 53 bits of one `u64` draw, the standard way to fill a `f64`
/// mantissa without bias.
pub(crate) fn uniform01(rng: &mut dyn RngCore) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (rng.next_u64() >> 11) as f64 * SCALE
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform01_is_in_unit_interval() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = uniform01(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn default_quantile_inverts_cdf() {
        let d = Exponential::new(100.0).unwrap();
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-6, "p={p} x={x}");
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let d: Box<dyn Distribution> = Box::new(Exponential::new(1.0).unwrap());
        assert!(d.mean() > 0.0);
    }

    #[test]
    fn support_max_covers_tail() {
        let d = Exponential::new(5000.0).unwrap();
        assert!(d.cdf(d.support_max()) >= 1.0 - 1e-9);
    }
}
