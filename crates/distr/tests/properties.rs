//! Property-based tests of the distribution engine invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use uswg_distr::{
    CdfTable, Distribution, EmpiricalCdf, Exponential, MultiStageGamma, PhaseTypeExp,
};

/// Strategy generating valid phase-type mixtures with 1–4 phases.
fn phase_type_strategy() -> impl Strategy<Value = PhaseTypeExp> {
    prop::collection::vec((0.05f64..10.0, 0.5f64..500.0, 0.0f64..200.0), 1..5).prop_map(|raw| {
        PhaseTypeExp::new_normalized(raw).expect("weights positive by construction")
    })
}

/// Strategy generating valid multi-stage gamma mixtures with 1–4 stages.
fn gamma_strategy() -> impl Strategy<Value = MultiStageGamma> {
    prop::collection::vec(
        (0.05f64..10.0, 0.2f64..20.0, 0.5f64..100.0, 0.0f64..200.0),
        1..5,
    )
    .prop_map(|raw| MultiStageGamma::new_normalized(raw).expect("weights positive"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn phase_type_cdf_monotone_and_bounded(d in phase_type_strategy(), xs in prop::collection::vec(0.0f64..2000.0, 2..40)) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in sorted {
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn phase_type_pdf_nonnegative(d in phase_type_strategy(), x in 0.0f64..2000.0) {
        prop_assert!(d.pdf(x) >= 0.0);
    }

    #[test]
    fn phase_type_samples_within_support(d in phase_type_strategy(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= d.support_min());
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn phase_type_mean_consistent_with_quantiles(d in phase_type_strategy()) {
        // Median below mean+std and above mean-3*std (loose sanity envelope).
        let med = d.quantile(0.5);
        prop_assert!(med <= d.mean() + d.std_dev() + 1e-9);
        prop_assert!(med >= d.mean() - 3.0 * d.std_dev() - 1e-9);
    }

    #[test]
    fn gamma_cdf_monotone_and_bounded(d in gamma_strategy(), xs in prop::collection::vec(0.0f64..4000.0, 2..40)) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in sorted {
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c), "cdf({x}) = {c}");
            prop_assert!(c >= prev - 1e-9);
            prev = c;
        }
    }

    #[test]
    fn gamma_samples_within_support(d in gamma_strategy(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= d.support_min() - 1e-9);
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn gamma_variance_nonnegative(d in gamma_strategy()) {
        prop_assert!(d.variance() >= 0.0);
        prop_assert!(d.mean() >= d.support_min());
    }

    #[test]
    fn cdf_table_sampling_stays_in_support(d in phase_type_strategy(), points in 8usize..512) {
        let table = CdfTable::from_distribution(&d, points).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(points as u64);
        for _ in 0..64 {
            let x = table.sample(&mut rng);
            prop_assert!(x >= d.support_min() - 1e-9);
            prop_assert!(x <= d.support_max() + 1e-9);
        }
    }

    #[test]
    fn cdf_table_quantile_monotone(d in gamma_strategy()) {
        let table = CdfTable::from_distribution(&d, 256).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = table.quantile(i as f64 / 20.0);
            prop_assert!(q >= prev - 1e-9);
            prev = q;
        }
    }

    #[test]
    fn empirical_cdf_from_samples_brackets_data(data in prop::collection::vec(0.0f64..1e6, 2..200)) {
        let e = EmpiricalCdf::from_samples(&data).unwrap();
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(e.support_min() >= lo - 1e-9);
        prop_assert!(e.support_max() <= hi + hi.abs() * 1e-6 + 1e-6);
        prop_assert_eq!(e.cdf(hi + 1.0), 1.0);
    }

    #[test]
    fn exponential_quantile_cdf_inverse(mean in 0.1f64..1e6, p in 0.001f64..0.999) {
        let d = Exponential::new(mean).unwrap();
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn fitting_preserves_mean(data in prop::collection::vec(0.1f64..1e4, 16..200)) {
        let sample_mean = data.iter().sum::<f64>() / data.len() as f64;
        let fit = uswg_distr::fit::fit_exponential(&data).unwrap();
        prop_assert!((fit.mean() - sample_mean).abs() < 1e-6 * (1.0 + sample_mean));
        if let Ok(fit2) = uswg_distr::fit::fit_phase_type(&data, 2) {
            // Mixture of cluster means weighted by fractions equals sample mean.
            prop_assert!((fit2.mean() - sample_mean).abs() < 1e-6 * (1.0 + sample_mean));
        }
    }

    // ---- Guide-table / binary-search equivalence -------------------------
    // The O(1) guide-table path must return the *bit-identical* variate the
    // O(log n) binary search returns for the same probability, across random
    // tables of every supported construction.

    #[test]
    fn guide_matches_binary_search_on_tabulated_mixtures(
        d in gamma_strategy(),
        resolution in 8usize..2048,
        ps in prop::collection::vec(0.0f64..1.0, 1..64),
    ) {
        let table = CdfTable::from_distribution(&d, resolution).unwrap();
        for p in ps {
            let guided = table.quantile(p);
            let unguided = table.quantile_unguided(p);
            prop_assert!(
                guided.to_bits() == unguided.to_bits(),
                "p={p} resolution={resolution}: {guided} vs {unguided}"
            );
        }
    }

    #[test]
    fn guide_matches_binary_search_on_phase_type_tables(
        d in phase_type_strategy(),
        ps in prop::collection::vec(0.0f64..1.0, 1..64),
    ) {
        let table = CdfTable::from_distribution(&d, 1024).unwrap();
        for p in ps {
            prop_assert_eq!(
                table.quantile(p).to_bits(),
                table.quantile_unguided(p).to_bits()
            );
        }
    }

    #[test]
    fn guide_matches_binary_search_on_empirical_cdfs(
        data in prop::collection::vec(0.0f64..1e6, 2..300),
        ps in prop::collection::vec(0.0f64..1.0, 1..64),
    ) {
        let e = EmpiricalCdf::from_samples(&data).unwrap();
        for p in ps {
            prop_assert_eq!(
                e.table_quantile(p).to_bits(),
                e.table_quantile_unguided(p).to_bits()
            );
        }
    }

    // ---- goodness-of-fit invariants --------------------------------------

    #[test]
    fn ks_statistic_bounded_and_order_invariant(
        d in phase_type_strategy(),
        mut data in prop::collection::vec(0.0f64..2000.0, 1..200),
    ) {
        let t = uswg_distr::gof::ks_statistic(&data, &d).unwrap();
        prop_assert!((0.0..=1.0).contains(&t.statistic));
        prop_assert!((0.0..=1.0).contains(&t.p_value));
        data.reverse();
        let r = uswg_distr::gof::ks_statistic(&data, &d).unwrap();
        prop_assert_eq!(t.statistic.to_bits(), r.statistic.to_bits());
    }

    #[test]
    fn ks_tied_data_matches_duplicated_block_analysis(
        x in 0.1f64..100.0,
        ties in 2usize..50,
        mean in 0.5f64..200.0,
    ) {
        // n copies of one value against Exp(mean): D = max(F(x), 1 - F(x)).
        let d = Exponential::new(mean).unwrap();
        let data = vec![x; ties];
        let t = uswg_distr::gof::ks_statistic(&data, &d).unwrap();
        let f = d.cdf(x);
        prop_assert!((t.statistic - f.max(1.0 - f)).abs() < 1e-12);
    }

    #[test]
    fn ks_two_sample_symmetric_and_bounded(
        a in prop::collection::vec(0.0f64..1000.0, 1..100),
        b in prop::collection::vec(0.0f64..1000.0, 1..100),
    ) {
        let ab = uswg_distr::gof::ks_two_sample(&a, &b).unwrap();
        let ba = uswg_distr::gof::ks_two_sample(&b, &a).unwrap();
        prop_assert_eq!(ab.statistic.to_bits(), ba.statistic.to_bits());
        prop_assert!((0.0..=1.0).contains(&ab.statistic));
        let self_test = uswg_distr::gof::ks_two_sample(&a, &a).unwrap();
        prop_assert_eq!(self_test.statistic, 0.0);
    }

    #[test]
    fn chi_square_statistic_finite_with_valid_dof(
        mean in 1.0f64..1000.0,
        seed in any::<u64>(),
        bins in 2usize..12,
    ) {
        let d = Exponential::new(mean).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..(5 * bins * 2)).map(|_| d.sample(&mut rng)).collect();
        let t = uswg_distr::gof::chi_square(&data, &d, bins).unwrap();
        prop_assert!(t.statistic.is_finite() && t.statistic >= 0.0);
        prop_assert!(t.degrees_of_freedom >= 1 && t.degrees_of_freedom < bins);
        prop_assert!((0.0..=1.0).contains(&t.p_value));
    }

    #[test]
    fn guided_sampling_stream_equals_unguided_stream(d in gamma_strategy(), seed in any::<u64>()) {
        let table = CdfTable::from_distribution(&d, 512).unwrap();
        let mut a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..128 {
            prop_assert_eq!(
                table.sample(&mut a).to_bits(),
                table.sample_unguided(&mut b).to_bits()
            );
        }
    }
}
