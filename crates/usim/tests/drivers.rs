//! End-to-end tests of both USIM drivers on a small Table-5.2-like workload.

use uswg_distr::DistributionSpec;
use uswg_fsc::{CategorySpec, FileCatalog, FileCategory, FileSystemCreator, FillPattern, FscSpec};
use uswg_netfs::{LocalDiskModel, LocalDiskParams, NfsModel, NfsParams, OpKind};
use uswg_sim::ResourcePool;
use uswg_usim::{
    CategoryUsage, CompiledPopulation, DesDriver, DirectDriver, PopulationSpec, RunConfig,
    UserTypeSpec,
};
use uswg_vfs::{Vfs, VfsConfig};

fn build_fs(n_users: usize, seed: u64) -> (Vfs, FileCatalog) {
    let spec = FscSpec::new(vec![
        CategorySpec::new(
            FileCategory::DIR_USER_RDONLY,
            0.15,
            DistributionSpec::exponential(714.0),
        ),
        CategorySpec::new(
            FileCategory::REG_USER_RDONLY,
            0.45,
            DistributionSpec::exponential(2608.0),
        ),
        CategorySpec::new(
            FileCategory::REG_USER_RDWRT,
            0.15,
            DistributionSpec::exponential(17431.0),
        ),
        CategorySpec::new(
            FileCategory::REG_OTHER_RDONLY,
            0.25,
            DistributionSpec::exponential(31347.0),
        ),
    ])
    .unwrap()
    .with_files_per_user(12)
    .unwrap()
    .with_shared_files(20)
    .unwrap()
    .with_fill(FillPattern::Sparse);
    let creator = FileSystemCreator::new(spec);
    let mut vfs = Vfs::new(VfsConfig::default());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let catalog = creator.build(&mut vfs, n_users, &mut rng).unwrap();
    (vfs, catalog)
}

fn population(think_us: f64) -> PopulationSpec {
    let utype = UserTypeSpec::new(
        "test user",
        if think_us == 0.0 {
            DistributionSpec::constant(0.0)
        } else {
            DistributionSpec::exponential(think_us)
        },
        DistributionSpec::exponential(1024.0),
        vec![
            CategoryUsage::exponential(FileCategory::DIR_USER_RDONLY, 3.128, 808.0, 2.9, 0.69),
            CategoryUsage::exponential(FileCategory::REG_USER_RDONLY, 1.42, 2608.0, 3.0, 1.0),
            CategoryUsage::exponential(FileCategory::REG_USER_RDWRT, 3.50, 19860.0, 1.5, 0.46),
            CategoryUsage::exponential(FileCategory::REG_USER_NEW, 2.36, 11438.0, 2.0, 0.40),
            CategoryUsage::exponential(FileCategory::REG_USER_TEMP, 2.00, 9233.0, 2.0, 0.59),
            CategoryUsage::exponential(FileCategory::REG_OTHER_RDONLY, 0.75, 53965.0, 1.5, 0.53),
        ],
    );
    PopulationSpec::single(utype).unwrap()
}

#[test]
fn direct_driver_produces_sessions_and_ops() {
    let (mut vfs, catalog) = build_fs(2, 1);
    let pop = CompiledPopulation::compile(&population(0.0), 512).unwrap();
    let config = RunConfig::default()
        .with_users(2)
        .with_sessions(5)
        .with_seed(7);
    let log = DirectDriver::new()
        .run(&mut vfs, &catalog, &pop, &config)
        .unwrap();

    assert_eq!(log.sessions().len(), 10);
    assert!(!log.ops().is_empty());
    // Session metrics add up against the op stream.
    let total_ops: u64 = log.sessions().iter().map(|s| s.ops).sum();
    assert_eq!(total_ops as usize, log.ops().len());
    let read_bytes: u64 = log
        .ops()
        .iter()
        .filter(|o| o.op == OpKind::Read)
        .map(|o| o.bytes)
        .sum();
    let session_reads: u64 = log.sessions().iter().map(|s| s.bytes_read).sum();
    assert_eq!(read_bytes, session_reads);
}

#[test]
fn op_stream_respects_logical_constraints() {
    let (mut vfs, catalog) = build_fs(1, 2);
    let pop = CompiledPopulation::compile(&population(0.0), 512).unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(3)
        .with_seed(3);
    let log = DirectDriver::new()
        .run(&mut vfs, &catalog, &pop, &config)
        .unwrap();

    // Per (session, ino): open/creat before any read/write; close after.
    // A file may be referenced by several concurrent tasks in one session
    // (catalog selection is with replacement), so track an open *count*.
    use std::collections::HashMap;
    let mut open_count: HashMap<(u32, u64), i64> = HashMap::new();
    for op in log.ops() {
        let key = (op.session, op.ino);
        match op.op {
            OpKind::Open | OpKind::Create => {
                *open_count.entry(key).or_insert(0) += 1;
            }
            OpKind::Read | OpKind::Write | OpKind::Seek => {
                // DIR tasks read via stat+readdir and never open.
                let is_dir = op.category.file_type == uswg_fsc::FileType::Dir;
                if !is_dir {
                    assert!(
                        open_count.get(&key).copied().unwrap_or(0) > 0,
                        "I/O before open: {op:?}"
                    );
                }
            }
            OpKind::Close => {
                let c = open_count.get_mut(&key).expect("close without open");
                assert!(*c > 0, "close without open: {op:?}");
                *c -= 1;
            }
            OpKind::Unlink => {
                // TEMP files unlink only after their own close.
                assert_eq!(
                    open_count.get(&key).copied().unwrap_or(0),
                    0,
                    "unlink before close: {op:?}"
                );
            }
            _ => {}
        }
    }
    // Everything opened was eventually closed.
    assert!(
        open_count.values().all(|&c| c == 0),
        "dangling opens at logout"
    );
}

#[test]
fn temp_files_do_not_accumulate() {
    let (mut vfs, catalog) = build_fs(1, 3);
    let before = vfs.statfs().used_inodes;
    let utype = UserTypeSpec::new(
        "temp-only",
        DistributionSpec::constant(0.0),
        DistributionSpec::exponential(1024.0),
        vec![CategoryUsage::exponential(
            FileCategory::REG_USER_TEMP,
            1.0,
            4096.0,
            3.0,
            1.0,
        )],
    );
    let pop = CompiledPopulation::compile(&PopulationSpec::single(utype).unwrap(), 256).unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(10)
        .with_seed(11);
    let log = DirectDriver::new()
        .run(&mut vfs, &catalog, &pop, &config)
        .unwrap();
    let creates = log.ops().iter().filter(|o| o.op == OpKind::Create).count();
    let unlinks = log.ops().iter().filter(|o| o.op == OpKind::Unlink).count();
    assert!(creates > 0, "temp workload must create files");
    assert_eq!(creates, unlinks, "every temp file is deleted");
    assert_eq!(vfs.statfs().used_inodes, before, "no inode leak");
}

#[test]
fn des_driver_measures_response_times() {
    let (vfs, catalog) = build_fs(2, 4);
    let pop = CompiledPopulation::compile(&population(5000.0), 512).unwrap();
    let mut pool = ResourcePool::new();
    let model = Box::new(NfsModel::new(&mut pool, NfsParams::default()));
    let config = RunConfig::default()
        .with_users(2)
        .with_sessions(3)
        .with_seed(5);
    let report = DesDriver::new()
        .run(vfs, catalog, &pop, model, pool, &config)
        .unwrap();

    assert_eq!(report.model, "nfs");
    assert_eq!(report.log.sessions().len(), 6);
    assert!(report.events > 0);
    assert!(report.duration.micros() > 0);
    // Remote data ops must cost at least the uncontended NFS path.
    let min_read = report
        .log
        .ops()
        .iter()
        .filter(|o| o.op == OpKind::Read && o.bytes > 0)
        .map(|o| o.response)
        .min()
        .expect("some reads happen");
    assert!(
        min_read > 1_000,
        "NFS read under 1 ms is impossible: {min_read}"
    );
    // Resources actually served jobs.
    let disk = report
        .resources
        .iter()
        .find(|(name, _)| name == "nfs.server_disk")
        .expect("disk resource");
    assert!(disk.1.jobs > 0);
}

#[test]
fn des_contention_raises_response_times() {
    let run = |n_users| {
        let (vfs, catalog) = build_fs(n_users, 6);
        let pop = CompiledPopulation::compile(&population(0.0), 512).unwrap();
        let mut pool = ResourcePool::new();
        let model = Box::new(NfsModel::new(&mut pool, NfsParams::default()));
        let config = RunConfig {
            n_users,
            sessions_per_user: 4,
            seed: 21,
            record_ops: true,
            cdf_resolution: 512,
            ..RunConfig::default()
        };
        let report = DesDriver::new()
            .run(vfs, catalog, &pop, model, pool, &config)
            .unwrap();
        let total: u64 = report.log.ops().iter().map(|o| o.response).sum();
        total as f64 / report.log.ops().len() as f64
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four > 1.5 * one,
        "4 zero-think users must contend: {four:.0} vs {one:.0} µs"
    );
}

#[test]
fn des_and_direct_semantics_agree() {
    // The same seed produces the same op stream regardless of driver,
    // because op generation only consumes the per-user RNG.
    let (mut vfs1, catalog1) = build_fs(1, 8);
    let pop = CompiledPopulation::compile(&population(0.0), 512).unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(2)
        .with_seed(9);
    let direct = DirectDriver::new()
        .run(&mut vfs1, &catalog1, &pop, &config)
        .unwrap();

    let (vfs2, catalog2) = build_fs(1, 8);
    let mut pool = ResourcePool::new();
    let model = Box::new(LocalDiskModel::new(&mut pool, LocalDiskParams::default()));
    let des = DesDriver::new()
        .run(vfs2, catalog2, &pop, model, pool, &config)
        .unwrap();

    let seq_direct: Vec<(OpKind, u64)> = direct.ops().iter().map(|o| (o.op, o.bytes)).collect();
    let seq_des: Vec<(OpKind, u64)> = des.log.ops().iter().map(|o| (o.op, o.bytes)).collect();
    assert_eq!(seq_direct, seq_des);
}

#[test]
fn log_round_trips_through_json() {
    let (mut vfs, catalog) = build_fs(1, 10);
    let pop = CompiledPopulation::compile(&population(0.0), 256).unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(1)
        .with_seed(13);
    let log = DirectDriver::new()
        .run(&mut vfs, &catalog, &pop, &config)
        .unwrap();
    let json = log.to_json().unwrap();
    let back = uswg_usim::UsageLog::from_json(&json).unwrap();
    assert_eq!(back.ops().len(), log.ops().len());
    assert_eq!(back.sessions().len(), log.sessions().len());
}

#[test]
fn des_driver_honours_a_pre_sealed_weighted_catalog() {
    // A caller who sealed the catalog with a weighted popularity policy
    // must see those weights in the simulated run: the driver seals only
    // *unsealed* catalogs (uniform), it never re-seals over the caller's
    // policy. A heavily skewed Zipf pick stream touches a measurably
    // different set of shared files than the uniform stream.
    let run = |weighted: bool| {
        let (vfs, mut catalog) = build_fs(1, 7);
        if weighted {
            catalog.seal_with(uswg_fsc::FilePopularity::Zipf { exponent: 3.0 });
        }
        let pop = CompiledPopulation::compile(&population(0.0), 256).unwrap();
        let mut pool = ResourcePool::new();
        let model = Box::new(LocalDiskModel::new(&mut pool, LocalDiskParams::default()));
        let config = RunConfig::default()
            .with_users(1)
            .with_sessions(6)
            .with_seed(9);
        let report = DesDriver::new()
            .run(vfs, catalog, &pop, model, pool, &config)
            .unwrap();
        report.log.ops().iter().map(|o| o.ino).collect::<Vec<u64>>()
    };
    let uniform = run(false);
    let zipf = run(true);
    assert_ne!(
        uniform, zipf,
        "a Zipf-sealed catalog must change which files the run touches"
    );
    // And the weighted run is still deterministic.
    assert_eq!(run(true), run(true));
}

#[test]
fn deterministic_given_seed() {
    let run = |seed| {
        let (mut vfs, catalog) = build_fs(2, 42);
        let pop = CompiledPopulation::compile(&population(0.0), 256).unwrap();
        let config = RunConfig::default()
            .with_users(2)
            .with_sessions(3)
            .with_seed(seed);
        let log = DirectDriver::new()
            .run(&mut vfs, &catalog, &pop, &config)
            .unwrap();
        log.ops()
            .iter()
            .map(|o| (o.user, o.op, o.bytes, o.ino))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

#[test]
fn record_ops_off_still_counts_sessions() {
    let (mut vfs, catalog) = build_fs(1, 11);
    let pop = CompiledPopulation::compile(&population(0.0), 256).unwrap();
    let mut config = RunConfig::default()
        .with_users(1)
        .with_sessions(4)
        .with_seed(15);
    config.record_ops = false;
    let log = DirectDriver::new()
        .run(&mut vfs, &catalog, &pop, &config)
        .unwrap();
    assert!(log.ops().is_empty());
    assert_eq!(log.sessions().len(), 4);
    assert!(log.sessions().iter().any(|s| s.ops > 0));
}

#[test]
fn summary_sink_matches_collected_log() {
    use uswg_usim::SummarySink;

    let config = RunConfig::default()
        .with_users(2)
        .with_sessions(3)
        .with_seed(21);
    let pop = CompiledPopulation::compile(&population(2000.0), 512).unwrap();

    // Collected path.
    let (vfs, catalog) = build_fs(2, 9);
    let mut pool = ResourcePool::new();
    let model = Box::new(NfsModel::new(&mut pool, NfsParams::default()));
    let report = DesDriver::new()
        .run(vfs, catalog, &pop, model, pool, &config)
        .unwrap();

    // Streaming path: same seed, fresh world, SummarySink instead of a log.
    let (vfs, catalog) = build_fs(2, 9);
    let mut pool = ResourcePool::new();
    let model = Box::new(NfsModel::new(&mut pool, NfsParams::default()));
    let (sink, stats) = DesDriver::new()
        .run_with_sink(vfs, catalog, &pop, model, pool, &config, SummarySink::new())
        .unwrap();

    // The record streams are identical, so the streamed aggregates must
    // equal the same aggregates computed from the materialized log.
    assert_eq!(stats.events, report.events);
    assert_eq!(stats.duration, report.duration);
    assert_eq!(sink.ops as usize, report.log.ops().len());
    assert_eq!(sink.sessions as usize, report.log.sessions().len());
    let log_total: u64 = report.log.ops().iter().map(|o| o.response).sum();
    assert_eq!(sink.total_response, log_total);
    let log_data_bytes: u64 = report
        .log
        .ops()
        .iter()
        .filter(|o| o.op.is_data() && o.bytes > 0)
        .map(|o| o.bytes)
        .sum();
    assert_eq!(sink.data_bytes, log_data_bytes);
    assert!(sink.response_per_byte() > 0.0);
}

#[test]
fn expected_ops_estimate_is_a_sane_capacity_hint() {
    let pop = CompiledPopulation::compile(&population(0.0), 256).unwrap();
    let est = pop.types()[0].expected_ops_per_session();
    assert!(est > 0.0, "estimate must be positive, got {est}");

    // Compare against an actual run: the hint should be the right order of
    // magnitude (it guides Vec pre-sizing, nothing else).
    let (mut vfs, catalog) = build_fs(1, 9);
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(8)
        .with_seed(3);
    let log = DirectDriver::new()
        .run(&mut vfs, &catalog, &pop, &config)
        .unwrap();
    let actual = log.ops().len() as f64 / 8.0;
    assert!(
        est > actual / 20.0 && est < actual * 20.0,
        "estimate {est} vs actual {actual} ops/session"
    );
}

#[test]
fn spill_sink_through_des_driver_is_lossless() {
    use uswg_usim::{read_spill, SpillSink};

    let config = RunConfig::default()
        .with_users(2)
        .with_sessions(3)
        .with_seed(77);
    let pop = CompiledPopulation::compile(&population(2000.0), 512).unwrap();

    // Collected path: the in-memory log.
    let (vfs, catalog) = build_fs(2, 9);
    let mut pool = ResourcePool::new();
    let model = Box::new(NfsModel::new(&mut pool, NfsParams::default()));
    let report = DesDriver::new()
        .run(vfs, catalog, &pop, model, pool, &config)
        .unwrap();

    // Spilled path: same seed, records stream through the columnar sink
    // into a byte buffer (a stand-in for the on-disk file).
    let (vfs, catalog) = build_fs(2, 9);
    let mut pool = ResourcePool::new();
    let model = Box::new(NfsModel::new(&mut pool, NfsParams::default()));
    let sink = SpillSink::new(Vec::new()).unwrap();
    let (sink, stats) = DesDriver::new()
        .run_with_sink(vfs, catalog, &pop, model, pool, &config, sink)
        .unwrap();
    assert_eq!(stats.events, report.events);

    // Reading the spill back reconstructs the exact log the collected run
    // materialized: the full-fidelity path survives beyond RAM losslessly.
    let bytes = sink.finish().unwrap();
    let spilled = read_spill(bytes.as_slice()).unwrap();
    assert_eq!(spilled.ops().len(), report.log.ops().len());
    assert_eq!(spilled.sessions().len(), report.log.sessions().len());
    assert_eq!(
        spilled.to_json().unwrap(),
        report.log.to_json().unwrap(),
        "spilled stream must reconstruct the identical usage log"
    );
}
