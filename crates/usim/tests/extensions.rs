//! Tests of the Section 6.2 / 4.2 extensions: random access, Markov phase
//! behaviour, diurnal inter-login times and inter-session gaps.

use uswg_distr::DistributionSpec;
use uswg_fsc::{CategorySpec, FileCatalog, FileCategory, FileSystemCreator, FillPattern, FscSpec};
use uswg_netfs::OpKind;
use uswg_usim::{
    AccessPattern, CategoryUsage, CompiledPopulation, DesDriver, DirectDriver, DiurnalProfile,
    PhaseModel, PopulationSpec, RunConfig, UserTypeSpec,
};
use uswg_vfs::{Vfs, VfsConfig};

fn build_fs(n_users: usize, seed: u64) -> (Vfs, FileCatalog) {
    let spec = FscSpec::new(vec![CategorySpec::new(
        FileCategory::REG_USER_RDONLY,
        1.0,
        DistributionSpec::exponential(20_000.0),
    )])
    .unwrap()
    .with_files_per_user(10)
    .unwrap()
    .with_shared_files(10)
    .unwrap()
    .with_fill(FillPattern::Sparse);
    let creator = FileSystemCreator::new(spec);
    let mut vfs = Vfs::new(VfsConfig::default());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let catalog = creator.build(&mut vfs, n_users, &mut rng).unwrap();
    (vfs, catalog)
}

fn rdonly_user(pattern: AccessPattern) -> UserTypeSpec {
    UserTypeSpec::new(
        "reader",
        DistributionSpec::constant(0.0),
        DistributionSpec::exponential(1_024.0),
        vec![
            CategoryUsage::exponential(FileCategory::REG_USER_RDONLY, 1.5, 20_000.0, 3.0, 1.0)
                .with_access_pattern(pattern),
        ],
    )
}

#[test]
fn random_access_interleaves_seeks() {
    let (mut vfs, catalog) = build_fs(1, 1);
    let pop = CompiledPopulation::compile(
        &PopulationSpec::single(rdonly_user(AccessPattern::Random)).unwrap(),
        256,
    )
    .unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(3)
        .with_seed(5);
    let log = DirectDriver::new()
        .run(&mut vfs, &catalog, &pop, &config)
        .unwrap();
    let seeks = log.ops().iter().filter(|o| o.op == OpKind::Seek).count();
    let reads = log.ops().iter().filter(|o| o.op == OpKind::Read).count();
    assert!(reads > 10);
    // Direct access: roughly one seek per read (within rounding at task
    // boundaries), far more than sequential wraparound would produce.
    assert!(
        seeks as f64 > 0.8 * reads as f64,
        "seeks {seeks} vs reads {reads}"
    );
}

#[test]
fn sequential_access_seeks_rarely() {
    let (mut vfs, catalog) = build_fs(1, 1);
    let pop = CompiledPopulation::compile(
        &PopulationSpec::single(rdonly_user(AccessPattern::Sequential)).unwrap(),
        256,
    )
    .unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(3)
        .with_seed(5);
    let log = DirectDriver::new()
        .run(&mut vfs, &catalog, &pop, &config)
        .unwrap();
    let seeks = log.ops().iter().filter(|o| o.op == OpKind::Seek).count();
    let reads = log.ops().iter().filter(|o| o.op == OpKind::Read).count();
    // Sequential: only wraparound seeks (~1 per whole-file pass).
    assert!(
        (seeks as f64) < 0.2 * reads as f64,
        "seeks {seeks} vs reads {reads}"
    );
}

#[test]
fn random_access_offsets_are_scattered() {
    let (mut vfs, catalog) = build_fs(1, 2);
    let pop = CompiledPopulation::compile(
        &PopulationSpec::single(rdonly_user(AccessPattern::Random)).unwrap(),
        256,
    )
    .unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(2)
        .with_seed(6);
    let log = DirectDriver::new()
        .run(&mut vfs, &catalog, &pop, &config)
        .unwrap();
    // Reads on one file must NOT be monotone in offset.
    use std::collections::HashMap;
    let mut offsets: HashMap<u64, Vec<u64>> = HashMap::new();
    // Offsets aren't recorded in OpRecord; infer scatter from read sizes
    // clamped at EOF: random clamping produces high size variance relative
    // to sequential runs with the same access distribution. Simpler proxy:
    // the seek/read interleave already checked; here verify reads still
    // return data (no EOF storms).
    let zero_reads = log
        .ops()
        .iter()
        .filter(|o| o.op == OpKind::Read && o.bytes == 0)
        .count();
    let reads = log.ops().iter().filter(|o| o.op == OpKind::Read).count();
    assert!(
        zero_reads * 10 < reads.max(1),
        "random reads should rarely hit EOF: {zero_reads}/{reads}"
    );
    let _ = &mut offsets;
}

#[test]
fn phase_model_stretches_session_durations() {
    // A CPU-bound phase with huge think scale must lengthen sessions
    // relative to the stationary model.
    let run = |phases: Option<PhaseModel>| {
        let (vfs, catalog) = build_fs(1, 3);
        let mut user = rdonly_user(AccessPattern::Sequential);
        user.think_time = DistributionSpec::exponential(1_000.0);
        if let Some(p) = phases {
            user = user.with_phases(p);
        }
        let pop = CompiledPopulation::compile(&PopulationSpec::single(user).unwrap(), 256).unwrap();
        let config = RunConfig::default()
            .with_users(1)
            .with_sessions(4)
            .with_seed(9);
        let mut pool = uswg_sim::ResourcePool::new();
        let model = Box::new(uswg_netfs::LocalDiskModel::new(
            &mut pool,
            uswg_netfs::LocalDiskParams::default(),
        ));
        let report = DesDriver::new()
            .run(vfs, catalog, &pop, model, pool, &config)
            .unwrap();
        report.duration.micros()
    };
    let stationary = run(None);
    let phased = run(Some(PhaseModel::io_cpu(1.0, 20.0, 0.9).unwrap()));
    assert!(
        phased > 2 * stationary,
        "CPU-bound phases must stretch runs: {phased} vs {stationary}"
    );
}

#[test]
fn inter_session_gaps_appear_in_timeline() {
    let (vfs, catalog) = build_fs(1, 4);
    let user = rdonly_user(AccessPattern::Sequential)
        .with_inter_session_time(DistributionSpec::constant(5_000_000.0)); // 5 s
    let pop = CompiledPopulation::compile(&PopulationSpec::single(user).unwrap(), 256).unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(3)
        .with_seed(11);
    let mut pool = uswg_sim::ResourcePool::new();
    let model = Box::new(uswg_netfs::LocalDiskModel::new(
        &mut pool,
        uswg_netfs::LocalDiskParams::default(),
    ));
    let report = DesDriver::new()
        .run(vfs, catalog, &pop, model, pool, &config)
        .unwrap();
    let sessions = report.log.sessions();
    assert_eq!(sessions.len(), 3);
    for pair in sessions.windows(2) {
        let gap = pair[1].start - pair[0].end;
        assert!(
            gap >= 5_000_000,
            "logout→login gap must be ≥ 5 s, got {gap} µs"
        );
    }
}

#[test]
fn diurnal_profile_modulates_gaps() {
    // Hour 0 has factor 6 in the university profile; a constant 1-minute
    // base gap becomes 6 minutes.
    let (vfs, catalog) = build_fs(1, 5);
    let user = rdonly_user(AccessPattern::Sequential)
        .with_inter_session_time(DistributionSpec::constant(60_000_000.0))
        .with_diurnal(DiurnalProfile::university_lab());
    let pop = CompiledPopulation::compile(&PopulationSpec::single(user).unwrap(), 256).unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(2)
        .with_seed(13);
    let mut pool = uswg_sim::ResourcePool::new();
    let model = Box::new(uswg_netfs::LocalDiskModel::new(
        &mut pool,
        uswg_netfs::LocalDiskParams::default(),
    ));
    let report = DesDriver::new()
        .run(vfs, catalog, &pop, model, pool, &config)
        .unwrap();
    let sessions = report.log.sessions();
    let gap = sessions[1].start - sessions[0].end;
    assert!(
        (gap as i64 - 360_000_000).abs() < 1_000,
        "hour-0 gap should be 6 × 60 s, got {gap} µs"
    );
}

#[test]
fn extended_spec_serde_round_trips() {
    let user = rdonly_user(AccessPattern::Random)
        .with_inter_session_time(DistributionSpec::exponential(1_000_000.0))
        .with_phases(PhaseModel::io_cpu(0.3, 4.0, 0.85).unwrap())
        .with_diurnal(DiurnalProfile::university_lab());
    let pop = PopulationSpec::single(user).unwrap();
    let json = serde_json::to_string(&pop).unwrap();
    let back: PopulationSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(pop, back);
    // Old-style JSON without the new fields still parses (serde defaults).
    let legacy = r#"{
        "types": [[{
            "name": "legacy",
            "think_time": {"family": "constant", "value": 0.0},
            "access_size": {"family": "exponential", "mean": 1024.0},
            "categories": [{
                "category": {"file_type": "Reg", "owner": "User", "usage": "ReadOnly"},
                "access_per_byte": 1.0,
                "file_size": {"family": "exponential", "mean": 1000.0},
                "files": {"family": "exponential", "mean": 2.0},
                "pct_users": 1.0
            }]
        }, 1.0]]
    }"#;
    let parsed: PopulationSpec = serde_json::from_str(legacy).unwrap();
    assert_eq!(
        parsed.types()[0].0.categories[0].access_pattern,
        AccessPattern::Sequential
    );
    assert!(parsed.types()[0].0.phases.is_none());
}

#[test]
fn drivers_still_agree_with_extensions_enabled() {
    // The RNG-parity property must survive phases + inter-session gaps.
    let user = rdonly_user(AccessPattern::Random)
        .with_inter_session_time(DistributionSpec::exponential(100_000.0))
        .with_phases(PhaseModel::io_cpu(0.5, 2.0, 0.8).unwrap());
    let pop = CompiledPopulation::compile(&PopulationSpec::single(user).unwrap(), 256).unwrap();
    let config = RunConfig::default()
        .with_users(1)
        .with_sessions(3)
        .with_seed(17);

    let (mut vfs1, catalog1) = build_fs(1, 6);
    let direct = DirectDriver::new()
        .run(&mut vfs1, &catalog1, &pop, &config)
        .unwrap();

    let (vfs2, catalog2) = build_fs(1, 6);
    let mut pool = uswg_sim::ResourcePool::new();
    let model = Box::new(uswg_netfs::LocalDiskModel::new(
        &mut pool,
        uswg_netfs::LocalDiskParams::default(),
    ));
    let des = DesDriver::new()
        .run(vfs2, catalog2, &pop, model, pool, &config)
        .unwrap();

    let a: Vec<(OpKind, u64)> = direct.ops().iter().map(|o| (o.op, o.bytes)).collect();
    let b: Vec<(OpKind, u64)> = des.log.ops().iter().map(|o| (o.op, o.bytes)).collect();
    assert_eq!(a, b);
}
