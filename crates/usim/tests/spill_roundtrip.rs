//! Property suite for the spill-to-disk sink: any op/session stream —
//! arbitrary field values, arbitrary interleaving, any length relative to
//! the frame size, under **either codec** (v1 raw, v2 compressed) — must
//! survive the disk round trip byte-identically (compared through the
//! serialized JSON form, the on-disk "usage log file" of the paper), both
//! through the collecting `read_spill` and the streaming `SpillReader`.
//!
//! The robustness half: truncated (at any byte), bit-flipped and
//! wrong-magic files must come back as clean `io::Error`s — no panics and,
//! for the checksummed v2 format, no silently different records.

use proptest::prelude::*;
use std::io::Cursor;
use uswg_fsc::{FileCategory, FileType, Owner, UsageClass};
use uswg_netfs::OpKind;
use uswg_usim::{
    read_spill, FrameIndex, LogSink, OpRecord, SessionRecord, SpillCodec, SpillReader, SpillRecord,
    SpillSink, UsageLog, FRAME_CAP,
};

/// Bytes the index footer adds after the end marker: the fixed header
/// (8-byte magic + 4-byte count + 4-byte CRC), one 29-byte entry per
/// frame, and the 12-byte trailer. Mirrors the format spec; the footer
/// round-trip property below checks the entries themselves.
fn footer_bytes(frames: usize) -> usize {
    (8 + 4 + 4) + 29 * frames + 12
}

fn arb_category() -> impl Strategy<Value = FileCategory> {
    (0usize..3, 0usize..2, 0usize..4).prop_map(|(t, o, u)| FileCategory {
        file_type: [FileType::Dir, FileType::Reg, FileType::Notes][t],
        owner: [Owner::User, Owner::Other][o],
        usage: [
            UsageClass::ReadOnly,
            UsageClass::New,
            UsageClass::ReadWrite,
            UsageClass::Temp,
        ][u],
    })
}

fn arb_op() -> impl Strategy<Value = OpRecord> {
    (
        any::<u64>(),
        any::<u32>(),
        0usize..8,
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        arb_category(),
        0usize..10_000,
    )
        .prop_map(
            |(at, session, op, ino, (bytes, file_size, response, outcome), category, user)| {
                // Most streams are fault-free; fold the fault outcome out
                // of one u64 so frames mix the plain and fault-outcome
                // tags across the generated interleavings.
                OpRecord {
                    at,
                    user,
                    session,
                    op: OpKind::ALL[op],
                    ino,
                    bytes,
                    file_size,
                    response,
                    category,
                    retries: if outcome % 3 == 0 {
                        (outcome >> 32) as u32
                    } else {
                        0
                    },
                    aborted: outcome % 5 == 0,
                }
            },
        )
}

fn arb_session() -> impl Strategy<Value = SessionRecord> {
    (
        0usize..10_000,
        0usize..8,
        any::<u32>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(user, user_type, session, (start, end, ops, files_referenced), tail)| {
                let (file_bytes_referenced, bytes_read, bytes_written, total_response) = tail;
                SessionRecord {
                    user,
                    user_type,
                    session,
                    start,
                    end,
                    ops,
                    files_referenced,
                    file_bytes_referenced,
                    bytes_accessed: bytes_read.wrapping_add(bytes_written),
                    bytes_read,
                    bytes_written,
                    total_response,
                }
            },
        )
}

fn arb_codec() -> impl Strategy<Value = SpillCodec> {
    prop_oneof![Just(SpillCodec::Raw), Just(SpillCodec::Compressed)]
}

/// Writes an interleaved record stream under `codec` with the given frame
/// capacity; returns the file bytes and the log the stream described.
fn spill_stream(
    records: &[Result<OpRecord, SessionRecord>],
    codec: SpillCodec,
    frame_cap: usize,
) -> (Vec<u8>, UsageLog) {
    let mut sink = SpillSink::with_options(Vec::new(), codec, frame_cap).unwrap();
    let mut expected = UsageLog::new();
    for record in records {
        match record {
            Ok(op) => {
                sink.record_op(op);
                expected.push_op(*op);
            }
            Err(session) => {
                sink.record_session(session);
                expected.push_session(*session);
            }
        }
    }
    (sink.finish().unwrap(), expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite oracle: SpillSink → disk bytes → read_spill reproduces the
    /// UsageLog byte-identically, for arbitrary record interleavings,
    /// under both codecs and any frame capacity (tiny caps cross many
    /// frame boundaries; the empty stream is in range too).
    #[test]
    fn spill_round_trips_any_stream(
        records in prop::collection::vec(
            prop_oneof![arb_op().prop_map(Ok), arb_session().prop_map(Err)],
            0..300,
        ),
        codec in arb_codec(),
        frame_cap in 1usize..48,
    ) {
        let (bytes, expected) = spill_stream(&records, codec, frame_cap);
        let back = read_spill(bytes.as_slice()).unwrap();
        prop_assert_eq!(back.to_json().unwrap(), expected.to_json().unwrap());
    }

    /// The streaming `SpillReader` yields exactly the records `read_spill`
    /// collects, in the same per-kind order, without a `UsageLog`.
    #[test]
    fn streaming_reader_matches_collecting_reader(
        records in prop::collection::vec(
            prop_oneof![arb_op().prop_map(Ok), arb_session().prop_map(Err)],
            0..200,
        ),
        codec in arb_codec(),
        frame_cap in 1usize..48,
    ) {
        let (bytes, expected) = spill_stream(&records, codec, frame_cap);
        let mut streamed = UsageLog::new();
        for record in SpillReader::new(bytes.as_slice()).unwrap() {
            match record.unwrap() {
                SpillRecord::Op(op) => streamed.push_op(op),
                SpillRecord::Session(s) => streamed.push_session(s),
            }
        }
        prop_assert_eq!(streamed.to_json().unwrap(), expected.to_json().unwrap());
    }

    /// Robustness: a file cut at *any* byte short of its full length reads
    /// back as a clean error — never a panic, never a silently partial
    /// log. (The cut point is taken modulo the file length, so every
    /// region — magic, frame headers, columns, end marker — is hit.)
    #[test]
    fn any_truncation_is_a_clean_error(
        records in prop::collection::vec(
            prop_oneof![arb_op().prop_map(Ok), arb_session().prop_map(Err)],
            0..80,
        ),
        codec in arb_codec(),
        frame_cap in 1usize..32,
        cut_seed in any::<usize>(),
    ) {
        let (bytes, expected) = spill_stream(&records, codec, frame_cap);
        let cut = cut_seed % bytes.len();
        // One cut is special: removing exactly the whole index footer
        // leaves a complete, unindexed stream — the pre-footer format —
        // which must stay readable with unchanged records.
        let frames = FrameIndex::load(&mut Cursor::new(&bytes)).unwrap().unwrap().frames();
        if cut == bytes.len() - footer_bytes(frames) {
            let back = read_spill(&bytes[..cut]).unwrap();
            prop_assert_eq!(back.to_json().unwrap(), expected.to_json().unwrap());
        } else {
            let err = read_spill(&bytes[..cut]);
            prop_assert!(err.is_err(), "cut at {} of {} must error", cut, bytes.len());
            // The streaming reader agrees: iteration ends in exactly one
            // error (or fails to open, when the magic itself is cut).
            match SpillReader::new(&bytes[..cut]) {
                Err(_) => {}
                Ok(reader) => {
                    let results: Vec<_> = reader.collect();
                    prop_assert!(results.last().is_some_and(Result::is_err));
                    prop_assert_eq!(
                        results.iter().filter(|r| r.is_err()).count(),
                        1,
                        "exactly one terminal error"
                    );
                }
            }
        }
    }

    /// Robustness: flipping any single bit of a **v2** file is detected —
    /// the CRC per frame, the magic check and the end-marker totals leave
    /// no unprotected byte. (v1 has no checksums — its guarantee is only
    /// "no panic", covered by the truncation property above since its
    /// structural fields are the same.)
    #[test]
    fn any_v2_bit_flip_is_detected(
        records in prop::collection::vec(
            prop_oneof![arb_op().prop_map(Ok), arb_session().prop_map(Err)],
            0..60,
        ),
        frame_cap in 1usize..32,
        flip_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let (bytes, _) = spill_stream(&records, SpillCodec::Compressed, frame_cap);
        let mut flipped = bytes.clone();
        let at = flip_seed % flipped.len();
        flipped[at] ^= 1 << bit;
        prop_assert!(
            read_spill(flipped.as_slice()).is_err(),
            "flip at byte {} bit {} of {} went undetected",
            at,
            bit,
            flipped.len()
        );
    }

    /// Robustness: corrupting a v1 file never panics (it may decode to
    /// different records — the raw format carries no checksums, which is
    /// exactly why v2 is the default).
    #[test]
    fn v1_bit_flips_never_panic(
        records in prop::collection::vec(
            prop_oneof![arb_op().prop_map(Ok), arb_session().prop_map(Err)],
            0..60,
        ),
        flip_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let (bytes, _) = spill_stream(&records, SpillCodec::Raw, FRAME_CAP);
        let mut flipped = bytes.clone();
        let at = flip_seed % flipped.len();
        flipped[at] ^= 1 << bit;
        let _ = read_spill(flipped.as_slice()); // any Result is fine; panics are not
    }

    /// Robustness: random leading bytes (wrong magic) are rejected up
    /// front unless they happen to *be* a valid magic.
    #[test]
    fn wrong_magic_is_rejected(head in prop::collection::vec(any::<u8>(), 0..32)) {
        if !head.starts_with(b"USWGSPL1") && !head.starts_with(b"USWGSPL2") {
            prop_assert!(read_spill(head.as_slice()).is_err());
        }
    }

    /// The index footer is a faithful map of the stream, for any record
    /// interleaving, codec and frame capacity: entry record counts sum to
    /// the totals, tags match the frame kind, and seeking to each entry
    /// decodes exactly its records inside exactly its time range.
    #[test]
    fn index_footer_maps_every_frame(
        records in prop::collection::vec(
            prop_oneof![arb_op().prop_map(Ok), arb_session().prop_map(Err)],
            0..200,
        ),
        codec in arb_codec(),
        frame_cap in 1usize..48,
    ) {
        let (bytes, expected) = spill_stream(&records, codec, frame_cap);
        let index = FrameIndex::load(&mut Cursor::new(&bytes)).unwrap().unwrap();
        let indexed: u64 = index.entries().iter().map(|e| u64::from(e.records)).sum();
        prop_assert_eq!(
            indexed as usize,
            expected.ops().len() + expected.sessions().len()
        );
        let mut reader = SpillReader::new(Cursor::new(&bytes)).unwrap();
        let (mut ops_seen, mut sessions_seen) = (0usize, 0usize);
        for entry in index.entries() {
            reader.seek_to_frames(entry.offset, 1).unwrap();
            let mut count = 0u32;
            let (mut min, mut max) = (u64::MAX, u64::MIN);
            for record in reader.by_ref() {
                let t = match record.unwrap() {
                    SpillRecord::Op(op) => {
                        prop_assert!(!entry.is_session_frame());
                        ops_seen += 1;
                        op.at
                    }
                    SpillRecord::Session(s) => {
                        prop_assert!(entry.is_session_frame());
                        sessions_seen += 1;
                        s.end
                    }
                };
                min = min.min(t);
                max = max.max(t);
                count += 1;
            }
            prop_assert_eq!(count, entry.records);
            prop_assert_eq!(min, entry.min_time);
            prop_assert_eq!(max, entry.max_time);
        }
        prop_assert_eq!(ops_seen, expected.ops().len());
        prop_assert_eq!(sessions_seen, expected.sessions().len());
    }

    /// Any cut *inside* the footer (the record stream and its end marker
    /// intact) degrades to unindexed streaming: `FrameIndex::load` reports
    /// no index, the streaming reader still yields every record, and the
    /// terminal error marks the stream itself complete — the salvage path
    /// that lets `--salvage` report exact totals.
    #[test]
    fn footer_cuts_degrade_to_unindexed_streaming(
        records in prop::collection::vec(
            prop_oneof![arb_op().prop_map(Ok), arb_session().prop_map(Err)],
            0..80,
        ),
        codec in arb_codec(),
        frame_cap in 1usize..32,
        cut_seed in any::<usize>(),
    ) {
        let (bytes, expected) = spill_stream(&records, codec, frame_cap);
        let frames = FrameIndex::load(&mut Cursor::new(&bytes)).unwrap().unwrap().frames();
        let footer = footer_bytes(frames);
        let stream_end = bytes.len() - footer;
        let cut = stream_end + 1 + cut_seed % (footer - 1);
        let cut_bytes = &bytes[..cut];
        prop_assert!(FrameIndex::load(&mut Cursor::new(cut_bytes)).unwrap().is_none());
        let mut reader = SpillReader::new(cut_bytes).unwrap();
        let mut streamed = UsageLog::new();
        let mut terminal = None;
        for record in reader.by_ref() {
            match record {
                Ok(SpillRecord::Op(op)) => streamed.push_op(op),
                Ok(SpillRecord::Session(s)) => streamed.push_session(s),
                Err(e) => {
                    terminal = Some(e);
                    break;
                }
            }
        }
        let err = terminal.expect("a footer cut must end iteration in an error");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        prop_assert!(reader.stream_complete(), "the record stream itself is complete");
        prop_assert_eq!(streamed.to_json().unwrap(), expected.to_json().unwrap());
    }
}

/// Streams longer than one frame flush mid-run; the frame boundaries must
/// be invisible to the reader. (Deterministic, because it is about sizes,
/// not values.)
#[test]
fn frame_boundaries_are_invisible() {
    for count in [FRAME_CAP - 1, FRAME_CAP, FRAME_CAP + 1, 2 * FRAME_CAP + 37] {
        let mut sink = SpillSink::new(Vec::new()).unwrap();
        let mut expected = UsageLog::new();
        for i in 0..count as u64 {
            let op = OpRecord {
                at: i,
                user: (i % 7) as usize,
                session: (i % 3) as u32,
                op: OpKind::ALL[(i % 8) as usize],
                ino: i,
                bytes: i * 3,
                file_size: i * 5,
                response: i * 7,
                category: FileCategory::REG_USER_RDONLY,
                retries: 0,
                aborted: false,
            };
            sink.record_op(&op);
            expected.push_op(op);
        }
        let bytes = sink.finish().unwrap();
        let back = read_spill(bytes.as_slice()).unwrap();
        assert_eq!(back.ops().len(), count);
        assert_eq!(back.to_json().unwrap(), expected.to_json().unwrap());
    }
}
