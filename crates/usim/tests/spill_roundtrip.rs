//! Property suite for the spill-to-disk sink: any op/session stream —
//! arbitrary field values, arbitrary interleaving, any length relative to
//! the frame size — must survive the disk round trip byte-identically
//! (compared through the serialized JSON form, the on-disk "usage log
//! file" of the paper).

use proptest::prelude::*;
use uswg_fsc::{FileCategory, FileType, Owner, UsageClass};
use uswg_netfs::OpKind;
use uswg_usim::{read_spill, LogSink, OpRecord, SessionRecord, SpillSink, UsageLog, FRAME_CAP};

fn arb_category() -> impl Strategy<Value = FileCategory> {
    (0usize..3, 0usize..2, 0usize..4).prop_map(|(t, o, u)| FileCategory {
        file_type: [FileType::Dir, FileType::Reg, FileType::Notes][t],
        owner: [Owner::User, Owner::Other][o],
        usage: [
            UsageClass::ReadOnly,
            UsageClass::New,
            UsageClass::ReadWrite,
            UsageClass::Temp,
        ][u],
    })
}

fn arb_op() -> impl Strategy<Value = OpRecord> {
    (
        any::<u64>(),
        any::<u32>(),
        0usize..8,
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        arb_category(),
        0usize..10_000,
    )
        .prop_map(
            |(at, session, op, ino, (bytes, file_size, response), category, user)| OpRecord {
                at,
                user,
                session,
                op: OpKind::ALL[op],
                ino,
                bytes,
                file_size,
                response,
                category,
            },
        )
}

fn arb_session() -> impl Strategy<Value = SessionRecord> {
    (
        0usize..10_000,
        0usize..8,
        any::<u32>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(user, user_type, session, (start, end, ops, files_referenced), tail)| {
                let (file_bytes_referenced, bytes_read, bytes_written, total_response) = tail;
                SessionRecord {
                    user,
                    user_type,
                    session,
                    start,
                    end,
                    ops,
                    files_referenced,
                    file_bytes_referenced,
                    bytes_accessed: bytes_read.wrapping_add(bytes_written),
                    bytes_read,
                    bytes_written,
                    total_response,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite oracle: SpillSink → disk bytes → read_spill reproduces the
    /// UsageLog byte-identically, for arbitrary record interleavings.
    #[test]
    fn spill_round_trips_any_stream(
        records in prop::collection::vec(
            prop_oneof![arb_op().prop_map(Ok), arb_session().prop_map(Err)],
            0..300,
        ),
    ) {
        let mut sink = SpillSink::new(Vec::new()).unwrap();
        let mut expected = UsageLog::new();
        for record in &records {
            match record {
                Ok(op) => {
                    sink.record_op(op);
                    expected.push_op(*op);
                }
                Err(session) => {
                    sink.record_session(session);
                    expected.push_session(*session);
                }
            }
        }
        let bytes = sink.finish().unwrap();
        let back = read_spill(bytes.as_slice()).unwrap();
        prop_assert_eq!(back.to_json().unwrap(), expected.to_json().unwrap());
    }
}

/// Streams longer than one frame flush mid-run; the frame boundaries must
/// be invisible to the reader. (Deterministic, because it is about sizes,
/// not values.)
#[test]
fn frame_boundaries_are_invisible() {
    for count in [FRAME_CAP - 1, FRAME_CAP, FRAME_CAP + 1, 2 * FRAME_CAP + 37] {
        let mut sink = SpillSink::new(Vec::new()).unwrap();
        let mut expected = UsageLog::new();
        for i in 0..count as u64 {
            let op = OpRecord {
                at: i,
                user: (i % 7) as usize,
                session: (i % 3) as u32,
                op: OpKind::ALL[(i % 8) as usize],
                ino: i,
                bytes: i * 3,
                file_size: i * 5,
                response: i * 7,
                category: FileCategory::REG_USER_RDONLY,
            };
            sink.record_op(&op);
            expected.push_op(op);
        }
        let bytes = sink.finish().unwrap();
        let back = read_spill(bytes.as_slice()).unwrap();
        assert_eq!(back.ops().len(), count);
        assert_eq!(back.to_json().unwrap(), expected.to_json().unwrap());
    }
}
