//! The usage log: the record every driver produces (the "usage log file" of
//! Figure 4.1).

use serde::{Deserialize, Serialize};
use uswg_fsc::FileCategory;
use uswg_netfs::OpKind;

/// One executed file-access system call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Issue time, µs (simulated time for the DES driver, elapsed run time
    /// for the direct driver).
    pub at: u64,
    /// The issuing user.
    pub user: usize,
    /// The user's session ordinal (0-based).
    pub session: u32,
    /// The system call.
    pub op: OpKind,
    /// Inode of the file operated on.
    pub ino: u64,
    /// Payload bytes (reads/writes; 0 for metadata calls).
    pub bytes: u64,
    /// Logical size of the file at issue time, bytes.
    pub file_size: u64,
    /// Response time, µs. Spans every attempt: under fault injection this
    /// includes failed attempts and the retry backoffs between them.
    pub response: u64,
    /// Category of the file.
    pub category: FileCategory,
    /// Transiently failed attempts that were retried (0 without fault
    /// injection; logs written before fault injection existed parse as 0).
    #[serde(default)]
    pub retries: u32,
    /// Whether the operation exhausted its retry budget and was aborted.
    #[serde(default)]
    pub aborted: bool,
}

/// Summary of one login session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// The user.
    pub user: usize,
    /// Index of the user's type in the population.
    pub user_type: usize,
    /// Session ordinal for this user (0-based).
    pub session: u32,
    /// Login time, µs.
    pub start: u64,
    /// Logout time, µs.
    pub end: u64,
    /// System calls issued.
    pub ops: u64,
    /// Number of files referenced.
    pub files_referenced: u64,
    /// Sum of the sizes of the referenced files, bytes.
    pub file_bytes_referenced: u64,
    /// Total bytes moved by reads and writes.
    pub bytes_accessed: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total response time of all calls, µs.
    pub total_response: u64,
}

impl SessionRecord {
    /// The session's average access-per-byte: bytes moved per byte of file
    /// referenced (the Figure 5.3 metric, after \[DI86\]).
    pub fn access_per_byte(&self) -> f64 {
        if self.file_bytes_referenced == 0 {
            0.0
        } else {
            self.bytes_accessed as f64 / self.file_bytes_referenced as f64
        }
    }

    /// The session's average referenced-file size, bytes (Figure 5.4).
    pub fn mean_file_size(&self) -> f64 {
        if self.files_referenced == 0 {
            0.0
        } else {
            self.file_bytes_referenced as f64 / self.files_referenced as f64
        }
    }

    /// Mean response time per accessed byte, µs (Figures 5.6–5.11).
    pub fn response_per_byte(&self) -> f64 {
        if self.bytes_accessed == 0 {
            0.0
        } else {
            self.total_response as f64 / self.bytes_accessed as f64
        }
    }
}

/// The full log of a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UsageLog {
    ops: Vec<OpRecord>,
    sessions: Vec<SessionRecord>,
}

impl UsageLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty log pre-sized for `ops` operation records and
    /// `sessions` session records, so steady-state recording never
    /// reallocates. Drivers size this from `n_users × sessions_per_user`
    /// and the population's expected operations per session.
    pub fn with_capacity(ops: usize, sessions: usize) -> Self {
        Self {
            ops: Vec::with_capacity(ops),
            sessions: Vec::with_capacity(sessions),
        }
    }

    /// Appends an operation record.
    pub fn push_op(&mut self, record: OpRecord) {
        self.ops.push(record);
    }

    /// Appends a session record.
    pub fn push_session(&mut self, record: SessionRecord) {
        self.sessions.push(record);
    }

    /// All operation records (empty when `record_ops` was off).
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// All session records.
    pub fn sessions(&self) -> &[SessionRecord] {
        &self.sessions
    }

    /// Serializes the log to JSON (the on-disk "usage log file").
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a log from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SessionRecord {
        SessionRecord {
            user: 0,
            user_type: 0,
            session: 0,
            start: 0,
            end: 100,
            ops: 10,
            files_referenced: 4,
            file_bytes_referenced: 8_000,
            bytes_accessed: 16_000,
            bytes_read: 12_000,
            bytes_written: 4_000,
            total_response: 32_000,
        }
    }

    #[test]
    fn session_metrics() {
        let s = session();
        assert!((s.access_per_byte() - 2.0).abs() < 1e-12);
        assert!((s.mean_file_size() - 2_000.0).abs() < 1e-12);
        assert!((s.response_per_byte() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_guards() {
        let mut s = session();
        s.file_bytes_referenced = 0;
        s.files_referenced = 0;
        s.bytes_accessed = 0;
        assert_eq!(s.access_per_byte(), 0.0);
        assert_eq!(s.mean_file_size(), 0.0);
        assert_eq!(s.response_per_byte(), 0.0);
    }

    #[test]
    fn json_round_trip() {
        let mut log = UsageLog::new();
        log.push_session(session());
        log.push_op(OpRecord {
            at: 5,
            user: 0,
            session: 0,
            op: OpKind::Read,
            ino: 42,
            bytes: 512,
            file_size: 4096,
            response: 1500,
            category: FileCategory::REG_USER_RDONLY,
            retries: 0,
            aborted: false,
        });
        let json = log.to_json().unwrap();
        let back = UsageLog::from_json(&json).unwrap();
        assert_eq!(back.ops().len(), 1);
        assert_eq!(back.sessions().len(), 1);
        assert_eq!(back.ops()[0].bytes, 512);
    }
}
