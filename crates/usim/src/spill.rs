//! Spill-to-disk log sink: full-fidelity op streams that survive beyond
//! RAM.
//!
//! At the ROADMAP's millions-of-users scale a materialized [`UsageLog`] is
//! the memory ceiling (~80 bytes per op record). [`SpillSink`] keeps full
//! fidelity without the ceiling: records stream into fixed-width
//! little-endian **columnar frames** on disk, buffered at most
//! [`FRAME_CAP`] records at a time, so resident memory is O(1) in run
//! length. [`read_spill`] reconstructs the exact `UsageLog` the run would
//! have produced in memory — losslessly, byte-for-byte (guarded by a
//! JSON-identity round-trip property test).
//!
//! # File format (`USWGSPL1`)
//!
//! ```text
//! magic: 8 bytes  b"USWGSPL1"
//! frame*:
//!   tag:   1 byte   0 = op frame, 1 = session frame
//!   count: u32 LE   records in this frame (1..=FRAME_CAP)
//!   columns, each `count` fixed-width LE values, in declaration order:
//!     ops:      at u64 | user u64 | session u32 | op u8 | ino u64 |
//!               bytes u64 | file_size u64 | response u64 | category u8
//!     sessions: user u64 | user_type u64 | session u32 | start u64 |
//!               end u64 | ops u64 | files_referenced u64 |
//!               file_bytes_referenced u64 | bytes_accessed u64 |
//!               bytes_read u64 | bytes_written u64 | total_response u64
//! end marker (written by `finish` only):
//!   tag:   1 byte   2
//!   totals: u64 LE ops, u64 LE sessions — must match the frames read
//! ```
//!
//! Columnar-within-frame keeps each column a single contiguous fixed-width
//! run — trivially seekable, compressible, and decodable without any
//! per-record branching — while the frame granularity preserves the
//! stream's op/session interleaving order within each record kind.

use crate::log::{OpRecord, SessionRecord, UsageLog};
use crate::sink::LogSink;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use uswg_fsc::{FileCategory, FileType, Owner, UsageClass};
use uswg_netfs::OpKind;

/// File magic: format name + version.
const MAGIC: &[u8; 8] = b"USWGSPL1";
/// Frame tag for op-record frames.
const TAG_OPS: u8 = 0;
/// Frame tag for session-record frames.
const TAG_SESSIONS: u8 = 1;
/// End-of-stream marker, written only by [`SpillSink::finish`]: tag byte
/// followed by the total op and session counts (u64 LE each). Its absence
/// tells the reader the writer died mid-run — without it, a file truncated
/// exactly at a frame boundary (a killed process, a full disk under a
/// `BufWriter` drop) would read back as a clean but silently incomplete
/// log.
const TAG_END: u8 = 2;

/// Records buffered per frame: the sink's entire resident footprint is two
/// buffers of at most this many records (~320 KiB of ops), independent of
/// how long the run is.
pub const FRAME_CAP: usize = 4096;

/// Encodes an [`OpKind`] as its index in [`OpKind::ALL`].
fn encode_op(kind: OpKind) -> u8 {
    OpKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every OpKind is in ALL") as u8
}

fn decode_op(code: u8) -> io::Result<OpKind> {
    OpKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| bad_data(format!("unknown op code {code}")))
}

/// Packs a [`FileCategory`] into one byte: `type * 8 + owner * 4 + usage`.
fn encode_category(cat: FileCategory) -> u8 {
    let t = match cat.file_type {
        FileType::Dir => 0u8,
        FileType::Reg => 1,
        FileType::Notes => 2,
    };
    let o = match cat.owner {
        Owner::User => 0u8,
        Owner::Other => 1,
    };
    let u = match cat.usage {
        UsageClass::ReadOnly => 0u8,
        UsageClass::New => 1,
        UsageClass::ReadWrite => 2,
        UsageClass::Temp => 3,
    };
    t * 8 + o * 4 + u
}

fn decode_category(code: u8) -> io::Result<FileCategory> {
    let file_type = match code / 8 {
        0 => FileType::Dir,
        1 => FileType::Reg,
        2 => FileType::Notes,
        _ => return Err(bad_data(format!("unknown category code {code}"))),
    };
    let owner = match (code / 4) % 2 {
        0 => Owner::User,
        _ => Owner::Other,
    };
    let usage = match code % 4 {
        0 => UsageClass::ReadOnly,
        1 => UsageClass::New,
        2 => UsageClass::ReadWrite,
        _ => UsageClass::Temp,
    };
    Ok(FileCategory {
        file_type,
        owner,
        usage,
    })
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A [`LogSink`] that streams records to a binary columnar file instead of
/// holding them in memory. See the module documentation for the format.
///
/// I/O failures are deferred: the `LogSink` methods are infallible by
/// signature, so the first error is stored and surfaced by
/// [`SpillSink::finish`] (recording becomes a no-op in between).
#[derive(Debug)]
pub struct SpillSink<W: Write> {
    out: W,
    ops: Vec<OpRecord>,
    sessions: Vec<SessionRecord>,
    /// Ops recorded over the sink's whole life (buffered + flushed), for
    /// the end-of-stream marker.
    ops_total: u64,
    /// Sessions recorded over the sink's whole life.
    sessions_total: u64,
    error: Option<io::Error>,
}

impl SpillSink<BufWriter<File>> {
    /// Creates (truncating) `path` and returns a sink spilling into it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created or
    /// the header written.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: Write> SpillSink<W> {
    /// Wraps a writer, emitting the format header immediately.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the header write fails.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(MAGIC)?;
        Ok(Self {
            out,
            ops: Vec::with_capacity(FRAME_CAP),
            sessions: Vec::with_capacity(FRAME_CAP),
            ops_total: 0,
            sessions_total: 0,
            error: None,
        })
    }

    /// Flushes buffered frames, seals the stream with the end-of-stream
    /// marker and flushes the writer, returning it. A spill file without
    /// the marker (the sink was dropped instead — a crashed run) is
    /// rejected by [`read_spill`] as truncated.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered at any point of the sink's
    /// life (including deferred mid-run failures).
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_ops();
        self.flush_sessions();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.write_all(&[TAG_END])?;
        self.out.write_all(&self.ops_total.to_le_bytes())?;
        self.out.write_all(&self.sessions_total.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }

    fn flush_ops(&mut self) {
        if self.ops.is_empty() || self.error.is_some() {
            self.ops.clear();
            return;
        }
        let result = write_op_frame(&mut self.out, &self.ops);
        if let Err(e) = result {
            self.error = Some(e);
        }
        self.ops.clear();
    }

    fn flush_sessions(&mut self) {
        if self.sessions.is_empty() || self.error.is_some() {
            self.sessions.clear();
            return;
        }
        let result = write_session_frame(&mut self.out, &self.sessions);
        if let Err(e) = result {
            self.error = Some(e);
        }
        self.sessions.clear();
    }
}

impl<W: Write> LogSink for SpillSink<W> {
    fn record_op(&mut self, op: &OpRecord) {
        self.ops_total += 1;
        self.ops.push(*op);
        if self.ops.len() >= FRAME_CAP {
            self.flush_ops();
        }
    }

    fn record_session(&mut self, session: &SessionRecord) {
        self.sessions_total += 1;
        self.sessions.push(*session);
        if self.sessions.len() >= FRAME_CAP {
            self.flush_sessions();
        }
    }
}

/// Writes one column of `u64` values.
fn write_u64s<W: Write>(out: &mut W, values: impl Iterator<Item = u64>) -> io::Result<()> {
    for v in values {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Writes one column of `u32` values.
fn write_u32s<W: Write>(out: &mut W, values: impl Iterator<Item = u32>) -> io::Result<()> {
    for v in values {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Writes one column of `u8` values.
fn write_u8s<W: Write>(out: &mut W, values: impl Iterator<Item = u8>) -> io::Result<()> {
    for v in values {
        out.write_all(&[v])?;
    }
    Ok(())
}

fn write_frame_header<W: Write>(out: &mut W, tag: u8, count: usize) -> io::Result<()> {
    let count = u32::try_from(count).map_err(|_| bad_data("frame too large".into()))?;
    out.write_all(&[tag])?;
    out.write_all(&count.to_le_bytes())
}

fn write_op_frame<W: Write>(out: &mut W, ops: &[OpRecord]) -> io::Result<()> {
    write_frame_header(out, TAG_OPS, ops.len())?;
    write_u64s(out, ops.iter().map(|o| o.at))?;
    write_u64s(out, ops.iter().map(|o| o.user as u64))?;
    write_u32s(out, ops.iter().map(|o| o.session))?;
    write_u8s(out, ops.iter().map(|o| encode_op(o.op)))?;
    write_u64s(out, ops.iter().map(|o| o.ino))?;
    write_u64s(out, ops.iter().map(|o| o.bytes))?;
    write_u64s(out, ops.iter().map(|o| o.file_size))?;
    write_u64s(out, ops.iter().map(|o| o.response))?;
    write_u8s(out, ops.iter().map(|o| encode_category(o.category)))
}

fn write_session_frame<W: Write>(out: &mut W, sessions: &[SessionRecord]) -> io::Result<()> {
    write_frame_header(out, TAG_SESSIONS, sessions.len())?;
    write_u64s(out, sessions.iter().map(|s| s.user as u64))?;
    write_u64s(out, sessions.iter().map(|s| s.user_type as u64))?;
    write_u32s(out, sessions.iter().map(|s| s.session))?;
    write_u64s(out, sessions.iter().map(|s| s.start))?;
    write_u64s(out, sessions.iter().map(|s| s.end))?;
    write_u64s(out, sessions.iter().map(|s| s.ops))?;
    write_u64s(out, sessions.iter().map(|s| s.files_referenced))?;
    write_u64s(out, sessions.iter().map(|s| s.file_bytes_referenced))?;
    write_u64s(out, sessions.iter().map(|s| s.bytes_accessed))?;
    write_u64s(out, sessions.iter().map(|s| s.bytes_read))?;
    write_u64s(out, sessions.iter().map(|s| s.bytes_written))?;
    write_u64s(out, sessions.iter().map(|s| s.total_response))
}

/// One decoded column of `u64` values.
fn read_u64s<R: Read>(r: &mut R, count: usize) -> io::Result<Vec<u64>> {
    let mut raw = vec![0u8; count * 8];
    r.read_exact(&mut raw)?;
    Ok(raw
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

fn read_u32s<R: Read>(r: &mut R, count: usize) -> io::Result<Vec<u32>> {
    let mut raw = vec![0u8; count * 4];
    r.read_exact(&mut raw)?;
    Ok(raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

fn read_u8s<R: Read>(r: &mut R, count: usize) -> io::Result<Vec<u8>> {
    let mut raw = vec![0u8; count];
    r.read_exact(&mut raw)?;
    Ok(raw)
}

fn read_op_frame<R: Read>(r: &mut R, count: usize, log: &mut UsageLog) -> io::Result<()> {
    let at = read_u64s(r, count)?;
    let user = read_u64s(r, count)?;
    let session = read_u32s(r, count)?;
    let op = read_u8s(r, count)?;
    let ino = read_u64s(r, count)?;
    let bytes = read_u64s(r, count)?;
    let file_size = read_u64s(r, count)?;
    let response = read_u64s(r, count)?;
    let category = read_u8s(r, count)?;
    for i in 0..count {
        log.push_op(OpRecord {
            at: at[i],
            user: user[i] as usize,
            session: session[i],
            op: decode_op(op[i])?,
            ino: ino[i],
            bytes: bytes[i],
            file_size: file_size[i],
            response: response[i],
            category: decode_category(category[i])?,
        });
    }
    Ok(())
}

fn read_session_frame<R: Read>(r: &mut R, count: usize, log: &mut UsageLog) -> io::Result<()> {
    let user = read_u64s(r, count)?;
    let user_type = read_u64s(r, count)?;
    let session = read_u32s(r, count)?;
    let start = read_u64s(r, count)?;
    let end = read_u64s(r, count)?;
    let ops = read_u64s(r, count)?;
    let files_referenced = read_u64s(r, count)?;
    let file_bytes_referenced = read_u64s(r, count)?;
    let bytes_accessed = read_u64s(r, count)?;
    let bytes_read = read_u64s(r, count)?;
    let bytes_written = read_u64s(r, count)?;
    let total_response = read_u64s(r, count)?;
    for i in 0..count {
        log.push_session(SessionRecord {
            user: user[i] as usize,
            user_type: user_type[i] as usize,
            session: session[i],
            start: start[i],
            end: end[i],
            ops: ops[i],
            files_referenced: files_referenced[i],
            file_bytes_referenced: file_bytes_referenced[i],
            bytes_accessed: bytes_accessed[i],
            bytes_read: bytes_read[i],
            bytes_written: bytes_written[i],
            total_response: total_response[i],
        });
    }
    Ok(())
}

/// Reads a spill stream back into the [`UsageLog`] the run would have
/// materialized in memory: op and session records reappear in their
/// original recording order.
///
/// # Errors
///
/// Returns I/O errors from the reader, or `InvalidData` for a bad magic,
/// an unknown frame tag, an unknown op/category code, a missing
/// end-of-stream marker (the writer died before [`SpillSink::finish`] —
/// the log would be silently incomplete), or marker counts that disagree
/// with the frames actually read.
pub fn read_spill<R: Read>(mut r: R) -> io::Result<UsageLog> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data(format!("bad spill magic {magic:02x?}")));
    }
    let mut log = UsageLog::new();
    let mut sealed = false;
    loop {
        let mut tag = [0u8; 1];
        match r.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        if tag[0] == TAG_END {
            let mut totals = [0u8; 16];
            r.read_exact(&mut totals)?;
            let ops_total = u64::from_le_bytes(totals[..8].try_into().expect("8 bytes"));
            let sessions_total = u64::from_le_bytes(totals[8..].try_into().expect("8 bytes"));
            if ops_total != log.ops().len() as u64 || sessions_total != log.sessions().len() as u64
            {
                return Err(bad_data(format!(
                    "end marker promises {ops_total} ops / {sessions_total} sessions, \
                     stream held {} / {}",
                    log.ops().len(),
                    log.sessions().len()
                )));
            }
            sealed = true;
            break;
        }
        let mut count_raw = [0u8; 4];
        r.read_exact(&mut count_raw)?;
        let count = u32::from_le_bytes(count_raw) as usize;
        // The writer never emits more than FRAME_CAP records per frame, so
        // a larger count is corruption — reject it before the per-column
        // `vec![0; count * 8]` allocations turn a flipped bit into an OOM.
        if count > FRAME_CAP {
            return Err(bad_data(format!(
                "frame count {count} exceeds the format maximum {FRAME_CAP}"
            )));
        }
        match tag[0] {
            TAG_OPS => read_op_frame(&mut r, count, &mut log)?,
            TAG_SESSIONS => read_session_frame(&mut r, count, &mut log)?,
            other => return Err(bad_data(format!("unknown frame tag {other}"))),
        }
    }
    if !sealed {
        return Err(bad_data(
            "spill stream ends without its end-of-stream marker: \
             the writing run did not finish, so the log is incomplete"
                .into(),
        ));
    }
    Ok(log)
}

/// [`read_spill`] over a buffered file.
///
/// # Errors
///
/// Propagates [`read_spill`] errors and file-open failures.
pub fn read_spill_path<P: AsRef<Path>>(path: P) -> io::Result<UsageLog> {
    read_spill(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_op(i: u64) -> OpRecord {
        OpRecord {
            at: i * 17,
            user: (i % 5) as usize,
            session: (i % 3) as u32,
            op: OpKind::ALL[(i % 8) as usize],
            ino: i,
            bytes: i * 100,
            file_size: i * 1000,
            response: i + 7,
            category: FileCategory::REG_USER_RDONLY,
        }
    }

    fn sample_session(i: u64) -> SessionRecord {
        SessionRecord {
            user: (i % 5) as usize,
            user_type: (i % 2) as usize,
            session: i as u32,
            start: i,
            end: i + 100,
            ops: i * 3,
            files_referenced: i,
            file_bytes_referenced: i * 512,
            bytes_accessed: i * 128,
            bytes_read: i * 96,
            bytes_written: i * 32,
            total_response: i * 11,
        }
    }

    #[test]
    fn category_codes_round_trip() {
        for t in [FileType::Dir, FileType::Reg, FileType::Notes] {
            for o in [Owner::User, Owner::Other] {
                for u in [
                    UsageClass::ReadOnly,
                    UsageClass::New,
                    UsageClass::ReadWrite,
                    UsageClass::Temp,
                ] {
                    let cat = FileCategory {
                        file_type: t,
                        owner: o,
                        usage: u,
                    };
                    assert_eq!(decode_category(encode_category(cat)).unwrap(), cat);
                }
            }
        }
        assert!(decode_category(24).is_err());
    }

    #[test]
    fn op_codes_round_trip() {
        for kind in OpKind::ALL {
            assert_eq!(decode_op(encode_op(kind)).unwrap(), kind);
        }
        assert!(decode_op(8).is_err());
    }

    #[test]
    fn round_trips_multiple_frames() {
        // 3 × FRAME_CAP ops forces mid-run frame flushes; interleaved
        // session records verify per-kind order is preserved.
        let mut sink = SpillSink::new(Vec::new()).unwrap();
        let mut expected = UsageLog::new();
        for i in 0..(3 * FRAME_CAP as u64 + 100) {
            let op = sample_op(i);
            sink.record_op(&op);
            expected.push_op(op);
            if i % 997 == 0 {
                let s = sample_session(i);
                sink.record_session(&s);
                expected.push_session(s);
            }
        }
        let bytes = sink.finish().unwrap();
        let back = read_spill(bytes.as_slice()).unwrap();
        assert_eq!(back.ops().len(), expected.ops().len());
        assert_eq!(back.sessions().len(), expected.sessions().len());
        // Byte-identical serialized form: the reconstruction is lossless.
        assert_eq!(back.to_json().unwrap(), expected.to_json().unwrap());
    }

    #[test]
    fn empty_run_round_trips() {
        let sink = SpillSink::new(Vec::new()).unwrap();
        let bytes = sink.finish().unwrap();
        // Header plus the sealed end marker (tag + two u64 totals).
        assert_eq!(bytes.len(), MAGIC.len() + 1 + 16);
        assert_eq!(&bytes[..8], MAGIC);
        let back = read_spill(bytes.as_slice()).unwrap();
        assert!(back.ops().is_empty());
        assert!(back.sessions().is_empty());
    }

    #[test]
    fn unsealed_stream_is_rejected_as_truncated() {
        // A writer that dies before finish() leaves frames but no end
        // marker — that must not read back as a clean (but partial) log.
        let mut sink = SpillSink::new(Vec::new()).unwrap();
        for i in 0..10 {
            sink.record_op(&sample_op(i));
        }
        let bytes = sink.finish().unwrap();
        let unsealed = &bytes[..bytes.len() - 17]; // strip the end marker
        let err = read_spill(unsealed).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("end-of-stream"), "{err}");
        // A marker whose counts disagree with the frames is also rejected.
        let mut lying = unsealed.to_vec();
        lying.push(TAG_END);
        lying.extend_from_slice(&99u64.to_le_bytes());
        lying.extend_from_slice(&0u64.to_le_bytes());
        let err = read_spill(lying.as_slice()).unwrap_err();
        assert!(err.to_string().contains("promises"), "{err}");
    }

    #[test]
    fn rejects_bad_magic_and_tag() {
        assert!(read_spill(&b"NOTSPILL"[..]).is_err());
        let mut raw = MAGIC.to_vec();
        raw.extend_from_slice(&[9, 0, 0, 0, 0]); // unknown tag 9, count 0
        assert!(read_spill(raw.as_slice()).is_err());
    }

    #[test]
    fn rejects_oversized_frame_count() {
        // A corrupt count must fail as InvalidData *before* the reader
        // tries to allocate column buffers for it.
        let mut raw = MAGIC.to_vec();
        raw.push(TAG_OPS);
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_spill(raw.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("frame count"), "{err}");
    }

    #[test]
    fn truncated_stream_errors() {
        let mut sink = SpillSink::new(Vec::new()).unwrap();
        sink.record_op(&sample_op(1));
        let bytes = sink.finish().unwrap();
        // Drop the last byte: the final column comes up short.
        assert!(read_spill(&bytes[..bytes.len() - 1]).is_err());
    }

    /// A writer that fails after `n` bytes, to exercise deferred errors.
    struct FailAfter {
        left: usize,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.len() > self.left {
                return Err(io::Error::other("disk full"));
            }
            self.left -= buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_surface_at_finish() {
        let mut sink = SpillSink::new(FailAfter { left: 64 }).unwrap();
        for i in 0..(FRAME_CAP as u64 + 1) {
            sink.record_op(&sample_op(i)); // mid-run flush hits the fault
        }
        assert!(sink.finish().is_err());
    }
}
