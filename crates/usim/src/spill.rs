//! Spill-to-disk log sink: full-fidelity op streams that survive beyond
//! RAM.
//!
//! At the ROADMAP's millions-of-users scale a materialized [`UsageLog`] is
//! the memory ceiling (~80 bytes per op record). [`SpillSink`] keeps full
//! fidelity without the ceiling: records stream into **columnar frames** on
//! disk, buffered at most [`FRAME_CAP`] records at a time, so resident
//! memory is O(1) in run length. Reading back has two shapes:
//! [`read_spill`] reconstructs the exact `UsageLog` the run would have
//! produced in memory (losslessly, byte-for-byte through JSON — guarded by
//! round-trip property tests), and [`SpillReader`] iterates the records
//! frame-by-frame without ever materializing a log — the substrate of the
//! streamed sharded merge and of `uswg analyze`.
//!
//! # Formats
//!
//! Two on-disk formats share the frame structure; the reader sniffs the
//! magic, so both read back through the same API (codec negotiation is the
//! first 8 bytes of the file):
//!
//! * **v1 raw** (`USWGSPL1`, [`SpillCodec::Raw`]) — fixed-width
//!   little-endian columns, exactly the format earlier releases wrote.
//!   Still written on request and always readable.
//! * **v2 compressed** (`USWGSPL2`, [`SpillCodec::Compressed`], the
//!   default) — the same columns per frame, but each column is
//!   independently compressed: integer columns as zigzag **delta +
//!   LEB128 varint** (the op stream is sorted by completion time and most
//!   magnitudes are small, so deltas collapse), byte columns as **RLE**
//!   when that wins over the raw bytes. Every v2 frame carries a CRC32 of
//!   its header and payload, so a flipped bit is a clean
//!   [`io::ErrorKind::InvalidData`] instead of silently different records.
//!
//! ```text
//! magic: 8 bytes  b"USWGSPL1" | b"USWGSPL2"
//! frame*:
//!   tag:   1 byte   0 = op frame, 1 = session frame, 3 = op frame with
//!                   fault outcomes
//!   count: u32 LE   records in this frame (1..=FRAME_CAP)
//!   v2 only — crc: u32 LE  CRC32 (IEEE) over tag, count and every column
//!                          (length prefixes included)
//!   columns, in declaration order:
//!     v1: `count` fixed-width LE values per column
//!     v2: u32 LE encoded length, then the encoded column
//!     ops:      at u64 | user u64 | session u32 | op u8 | ino u64 |
//!               bytes u64 | file_size u64 | response u64 | category u8
//!     ops with fault outcomes: the op columns, then
//!               retries u32 | aborted u8 (0/1)
//!     sessions: user u64 | user_type u64 | session u32 | start u64 |
//!               end u64 | ops u64 | files_referenced u64 |
//!               file_bytes_referenced u64 | bytes_accessed u64 |
//!               bytes_read u64 | bytes_written u64 | total_response u64
//! end marker (written by `finish` only):
//!   tag:   1 byte   2
//!   totals: u64 LE ops, u64 LE sessions — must match the frames read
//! index footer (optional, after the end marker; default on):
//!   magic: 8 bytes  b"USWGIDX1"
//!   count: u32 LE   index entries (one per frame, in file order)
//!   entry*:         offset u64 LE (of the frame's tag byte) | tag u8 |
//!                   records u32 LE | min_time u64 LE | max_time u64 LE
//!                   (completion-time range: `at` for ops, `end` for
//!                   sessions)
//!   crc:   u32 LE   CRC32 (IEEE) over magic, count and every entry
//! trailer (fixed size, last 12 bytes of an indexed file):
//!   footer_len: u32 LE  bytes from the footer magic to its CRC inclusive
//!   magic: 8 bytes  b"USWGTRL1"
//! ```
//!
//! The footer makes a sealed file *seekable*: [`FrameIndex::load`] finds it
//! by seeking to EOF−12, and `uswg analyze` uses the per-frame time ranges
//! to decode only the frames overlapping a `--since/--until` window — or to
//! fan disjoint frame ranges across threads — instead of streaming the
//! whole file. Files without a footer (every pre-index release, or
//! [`SpillSink::without_index`]) end at the marker and stream exactly as
//! before. Crucially the footer lives *after* the end marker, the region
//! old readers never looked at — and the region this module now polices:
//! after a validated end marker the stream must hold either a well-formed
//! footer or clean EOF, anything else is `InvalidData`.
//!
//! The fault-outcome tag is chosen **per frame**: a frame whose records
//! all carry the default outcome (no retries, not aborted) is written as a
//! plain op frame, so a run without fault injection produces byte-identical
//! files under both codecs to every earlier release, and old readers only
//! reject files that actually contain fault data.
//!
//! v2 integer columns (u32 widened to u64): per value the zigzag-encoded
//! wrapping delta from the previous value, as an LEB128 varint. v2 byte
//! columns: a flag byte — `0` = the `count` bytes verbatim, `1` = RLE
//! `(value u8, run length varint)` pairs; the writer picks whichever is
//! smaller.
//!
//! Columnar-within-frame keeps each column a single contiguous run —
//! trivially compressible and decodable without per-record branching —
//! while the frame granularity preserves the stream's op/session
//! interleaving order within each record kind.

use crate::log::{OpRecord, SessionRecord, UsageLog};
use crate::sink::LogSink;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use uswg_fsc::{FileCategory, FileType, Owner, UsageClass};
use uswg_netfs::OpKind;

/// v1 file magic: format name + version (fixed-width raw columns).
const MAGIC_V1: &[u8; 8] = b"USWGSPL1";
/// v2 file magic (per-frame compressed columns + CRC).
const MAGIC_V2: &[u8; 8] = b"USWGSPL2";
/// Frame tag for op-record frames.
const TAG_OPS: u8 = 0;
/// Frame tag for session-record frames.
const TAG_SESSIONS: u8 = 1;
/// End-of-stream marker, written only by [`SpillSink::finish`]: tag byte
/// followed by the total op and session counts (u64 LE each). Its absence
/// tells the reader the writer died mid-run — without it, a file truncated
/// exactly at a frame boundary (a killed process, a full disk under a
/// `BufWriter` drop) would read back as a clean but silently incomplete
/// log.
const TAG_END: u8 = 2;
/// Frame tag for op-record frames carrying fault outcomes (two extra
/// columns: retries, aborted). Only written when a frame holds at least one
/// non-default outcome, so fault-free spill files keep the historical byte
/// layout exactly.
const TAG_OPS_FAULTS: u8 = 3;
/// Index-footer magic, the first bytes after the end marker of an indexed
/// file.
const MAGIC_INDEX: &[u8; 8] = b"USWGIDX1";
/// Trailer magic, the last 8 bytes of an indexed file.
const MAGIC_TRAILER: &[u8; 8] = b"USWGTRL1";
/// Bytes per index entry: offset u64, tag u8, records u32, min/max u64.
const INDEX_ENTRY_BYTES: usize = 8 + 1 + 4 + 8 + 8;
/// Fixed footer overhead around the entries: magic, count, CRC.
const INDEX_FIXED_BYTES: usize = 8 + 4 + 4;
/// Trailer length: footer length (u32) + trailer magic.
const TRAILER_BYTES: usize = 4 + 8;
/// The shortest possible sealed stream: magic + end marker.
const MIN_STREAM_BYTES: u64 = 8 + 1 + 16;

/// Records buffered per frame: the sink's entire resident footprint is two
/// buffers of at most this many records (~320 KiB of ops), independent of
/// how long the run is. Also the hard ceiling the reader enforces on frame
/// counts, for both formats.
pub const FRAME_CAP: usize = 4096;

/// How a [`SpillSink`] encodes its frames on disk. Both codecs hold the
/// identical record stream; the reader sniffs the file magic, so the choice
/// only trades bytes on disk against encode/decode work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillCodec {
    /// The v1 format: fixed-width little-endian columns, byte-for-byte what
    /// earlier releases wrote. No checksums.
    Raw,
    /// The v2 format (the default): delta+varint integer columns, RLE byte
    /// columns, CRC32 per frame.
    #[default]
    Compressed,
}

/// Encodes an [`OpKind`] as its index in [`OpKind::ALL`].
fn encode_op(kind: OpKind) -> u8 {
    OpKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every OpKind is in ALL") as u8
}

fn decode_op(code: u8) -> io::Result<OpKind> {
    OpKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| bad_data(format!("unknown op code {code}")))
}

/// Packs a [`FileCategory`] into one byte: `type * 8 + owner * 4 + usage`.
fn encode_category(cat: FileCategory) -> u8 {
    let t = match cat.file_type {
        FileType::Dir => 0u8,
        FileType::Reg => 1,
        FileType::Notes => 2,
    };
    let o = match cat.owner {
        Owner::User => 0u8,
        Owner::Other => 1,
    };
    let u = match cat.usage {
        UsageClass::ReadOnly => 0u8,
        UsageClass::New => 1,
        UsageClass::ReadWrite => 2,
        UsageClass::Temp => 3,
    };
    t * 8 + o * 4 + u
}

fn decode_category(code: u8) -> io::Result<FileCategory> {
    let file_type = match code / 8 {
        0 => FileType::Dir,
        1 => FileType::Reg,
        2 => FileType::Notes,
        _ => return Err(bad_data(format!("unknown category code {code}"))),
    };
    let owner = match (code / 4) % 2 {
        0 => Owner::User,
        _ => Owner::Other,
    };
    let usage = match code % 4 {
        0 => UsageClass::ReadOnly,
        1 => UsageClass::New,
        2 => UsageClass::ReadWrite,
        _ => UsageClass::Temp,
    };
    Ok(FileCategory {
        file_type,
        owner,
        usage,
    })
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------------
// v2 primitives: varint, zigzag, RLE, CRC32
// ---------------------------------------------------------------------------

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Running CRC32 over a frame's header and columns: the v2 integrity check
/// that turns a flipped bit anywhere in a frame into a clean decode error
/// (CRC32 detects every single-bit error by construction).
#[derive(Debug, Clone, Copy)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Self(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    fn finish(self) -> u32 {
        !self.0
    }
}

/// Zigzag: maps small-magnitude signed deltas to small unsigned varints.
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Appends `v` as an LEB128 varint (1–10 bytes).
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one varint from `buf` at `*pos`, rejecting truncated or
/// overflowing encodings.
fn take_varint(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| bad_data("varint runs past its column".into()))?;
        *pos += 1;
        let payload = (b & 0x7F) as u64;
        if shift >= 64 || (shift == 63 && payload > 1) {
            return Err(bad_data("varint overflows u64".into()));
        }
        v |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends one v2 integer column: length prefix + zigzag-delta varints.
fn push_delta_col(body: &mut Vec<u8>, values: impl Iterator<Item = u64>) {
    let len_at = body.len();
    body.extend_from_slice(&[0u8; 4]);
    let data_at = body.len();
    let mut prev = 0u64;
    for v in values {
        put_varint(body, zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
    let len = (body.len() - data_at) as u32;
    body[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Decodes a v2 integer column back to its `count` values, requiring the
/// encoding to consume the column exactly.
fn decode_delta_col(buf: &[u8], count: usize) -> io::Result<Vec<u64>> {
    let mut out = Vec::with_capacity(count);
    let mut pos = 0usize;
    let mut prev = 0u64;
    for _ in 0..count {
        let z = take_varint(buf, &mut pos)?;
        prev = prev.wrapping_add(unzigzag(z) as u64);
        out.push(prev);
    }
    if pos != buf.len() {
        return Err(bad_data("trailing bytes in integer column".into()));
    }
    Ok(out)
}

/// Appends one v2 byte column: length prefix, then a flag byte (`0` raw /
/// `1` RLE) and the payload — whichever encoding is smaller.
fn push_u8_col(body: &mut Vec<u8>, values: &[u8]) {
    let mut rle = Vec::new();
    let mut i = 0usize;
    while i < values.len() {
        let v = values[i];
        let mut run = 1u64;
        while i + (run as usize) < values.len() && values[i + run as usize] == v {
            run += 1;
        }
        rle.push(v);
        put_varint(&mut rle, run);
        i += run as usize;
    }
    let (flag, payload): (u8, &[u8]) = if rle.len() < values.len() {
        (1, &rle)
    } else {
        (0, values)
    };
    let len = (1 + payload.len()) as u32;
    body.extend_from_slice(&len.to_le_bytes());
    body.push(flag);
    body.extend_from_slice(payload);
}

/// Decodes a v2 byte column back to its `count` bytes.
fn decode_u8_col(buf: &[u8], count: usize) -> io::Result<Vec<u8>> {
    let (&flag, payload) = buf
        .split_first()
        .ok_or_else(|| bad_data("byte column missing its encoding flag".into()))?;
    match flag {
        0 => {
            if payload.len() != count {
                return Err(bad_data(format!(
                    "raw byte column holds {} bytes, frame promises {count}",
                    payload.len()
                )));
            }
            Ok(payload.to_vec())
        }
        1 => {
            let mut out = Vec::with_capacity(count);
            let mut pos = 0usize;
            while out.len() < count {
                let v = *payload
                    .get(pos)
                    .ok_or_else(|| bad_data("RLE column runs out of pairs".into()))?;
                pos += 1;
                let run = take_varint(payload, &mut pos)?;
                if run == 0 || run > (count - out.len()) as u64 {
                    return Err(bad_data(format!("RLE run length {run} out of range")));
                }
                out.resize(out.len() + run as usize, v);
            }
            if pos != payload.len() {
                return Err(bad_data("trailing bytes in RLE column".into()));
            }
            Ok(out)
        }
        other => Err(bad_data(format!("unknown byte-column encoding {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Frame index
// ---------------------------------------------------------------------------

/// One frame of a spill file as the index footer describes it: where the
/// frame starts, what it holds and the completion-time range it covers —
/// everything a windowed or parallel pass needs to decide whether to decode
/// the frame without reading it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameIndexEntry {
    /// Byte offset of the frame's tag byte from the start of the file.
    pub offset: u64,
    /// Records in the frame (`1..=FRAME_CAP`).
    pub records: u32,
    /// Smallest completion time in the frame, µs (`at` for op frames,
    /// `end` for session frames).
    pub min_time: u64,
    /// Largest completion time in the frame, µs.
    pub max_time: u64,
    /// The frame's tag byte.
    tag: u8,
}

impl FrameIndexEntry {
    /// Whether the frame holds session records (otherwise op records,
    /// with or without fault outcomes).
    pub fn is_session_frame(&self) -> bool {
        self.tag == TAG_SESSIONS
    }

    /// Whether the frame's completion-time range intersects the closed
    /// window `[since, until]` (an open bound always matches).
    pub fn overlaps(&self, since: Option<u64>, until: Option<u64>) -> bool {
        since.is_none_or(|s| self.max_time >= s) && until.is_none_or(|u| self.min_time <= u)
    }
}

/// The frame index of a sealed spill file, loaded from the footer
/// [`SpillSink::finish`] appends after the end marker. [`FrameIndex::load`]
/// finds the footer by seeking to the fixed-size trailer at EOF, so a
/// multi-gigabyte capture answers "which frames overlap t∈[a,b]" from a
/// few dozen kilobytes of index — the entry point of `uswg analyze
/// --since/--until/--sample/--jobs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameIndex {
    entries: Vec<FrameIndexEntry>,
}

impl FrameIndex {
    /// The per-frame entries, in file order.
    pub fn entries(&self) -> &[FrameIndexEntry] {
        &self.entries
    }

    /// Frames in the file.
    pub fn frames(&self) -> usize {
        self.entries.len()
    }

    /// Records over all frames (ops + sessions).
    pub fn records(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.records)).sum()
    }

    /// Loads the index footer from a seekable spill file. Returns
    /// `Ok(None)` when the file carries no trailer — a pre-index file, an
    /// unindexed sink, or a file truncated anywhere inside the footer
    /// (the trailer is the last thing written, so a damaged footer simply
    /// fails to announce itself and the caller falls back to streaming).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when a trailer is present but the footer it
    /// points at is malformed (bad magic, size mismatch, checksum
    /// failure, nonsense entries), and propagates underlying I/O errors.
    pub fn load<R: Read + Seek>(r: &mut R) -> io::Result<Option<Self>> {
        let len = r.seek(SeekFrom::End(0))?;
        if len < MIN_STREAM_BYTES + (INDEX_FIXED_BYTES + TRAILER_BYTES) as u64 {
            return Ok(None);
        }
        r.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))?;
        let mut trailer = [0u8; TRAILER_BYTES];
        r.read_exact(&mut trailer)?;
        if &trailer[4..] != MAGIC_TRAILER {
            return Ok(None);
        }
        let footer_len = u64::from(u32::from_le_bytes(
            trailer[..4].try_into().expect("4 bytes"),
        ));
        let footer_start = len
            .checked_sub(TRAILER_BYTES as u64)
            .and_then(|n| n.checked_sub(footer_len))
            .filter(|&start| footer_len >= INDEX_FIXED_BYTES as u64 && start >= MIN_STREAM_BYTES)
            .ok_or_else(|| {
                bad_data(format!(
                    "index trailer declares a {footer_len}-byte footer, impossible \
                     in a {len}-byte file"
                ))
            })?;
        r.seek(SeekFrom::Start(footer_start))?;
        let mut footer = vec![0u8; footer_len as usize];
        r.read_exact(&mut footer)?;
        if &footer[..8] != MAGIC_INDEX {
            return Err(bad_data(format!(
                "bad index footer magic {:02x?}",
                &footer[..8]
            )));
        }
        let count = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes")) as usize;
        let expected = INDEX_FIXED_BYTES + count * INDEX_ENTRY_BYTES;
        if footer_len != expected as u64 {
            return Err(bad_data(format!(
                "index footer length {footer_len} does not match its {count} entries"
            )));
        }
        let crc_at = footer.len() - 4;
        let mut crc = Crc32::new();
        crc.update(&footer[..crc_at]);
        let stored = u32::from_le_bytes(footer[crc_at..].try_into().expect("4 bytes"));
        if crc.finish() != stored {
            return Err(bad_data("index footer checksum mismatch".into()));
        }
        let mut entries = Vec::with_capacity(count);
        let mut prev_end = 8u64; // frames start right after the file magic
        for raw in footer[12..crc_at].chunks_exact(INDEX_ENTRY_BYTES) {
            let entry = FrameIndexEntry {
                offset: u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")),
                tag: raw[8],
                records: u32::from_le_bytes(raw[9..13].try_into().expect("4 bytes")),
                min_time: u64::from_le_bytes(raw[13..21].try_into().expect("8 bytes")),
                max_time: u64::from_le_bytes(raw[21..29].try_into().expect("8 bytes")),
            };
            // The CRC already vouches for the bytes; these checks catch a
            // *writer* bug before a seek lands mid-frame.
            if !matches!(entry.tag, TAG_OPS | TAG_SESSIONS | TAG_OPS_FAULTS)
                || entry.records == 0
                || entry.records as usize > FRAME_CAP
                || entry.offset < prev_end
                || entry.offset >= footer_start
                || entry.min_time > entry.max_time
            {
                return Err(bad_data(format!(
                    "index entry {entry:?} is inconsistent with the file layout"
                )));
            }
            prev_end = entry.offset + 1;
            entries.push(entry);
        }
        Ok(Some(Self { entries }))
    }

    /// [`FrameIndex::load`] over a buffered file.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameIndex::load`] errors and file-open failures.
    pub fn load_path<P: AsRef<Path>>(path: P) -> io::Result<Option<Self>> {
        Self::load(&mut BufReader::new(File::open(path)?))
    }
}

/// Serializes the footer + trailer for `entries`.
///
/// # Errors
///
/// Propagates write failures; errors if the file somehow holds more than
/// `u32::MAX` frames.
fn write_index_footer<W: Write>(out: &mut W, entries: &[FrameIndexEntry]) -> io::Result<()> {
    let count =
        u32::try_from(entries.len()).map_err(|_| bad_data("too many frames to index".into()))?;
    let mut footer = Vec::with_capacity(INDEX_FIXED_BYTES + entries.len() * INDEX_ENTRY_BYTES);
    footer.extend_from_slice(MAGIC_INDEX);
    footer.extend_from_slice(&count.to_le_bytes());
    for e in entries {
        footer.extend_from_slice(&e.offset.to_le_bytes());
        footer.push(e.tag);
        footer.extend_from_slice(&e.records.to_le_bytes());
        footer.extend_from_slice(&e.min_time.to_le_bytes());
        footer.extend_from_slice(&e.max_time.to_le_bytes());
    }
    let mut crc = Crc32::new();
    crc.update(&footer);
    footer.extend_from_slice(&crc.finish().to_le_bytes());
    out.write_all(&footer)?;
    out.write_all(&(footer.len() as u32).to_le_bytes())?;
    out.write_all(MAGIC_TRAILER)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// A [`LogSink`] that streams records to a binary columnar file instead of
/// holding them in memory. See the module documentation for the formats.
///
/// I/O failures are deferred: the `LogSink` methods are infallible by
/// signature, so the first error is stored and surfaced by
/// [`SpillSink::finish`] (recording becomes a no-op in between).
#[derive(Debug)]
pub struct SpillSink<W: Write> {
    out: W,
    codec: SpillCodec,
    frame_cap: usize,
    ops: Vec<OpRecord>,
    sessions: Vec<SessionRecord>,
    /// Ops recorded over the sink's whole life (buffered + flushed), for
    /// the end-of-stream marker.
    ops_total: u64,
    /// Sessions recorded over the sink's whole life.
    sessions_total: u64,
    /// Byte offset the next frame will land at (every frame writer reports
    /// its exact size), feeding the index entries.
    pos: u64,
    /// Per-frame index entries for the footer; `None` once
    /// [`SpillSink::without_index`] disabled it.
    index: Option<Vec<FrameIndexEntry>>,
    error: Option<io::Error>,
}

impl SpillSink<BufWriter<File>> {
    /// Creates (truncating) `path` and returns a sink spilling into it with
    /// the default (compressed, v2) codec.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created or
    /// the header written.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Self::create_with(path, SpillCodec::default())
    }

    /// [`SpillSink::create`] with an explicit codec.
    ///
    /// # Errors
    ///
    /// As for [`SpillSink::create`].
    pub fn create_with<P: AsRef<Path>>(path: P, codec: SpillCodec) -> io::Result<Self> {
        Self::with_codec(BufWriter::new(File::create(path)?), codec)
    }
}

impl<W: Write> SpillSink<W> {
    /// Wraps a writer with the default (compressed, v2) codec, emitting the
    /// format header immediately.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the header write fails.
    pub fn new(out: W) -> io::Result<Self> {
        Self::with_codec(out, SpillCodec::default())
    }

    /// Wraps a writer with an explicit codec.
    ///
    /// # Errors
    ///
    /// As for [`SpillSink::new`].
    pub fn with_codec(out: W, codec: SpillCodec) -> io::Result<Self> {
        Self::with_options(out, codec, FRAME_CAP)
    }

    /// Wraps a writer with an explicit codec and frame capacity (clamped to
    /// `1..=FRAME_CAP`). Smaller frames trade compression ratio for less
    /// buffered memory; tests use tiny frames to cross many boundaries
    /// cheaply.
    ///
    /// # Errors
    ///
    /// As for [`SpillSink::new`].
    pub fn with_options(mut out: W, codec: SpillCodec, frame_cap: usize) -> io::Result<Self> {
        out.write_all(match codec {
            SpillCodec::Raw => MAGIC_V1,
            SpillCodec::Compressed => MAGIC_V2,
        })?;
        let frame_cap = frame_cap.clamp(1, FRAME_CAP);
        Ok(Self {
            out,
            codec,
            frame_cap,
            ops: Vec::with_capacity(frame_cap),
            sessions: Vec::with_capacity(frame_cap),
            ops_total: 0,
            sessions_total: 0,
            pos: 8, // the magic
            index: Some(Vec::new()),
            error: None,
        })
    }

    /// The codec this sink writes.
    pub fn codec(&self) -> SpillCodec {
        self.codec
    }

    /// Disables the frame-index footer: [`SpillSink::finish`] seals the
    /// stream with the end marker alone, reproducing the pre-index byte
    /// layout exactly. The file stays fully readable — it just streams
    /// instead of seeking under `uswg analyze`.
    pub fn without_index(mut self) -> Self {
        self.index = None;
        self
    }

    /// Flushes buffered frames, seals the stream with the end-of-stream
    /// marker (followed by the index footer unless
    /// [`SpillSink::without_index`] disabled it) and flushes the writer,
    /// returning it. A spill file without the marker (the sink was dropped
    /// instead — a crashed run) is rejected by [`read_spill`] as truncated.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered at any point of the sink's
    /// life (including deferred mid-run failures).
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_ops();
        self.flush_sessions();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.write_all(&[TAG_END])?;
        self.out.write_all(&self.ops_total.to_le_bytes())?;
        self.out.write_all(&self.sessions_total.to_le_bytes())?;
        if let Some(entries) = self.index.take() {
            write_index_footer(&mut self.out, &entries)?;
        }
        self.out.flush()?;
        Ok(self.out)
    }

    /// Records one flushed frame in the index (when enabled): `times`
    /// yields the completion time of every record in the frame.
    fn note_frame(&mut self, offset: u64, tag: u8, records: usize, times: (u64, u64)) {
        if let Some(index) = &mut self.index {
            index.push(FrameIndexEntry {
                offset,
                tag,
                records: records as u32, // frame_cap ≤ FRAME_CAP ≪ u32::MAX
                min_time: times.0,
                max_time: times.1,
            });
        }
    }

    fn flush_ops(&mut self) {
        if self.ops.is_empty() || self.error.is_some() {
            self.ops.clear();
            return;
        }
        let offset = self.pos;
        let result = match self.codec {
            SpillCodec::Raw => write_op_frame_v1(&mut self.out, &self.ops),
            SpillCodec::Compressed => write_op_frame_v2(&mut self.out, &self.ops),
        };
        match result {
            Ok(written) => {
                self.pos += written;
                let tag = if frame_has_faults(&self.ops) {
                    TAG_OPS_FAULTS
                } else {
                    TAG_OPS
                };
                let times = min_max(self.ops.iter().map(|o| o.at));
                let records = self.ops.len();
                self.note_frame(offset, tag, records, times);
            }
            Err(e) => self.error = Some(e),
        }
        self.ops.clear();
    }

    fn flush_sessions(&mut self) {
        if self.sessions.is_empty() || self.error.is_some() {
            self.sessions.clear();
            return;
        }
        let offset = self.pos;
        let result = match self.codec {
            SpillCodec::Raw => write_session_frame_v1(&mut self.out, &self.sessions),
            SpillCodec::Compressed => write_session_frame_v2(&mut self.out, &self.sessions),
        };
        match result {
            Ok(written) => {
                self.pos += written;
                let times = min_max(self.sessions.iter().map(|s| s.end));
                let records = self.sessions.len();
                self.note_frame(offset, TAG_SESSIONS, records, times);
            }
            Err(e) => self.error = Some(e),
        }
        self.sessions.clear();
    }
}

/// `(min, max)` of a non-empty iterator (frames are never flushed empty).
fn min_max(values: impl Iterator<Item = u64>) -> (u64, u64) {
    values.fold((u64::MAX, 0), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

impl<W: Write> LogSink for SpillSink<W> {
    fn record_op(&mut self, op: &OpRecord) {
        self.ops_total += 1;
        self.ops.push(*op);
        if self.ops.len() >= self.frame_cap {
            self.flush_ops();
        }
    }

    fn record_session(&mut self, session: &SessionRecord) {
        self.sessions_total += 1;
        self.sessions.push(*session);
        if self.sessions.len() >= self.frame_cap {
            self.flush_sessions();
        }
    }
}

/// Writes one column of `u64` values (v1).
fn write_u64s<W: Write>(out: &mut W, values: impl Iterator<Item = u64>) -> io::Result<()> {
    for v in values {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Writes one column of `u32` values (v1).
fn write_u32s<W: Write>(out: &mut W, values: impl Iterator<Item = u32>) -> io::Result<()> {
    for v in values {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Writes one column of `u8` values (v1).
fn write_u8s<W: Write>(out: &mut W, values: impl Iterator<Item = u8>) -> io::Result<()> {
    for v in values {
        out.write_all(&[v])?;
    }
    Ok(())
}

fn write_frame_header<W: Write>(out: &mut W, tag: u8, count: usize) -> io::Result<()> {
    let count = u32::try_from(count).map_err(|_| bad_data("frame too large".into()))?;
    out.write_all(&[tag])?;
    out.write_all(&count.to_le_bytes())
}

/// Whether a buffered op frame needs the fault-outcome tag: any record
/// with a non-default outcome promotes the whole frame.
fn frame_has_faults(ops: &[OpRecord]) -> bool {
    ops.iter().any(|o| o.retries != 0 || o.aborted)
}

/// Fixed v1 bytes per record for `tag` — the sum of the column widths,
/// shared by the writer (frame sizes for the index) and the reader
/// (structural skip).
fn v1_row_bytes(tag: u8) -> u64 {
    match tag {
        TAG_OPS => 6 * 8 + 4 + 2,                // six u64s, one u32, two u8s
        TAG_OPS_FAULTS => 6 * 8 + 4 + 2 + 4 + 1, // + retries u32, aborted u8
        _ => 11 * 8 + 4,                         // eleven u64s, one u32
    }
}

/// Frame writers return the exact bytes written, so [`SpillSink`] can track
/// byte offsets for the index footer without a counting writer.
fn write_op_frame_v1<W: Write>(out: &mut W, ops: &[OpRecord]) -> io::Result<u64> {
    let faulted = frame_has_faults(ops);
    let tag = if faulted { TAG_OPS_FAULTS } else { TAG_OPS };
    write_frame_header(out, tag, ops.len())?;
    write_u64s(out, ops.iter().map(|o| o.at))?;
    write_u64s(out, ops.iter().map(|o| o.user as u64))?;
    write_u32s(out, ops.iter().map(|o| o.session))?;
    write_u8s(out, ops.iter().map(|o| encode_op(o.op)))?;
    write_u64s(out, ops.iter().map(|o| o.ino))?;
    write_u64s(out, ops.iter().map(|o| o.bytes))?;
    write_u64s(out, ops.iter().map(|o| o.file_size))?;
    write_u64s(out, ops.iter().map(|o| o.response))?;
    write_u8s(out, ops.iter().map(|o| encode_category(o.category)))?;
    if faulted {
        write_u32s(out, ops.iter().map(|o| o.retries))?;
        write_u8s(out, ops.iter().map(|o| u8::from(o.aborted)))?;
    }
    Ok(5 + v1_row_bytes(tag) * ops.len() as u64)
}

fn write_session_frame_v1<W: Write>(out: &mut W, sessions: &[SessionRecord]) -> io::Result<u64> {
    write_frame_header(out, TAG_SESSIONS, sessions.len())?;
    write_u64s(out, sessions.iter().map(|s| s.user as u64))?;
    write_u64s(out, sessions.iter().map(|s| s.user_type as u64))?;
    write_u32s(out, sessions.iter().map(|s| s.session))?;
    write_u64s(out, sessions.iter().map(|s| s.start))?;
    write_u64s(out, sessions.iter().map(|s| s.end))?;
    write_u64s(out, sessions.iter().map(|s| s.ops))?;
    write_u64s(out, sessions.iter().map(|s| s.files_referenced))?;
    write_u64s(out, sessions.iter().map(|s| s.file_bytes_referenced))?;
    write_u64s(out, sessions.iter().map(|s| s.bytes_accessed))?;
    write_u64s(out, sessions.iter().map(|s| s.bytes_read))?;
    write_u64s(out, sessions.iter().map(|s| s.bytes_written))?;
    write_u64s(out, sessions.iter().map(|s| s.total_response))?;
    Ok(5 + v1_row_bytes(TAG_SESSIONS) * sessions.len() as u64)
}

/// Writes a whole v2 frame: header, CRC over header + body, body. Returns
/// the bytes written.
fn write_frame_v2<W: Write>(out: &mut W, tag: u8, count: usize, body: &[u8]) -> io::Result<u64> {
    let count = u32::try_from(count).map_err(|_| bad_data("frame too large".into()))?;
    let mut crc = Crc32::new();
    crc.update(&[tag]);
    crc.update(&count.to_le_bytes());
    crc.update(body);
    out.write_all(&[tag])?;
    out.write_all(&count.to_le_bytes())?;
    out.write_all(&crc.finish().to_le_bytes())?;
    out.write_all(body)?;
    Ok(9 + body.len() as u64)
}

fn write_op_frame_v2<W: Write>(out: &mut W, ops: &[OpRecord]) -> io::Result<u64> {
    let faulted = frame_has_faults(ops);
    let mut body = Vec::new();
    push_delta_col(&mut body, ops.iter().map(|o| o.at));
    push_delta_col(&mut body, ops.iter().map(|o| o.user as u64));
    push_delta_col(&mut body, ops.iter().map(|o| o.session as u64));
    let op_codes: Vec<u8> = ops.iter().map(|o| encode_op(o.op)).collect();
    push_u8_col(&mut body, &op_codes);
    push_delta_col(&mut body, ops.iter().map(|o| o.ino));
    push_delta_col(&mut body, ops.iter().map(|o| o.bytes));
    push_delta_col(&mut body, ops.iter().map(|o| o.file_size));
    push_delta_col(&mut body, ops.iter().map(|o| o.response));
    let cat_codes: Vec<u8> = ops.iter().map(|o| encode_category(o.category)).collect();
    push_u8_col(&mut body, &cat_codes);
    if faulted {
        push_delta_col(&mut body, ops.iter().map(|o| u64::from(o.retries)));
        let aborted: Vec<u8> = ops.iter().map(|o| u8::from(o.aborted)).collect();
        push_u8_col(&mut body, &aborted);
    }
    let tag = if faulted { TAG_OPS_FAULTS } else { TAG_OPS };
    write_frame_v2(out, tag, ops.len(), &body)
}

fn write_session_frame_v2<W: Write>(out: &mut W, sessions: &[SessionRecord]) -> io::Result<u64> {
    let mut body = Vec::new();
    push_delta_col(&mut body, sessions.iter().map(|s| s.user as u64));
    push_delta_col(&mut body, sessions.iter().map(|s| s.user_type as u64));
    push_delta_col(&mut body, sessions.iter().map(|s| s.session as u64));
    push_delta_col(&mut body, sessions.iter().map(|s| s.start));
    push_delta_col(&mut body, sessions.iter().map(|s| s.end));
    push_delta_col(&mut body, sessions.iter().map(|s| s.ops));
    push_delta_col(&mut body, sessions.iter().map(|s| s.files_referenced));
    push_delta_col(&mut body, sessions.iter().map(|s| s.file_bytes_referenced));
    push_delta_col(&mut body, sessions.iter().map(|s| s.bytes_accessed));
    push_delta_col(&mut body, sessions.iter().map(|s| s.bytes_read));
    push_delta_col(&mut body, sessions.iter().map(|s| s.bytes_written));
    push_delta_col(&mut body, sessions.iter().map(|s| s.total_response));
    write_frame_v2(out, TAG_SESSIONS, sessions.len(), &body)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One decoded column of `u64` values (v1).
fn read_u64s<R: Read>(r: &mut R, count: usize) -> io::Result<Vec<u64>> {
    let mut raw = vec![0u8; count * 8];
    r.read_exact(&mut raw)?;
    Ok(raw
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

fn read_u32s<R: Read>(r: &mut R, count: usize) -> io::Result<Vec<u32>> {
    let mut raw = vec![0u8; count * 4];
    r.read_exact(&mut raw)?;
    Ok(raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

fn read_u8s<R: Read>(r: &mut R, count: usize) -> io::Result<Vec<u8>> {
    let mut raw = vec![0u8; count];
    r.read_exact(&mut raw)?;
    Ok(raw)
}

/// Narrows a decoded u64 column value back to u32 (the session column).
fn narrow_u32(v: u64) -> io::Result<u32> {
    u32::try_from(v).map_err(|_| bad_data(format!("session ordinal {v} exceeds u32")))
}

/// Decodes the 0/1 aborted column, rejecting other values (corruption —
/// v1 has no CRC, so the strict check is its only line of defence).
fn decode_aborted(code: u8) -> io::Result<bool> {
    match code {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(bad_data(format!("aborted flag {other} is not 0/1"))),
    }
}

fn read_op_frame_v1<R: Read>(r: &mut R, count: usize, faulted: bool) -> io::Result<Vec<OpRecord>> {
    let at = read_u64s(r, count)?;
    let user = read_u64s(r, count)?;
    let session = read_u32s(r, count)?;
    let op = read_u8s(r, count)?;
    let ino = read_u64s(r, count)?;
    let bytes = read_u64s(r, count)?;
    let file_size = read_u64s(r, count)?;
    let response = read_u64s(r, count)?;
    let category = read_u8s(r, count)?;
    let (retries, aborted) = if faulted {
        (read_u32s(r, count)?, read_u8s(r, count)?)
    } else {
        (Vec::new(), Vec::new())
    };
    (0..count)
        .map(|i| {
            Ok(OpRecord {
                at: at[i],
                user: user[i] as usize,
                session: session[i],
                op: decode_op(op[i])?,
                ino: ino[i],
                bytes: bytes[i],
                file_size: file_size[i],
                response: response[i],
                category: decode_category(category[i])?,
                retries: if faulted { retries[i] } else { 0 },
                aborted: if faulted {
                    decode_aborted(aborted[i])?
                } else {
                    false
                },
            })
        })
        .collect()
}

fn read_session_frame_v1<R: Read>(r: &mut R, count: usize) -> io::Result<Vec<SessionRecord>> {
    let user = read_u64s(r, count)?;
    let user_type = read_u64s(r, count)?;
    let session = read_u32s(r, count)?;
    let start = read_u64s(r, count)?;
    let end = read_u64s(r, count)?;
    let ops = read_u64s(r, count)?;
    let files_referenced = read_u64s(r, count)?;
    let file_bytes_referenced = read_u64s(r, count)?;
    let bytes_accessed = read_u64s(r, count)?;
    let bytes_read = read_u64s(r, count)?;
    let bytes_written = read_u64s(r, count)?;
    let total_response = read_u64s(r, count)?;
    Ok((0..count)
        .map(|i| SessionRecord {
            user: user[i] as usize,
            user_type: user_type[i] as usize,
            session: session[i],
            start: start[i],
            end: end[i],
            ops: ops[i],
            files_referenced: files_referenced[i],
            file_bytes_referenced: file_bytes_referenced[i],
            bytes_accessed: bytes_accessed[i],
            bytes_read: bytes_read[i],
            bytes_written: bytes_written[i],
            total_response: total_response[i],
        })
        .collect())
}

/// Reads the length-prefixed encoded bytes of one v2 column, feeding the
/// prefix and payload into the running CRC. `max_len` bounds the
/// allocation: a corrupt length fails cleanly before any oversized buffer.
fn read_v2_col<R: Read>(r: &mut R, crc: &mut Crc32, max_len: usize) -> io::Result<Vec<u8>> {
    let mut len_raw = [0u8; 4];
    r.read_exact(&mut len_raw)?;
    crc.update(&len_raw);
    let len = u32::from_le_bytes(len_raw) as usize;
    if len > max_len {
        return Err(bad_data(format!(
            "column length {len} exceeds the bound {max_len}"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    crc.update(&buf);
    Ok(buf)
}

/// Varint of a u64 is at most 10 bytes; the per-value bound on an integer
/// column's encoded length.
const MAX_VARINT: usize = 10;

/// Reads a whole v2 frame's columns and verifies the CRC *before* any
/// decoding: `n_int` integer columns and `n_u8` byte columns arrive
/// interleaved per `layout` (false = integer, true = byte column).
fn read_v2_columns<R: Read>(
    r: &mut R,
    tag: u8,
    count: usize,
    layout: &[bool],
) -> io::Result<Vec<Vec<u8>>> {
    let mut stored = [0u8; 4];
    r.read_exact(&mut stored)?;
    let stored = u32::from_le_bytes(stored);
    let mut crc = Crc32::new();
    crc.update(&[tag]);
    crc.update(&(count as u32).to_le_bytes());
    let mut cols = Vec::with_capacity(layout.len());
    for &is_u8 in layout {
        let max_len = if is_u8 {
            // flag + worst-case RLE (value byte + varint run each); the
            // writer never exceeds 1 + count, but stay permissive within
            // the same O(count) bound.
            1 + count * (1 + MAX_VARINT)
        } else {
            count * MAX_VARINT
        };
        cols.push(read_v2_col(r, &mut crc, max_len)?);
    }
    if crc.finish() != stored {
        return Err(bad_data(
            "frame checksum mismatch: the spill file is corrupt".into(),
        ));
    }
    Ok(cols)
}

/// Column layout of a v2 op frame (false = delta-varint, true = bytes).
const OP_LAYOUT: [bool; 9] = [false, false, false, true, false, false, false, false, true];
/// Column layout of a v2 op frame with fault outcomes: the op columns plus
/// retries (delta-varint) and aborted (bytes).
const OP_FAULTS_LAYOUT: [bool; 11] = [
    false, false, false, true, false, false, false, false, true, false, true,
];
/// Column layout of a v2 session frame.
const SESSION_LAYOUT: [bool; 12] = [false; 12];

fn read_op_frame_v2<R: Read>(r: &mut R, count: usize, faulted: bool) -> io::Result<Vec<OpRecord>> {
    let (tag, layout): (u8, &[bool]) = if faulted {
        (TAG_OPS_FAULTS, &OP_FAULTS_LAYOUT)
    } else {
        (TAG_OPS, &OP_LAYOUT)
    };
    let cols = read_v2_columns(r, tag, count, layout)?;
    let at = decode_delta_col(&cols[0], count)?;
    let user = decode_delta_col(&cols[1], count)?;
    let session = decode_delta_col(&cols[2], count)?;
    let op = decode_u8_col(&cols[3], count)?;
    let ino = decode_delta_col(&cols[4], count)?;
    let bytes = decode_delta_col(&cols[5], count)?;
    let file_size = decode_delta_col(&cols[6], count)?;
    let response = decode_delta_col(&cols[7], count)?;
    let category = decode_u8_col(&cols[8], count)?;
    let (retries, aborted) = if faulted {
        (
            decode_delta_col(&cols[9], count)?,
            decode_u8_col(&cols[10], count)?,
        )
    } else {
        (Vec::new(), Vec::new())
    };
    (0..count)
        .map(|i| {
            Ok(OpRecord {
                at: at[i],
                user: user[i] as usize,
                session: narrow_u32(session[i])?,
                op: decode_op(op[i])?,
                ino: ino[i],
                bytes: bytes[i],
                file_size: file_size[i],
                response: response[i],
                category: decode_category(category[i])?,
                retries: if faulted {
                    u32::try_from(retries[i])
                        .map_err(|_| bad_data(format!("retry count {} exceeds u32", retries[i])))?
                } else {
                    0
                },
                aborted: if faulted {
                    decode_aborted(aborted[i])?
                } else {
                    false
                },
            })
        })
        .collect()
}

fn read_session_frame_v2<R: Read>(r: &mut R, count: usize) -> io::Result<Vec<SessionRecord>> {
    let cols = read_v2_columns(r, TAG_SESSIONS, count, &SESSION_LAYOUT)?;
    let decoded: Vec<Vec<u64>> = cols
        .iter()
        .map(|c| decode_delta_col(c, count))
        .collect::<io::Result<_>>()?;
    (0..count)
        .map(|i| {
            Ok(SessionRecord {
                user: decoded[0][i] as usize,
                user_type: decoded[1][i] as usize,
                session: narrow_u32(decoded[2][i])?,
                start: decoded[3][i],
                end: decoded[4][i],
                ops: decoded[5][i],
                files_referenced: decoded[6][i],
                file_bytes_referenced: decoded[7][i],
                bytes_accessed: decoded[8][i],
                bytes_read: decoded[9][i],
                bytes_written: decoded[10][i],
                total_response: decoded[11][i],
            })
        })
        .collect()
}

/// One record yielded by a [`SpillReader`]: the stream interleaves the two
/// kinds at frame granularity, preserving each kind's recording order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpillRecord {
    /// An executed operation.
    Op(OpRecord),
    /// A completed session.
    Session(SessionRecord),
}

/// Where a [`SpillReader`] is in its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderState {
    /// More frames (or the end marker) expected.
    Streaming,
    /// The end marker validated; the stream is complete.
    Finished,
    /// An error was yielded; the iterator is fused.
    Failed,
}

/// Streaming spill-file reader: yields every record frame-by-frame without
/// ever materializing a [`UsageLog`] — resident memory is one frame.
///
/// Iteration yields `io::Result<SpillRecord>`; the first error fuses the
/// iterator. A stream that ends without its end-of-stream marker, or whose
/// marker totals disagree with the frames read, yields that error as its
/// final item — callers that must not act on partial data (everything
/// except progress displays) should treat any `Err` as invalidating every
/// record already seen, exactly as [`read_spill`] does by returning `Err`
/// for the whole file.
#[derive(Debug)]
pub struct SpillReader<R: Read> {
    r: R,
    codec: SpillCodec,
    /// When set, only frames with this tag are decoded; the other kind is
    /// skipped structurally (headers parsed, bodies never decoded).
    keep: Option<u8>,
    ops_seen: u64,
    sessions_seen: u64,
    pending: std::vec::IntoIter<SpillRecord>,
    state: ReaderState,
    /// `Some(n)` after [`SpillReader::seek_to_frames`]: decode at most `n`
    /// more frames, then finish — the end marker is not expected (the
    /// index already validated the stream's shape).
    frames_left: Option<u64>,
    /// True once the end marker's totals have validated, even if the
    /// trailing-bytes probe failed afterwards: every *record* of the
    /// stream was intact, only the optional footer region is damaged.
    end_validated: bool,
}

impl SpillReader<BufReader<File>> {
    /// Opens a spill file for streaming.
    ///
    /// # Errors
    ///
    /// Propagates file-open failures and header validation errors.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> SpillReader<R> {
    /// Wraps a reader, validating the format magic immediately.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for an unknown magic, or the underlying read
    /// error.
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let codec = if &magic == MAGIC_V1 {
            SpillCodec::Raw
        } else if &magic == MAGIC_V2 {
            SpillCodec::Compressed
        } else {
            return Err(bad_data(format!("bad spill magic {magic:02x?}")));
        };
        Ok(Self {
            r,
            codec,
            keep: None,
            ops_seen: 0,
            sessions_seen: 0,
            pending: Vec::new().into_iter(),
            state: ReaderState::Streaming,
            frames_left: None,
            end_validated: false,
        })
    }

    /// The codec the file was written with (sniffed from the magic).
    pub fn codec(&self) -> SpillCodec {
        self.codec
    }

    /// Restricts iteration to op records. Session frames are *skipped
    /// structurally* — their headers are parsed (so frame counts still
    /// reconcile against the end-of-stream marker) but their bodies are
    /// never decoded or allocated, which halves the work of passes that
    /// only want one record kind (the sharded k-way merge reads every
    /// file once per kind). Skipped frames' checksums are not verified;
    /// a pass that consumes the other kind (or [`read_spill`]) still
    /// verifies them.
    pub fn ops_only(mut self) -> Self {
        self.keep = Some(TAG_OPS);
        self
    }

    /// Restricts iteration to session records; op frames are skipped
    /// structurally (see [`SpillReader::ops_only`]).
    pub fn sessions_only(mut self) -> Self {
        self.keep = Some(TAG_SESSIONS);
        self
    }

    /// Whether the end marker's totals validated against the frames read.
    /// Once true, every *record* of the stream is accounted for, even if
    /// the reader subsequently errored in the trailing region — the
    /// distinction `uswg analyze --salvage` uses to report exact totals
    /// for a file whose only damage is a truncated index footer.
    pub fn stream_complete(&self) -> bool {
        self.end_validated
    }

    /// Reads `read_exact`-style from inside the index footer region, where
    /// a short read means the footer was truncated — the record stream
    /// itself is already complete, so the error stays `UnexpectedEof`
    /// (salvageable) rather than `InvalidData`.
    fn read_footer_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.r.read_exact(buf).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "spill stream truncated inside the index footer: \
                 the record stream is complete but its index is not",
            ),
            _ => e,
        })
    }

    /// Polices the region after a validated end marker: the only bytes
    /// allowed there are a well-formed index footer (checked in full —
    /// magic, entry consistency, CRC, trailer, then EOF) or nothing at
    /// all. Anything else is `InvalidData`. Pre-index readers returned
    /// `Ok(None)` at the marker without looking, so a valid stream
    /// followed by arbitrary garbage read back clean — exactly the region
    /// the footer now occupies, so it has to be policed.
    fn check_trailing(&mut self) -> io::Result<()> {
        let mut first = [0u8; 1];
        match self.r.read_exact(&mut first) {
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
            Ok(()) => {}
        }
        if first[0] != MAGIC_INDEX[0] {
            return Err(bad_data(format!(
                "trailing byte {:#04x} after the end-of-stream marker",
                first[0]
            )));
        }
        let mut magic_rest = [0u8; 7];
        self.read_footer_exact(&mut magic_rest)?;
        if magic_rest != MAGIC_INDEX[1..] {
            return Err(bad_data(
                "trailing bytes after the end-of-stream marker are not an index footer".to_string(),
            ));
        }
        let mut count_raw = [0u8; 4];
        self.read_footer_exact(&mut count_raw)?;
        let count = u32::from_le_bytes(count_raw);
        // Every frame holds at least one record, so the totals the end
        // marker just validated bound the entry count — reject a corrupt
        // length before it sizes an allocation.
        if u64::from(count) > self.ops_seen + self.sessions_seen {
            return Err(bad_data(format!(
                "index footer claims {count} frames for {} records",
                self.ops_seen + self.sessions_seen
            )));
        }
        let mut entries = vec![0u8; count as usize * INDEX_ENTRY_BYTES];
        self.read_footer_exact(&mut entries)?;
        let mut crc = Crc32::new();
        crc.update(MAGIC_INDEX);
        crc.update(&count_raw);
        crc.update(&entries);
        let mut crc_raw = [0u8; 4];
        self.read_footer_exact(&mut crc_raw)?;
        if u32::from_le_bytes(crc_raw) != crc.finish() {
            return Err(bad_data("index footer checksum mismatch".into()));
        }
        // The CRC vouches for the bytes; now check the entries describe
        // the stream just read — offsets in order, record counts summing
        // to the marker totals.
        let (mut ops, mut sessions) = (0u64, 0u64);
        let mut prev_end = 8u64;
        for raw in entries.chunks_exact(INDEX_ENTRY_BYTES) {
            let offset = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
            let records = u64::from(u32::from_le_bytes(raw[9..13].try_into().expect("4 bytes")));
            let min_time = u64::from_le_bytes(raw[13..21].try_into().expect("8 bytes"));
            let max_time = u64::from_le_bytes(raw[21..29].try_into().expect("8 bytes"));
            if records == 0
                || records > FRAME_CAP as u64
                || offset < prev_end
                || min_time > max_time
            {
                return Err(bad_data(
                    "index entry is inconsistent with the stream just read".to_string(),
                ));
            }
            match raw[8] {
                TAG_SESSIONS => sessions += records,
                TAG_OPS | TAG_OPS_FAULTS => ops += records,
                other => return Err(bad_data(format!("index entry has unknown tag {other}"))),
            }
            prev_end = offset + 1;
        }
        if ops != self.ops_seen || sessions != self.sessions_seen {
            return Err(bad_data(format!(
                "index footer accounts for {ops} ops / {sessions} sessions, \
                 stream held {} / {}",
                self.ops_seen, self.sessions_seen
            )));
        }
        let mut trailer = [0u8; TRAILER_BYTES];
        self.read_footer_exact(&mut trailer)?;
        let footer_len = (INDEX_FIXED_BYTES + count as usize * INDEX_ENTRY_BYTES) as u32;
        if u32::from_le_bytes(trailer[..4].try_into().expect("4 bytes")) != footer_len
            || &trailer[4..] != MAGIC_TRAILER
        {
            return Err(bad_data("index trailer does not match its footer".into()));
        }
        // Nothing may follow the trailer.
        let mut extra = [0u8; 1];
        match self.r.read_exact(&mut extra) {
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(()),
            Err(e) => Err(e),
            Ok(()) => Err(bad_data(
                "trailing bytes after the index trailer".to_string(),
            )),
        }
    }

    /// Consumes exactly `n` bytes of the underlying reader without
    /// decoding them, erroring on a short stream.
    fn skip_exact(&mut self, n: u64) -> io::Result<()> {
        let copied = io::copy(&mut self.r.by_ref().take(n), &mut io::sink())?;
        if copied != n {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "spill stream truncated inside a skipped frame",
            ));
        }
        Ok(())
    }

    /// Skips one frame body (everything after tag + count) without
    /// decoding it: fixed-width arithmetic for v1, length-prefix hops for
    /// v2.
    fn skip_frame(&mut self, tag: u8, count: usize) -> io::Result<()> {
        match self.codec {
            SpillCodec::Raw => self.skip_exact(v1_row_bytes(tag) * count as u64),
            SpillCodec::Compressed => {
                self.skip_exact(4)?; // the frame CRC
                let columns = match tag {
                    TAG_OPS => OP_LAYOUT.len(),
                    TAG_OPS_FAULTS => OP_FAULTS_LAYOUT.len(),
                    _ => SESSION_LAYOUT.len(),
                };
                for _ in 0..columns {
                    let mut len_raw = [0u8; 4];
                    self.r.read_exact(&mut len_raw)?;
                    let len = u32::from_le_bytes(len_raw) as u64;
                    // Same bound as the decoding path: a corrupt length
                    // must not skip an unbounded distance into the stream.
                    if len > (count * (1 + MAX_VARINT)) as u64 + 1 {
                        return Err(bad_data(format!(
                            "column length {len} exceeds the bound while skipping"
                        )));
                    }
                    self.skip_exact(len)?;
                }
                Ok(())
            }
        }
    }

    /// Decodes frames until a record is available, the validated end of the
    /// stream, or an error.
    fn next_record(&mut self) -> io::Result<Option<SpillRecord>> {
        loop {
            if let Some(record) = self.pending.next() {
                return Ok(Some(record));
            }
            if self.state == ReaderState::Finished {
                return Ok(None);
            }
            if self.frames_left == Some(0) {
                // Frame budget exhausted (seek mode): stop without looking
                // for the end marker — the index already accounted for it.
                self.state = ReaderState::Finished;
                return Ok(None);
            }
            let mut tag = [0u8; 1];
            match self.r.read_exact(&mut tag) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    // Truncation, not corruption: every record already
                    // yielded came from an intact frame, which is what
                    // `uswg analyze --salvage` relies on to distinguish a
                    // killed writer (recoverable prefix) from a damaged one.
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "spill stream ends without its end-of-stream marker: \
                         the writing run did not finish, so the log is incomplete",
                    ));
                }
                Err(e) => return Err(e),
            }
            if tag[0] == TAG_END {
                if self.frames_left.is_some() {
                    // Seek mode promised more frames than the stream holds:
                    // the index footer and the frame sequence disagree.
                    return Err(bad_data(
                        "end marker reached while the frame index promised more frames".to_string(),
                    ));
                }
                let mut totals = [0u8; 16];
                self.r.read_exact(&mut totals)?;
                let ops_total = u64::from_le_bytes(totals[..8].try_into().expect("8 bytes"));
                let sessions_total = u64::from_le_bytes(totals[8..].try_into().expect("8 bytes"));
                if ops_total != self.ops_seen || sessions_total != self.sessions_seen {
                    return Err(bad_data(format!(
                        "end marker promises {ops_total} ops / {sessions_total} sessions, \
                         stream held {} / {}",
                        self.ops_seen, self.sessions_seen
                    )));
                }
                self.end_validated = true;
                self.check_trailing()?;
                self.state = ReaderState::Finished;
                return Ok(None);
            }
            let mut count_raw = [0u8; 4];
            self.r.read_exact(&mut count_raw)?;
            let count = u32::from_le_bytes(count_raw) as usize;
            // The writer never emits more than FRAME_CAP records per frame,
            // so a larger count is corruption — reject it before the
            // per-column allocations turn a flipped bit into an OOM.
            if count > FRAME_CAP {
                return Err(bad_data(format!(
                    "frame count {count} exceeds the format maximum {FRAME_CAP}"
                )));
            }
            let tag = match tag[0] {
                TAG_OPS | TAG_SESSIONS | TAG_OPS_FAULTS => tag[0],
                other => return Err(bad_data(format!("unknown frame tag {other}"))),
            };
            if let Some(n) = &mut self.frames_left {
                *n -= 1;
            }
            // Record the frame's count whether decoded or skipped, so the
            // end-of-stream totals always reconcile. Both op tags feed the
            // one op total.
            if tag == TAG_SESSIONS {
                self.sessions_seen += count as u64;
            } else {
                self.ops_seen += count as u64;
            }
            // `keep` filters by record kind: either op tag passes an
            // ops-only filter.
            let wanted = match self.keep {
                None => true,
                Some(TAG_SESSIONS) => tag == TAG_SESSIONS,
                Some(_) => tag != TAG_SESSIONS,
            };
            if !wanted {
                self.skip_frame(tag, count)?;
                continue;
            }
            let records: Vec<SpillRecord> = match (tag, self.codec) {
                (TAG_SESSIONS, SpillCodec::Raw) => read_session_frame_v1(&mut self.r, count)?
                    .into_iter()
                    .map(SpillRecord::Session)
                    .collect(),
                (TAG_SESSIONS, SpillCodec::Compressed) => {
                    read_session_frame_v2(&mut self.r, count)?
                        .into_iter()
                        .map(SpillRecord::Session)
                        .collect()
                }
                (t, SpillCodec::Raw) => read_op_frame_v1(&mut self.r, count, t == TAG_OPS_FAULTS)?
                    .into_iter()
                    .map(SpillRecord::Op)
                    .collect(),
                (t, SpillCodec::Compressed) => {
                    read_op_frame_v2(&mut self.r, count, t == TAG_OPS_FAULTS)?
                        .into_iter()
                        .map(SpillRecord::Op)
                        .collect()
                }
            };
            self.pending = records.into_iter();
        }
    }
}

impl<R: Read + Seek> SpillReader<R> {
    /// Repositions the reader at a frame boundary taken from a
    /// [`FrameIndex`] and bounds it to decode exactly `frames` frames
    /// before finishing — the seekable half of windowed and parallel
    /// analyze. The reader does not expect (and must not meet) the end
    /// marker inside the budget; per-frame v2 checksums still verify every
    /// decoded frame, but end-of-stream totals are the index's problem,
    /// already cross-checked when the footer loaded.
    ///
    /// `offset` must be a frame tag-byte offset from the index; `frames`
    /// counts consecutive frames from there. A previous iteration error
    /// state is cleared: each seek starts a fresh bounded pass.
    ///
    /// # Errors
    ///
    /// Propagates seek failures.
    pub fn seek_to_frames(&mut self, offset: u64, frames: u64) -> io::Result<()> {
        self.r.seek(SeekFrom::Start(offset))?;
        self.pending = Vec::new().into_iter();
        self.state = ReaderState::Streaming;
        self.frames_left = Some(frames);
        self.end_validated = false;
        Ok(())
    }
}

impl<R: Read> Iterator for SpillReader<R> {
    type Item = io::Result<SpillRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state == ReaderState::Failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => None,
            Err(e) => {
                self.state = ReaderState::Failed;
                Some(Err(e))
            }
        }
    }
}

/// Reads a spill stream back into the [`UsageLog`] the run would have
/// materialized in memory: op and session records reappear in their
/// original recording order. Both formats (v1 raw and v2 compressed) are
/// accepted; the magic selects the decoder.
///
/// # Errors
///
/// Returns I/O errors from the reader; `InvalidData` for a bad magic, an
/// unknown frame tag, an unknown op/category code, a frame checksum
/// mismatch (v2), or marker counts that disagree with the frames actually
/// read; and `UnexpectedEof` for a stream that ends before its
/// end-of-stream marker (the writer died before [`SpillSink::finish`] —
/// the log would be silently incomplete). The `UnexpectedEof` kind marks
/// errors where everything already decoded is trustworthy — the salvage
/// distinction `uswg analyze --salvage` exposes.
pub fn read_spill<R: Read>(r: R) -> io::Result<UsageLog> {
    let mut log = UsageLog::new();
    for record in SpillReader::new(r)? {
        match record? {
            SpillRecord::Op(op) => log.push_op(op),
            SpillRecord::Session(s) => log.push_session(s),
        }
    }
    Ok(log)
}

/// [`read_spill`] over a buffered file.
///
/// # Errors
///
/// Propagates [`read_spill`] errors and file-open failures.
pub fn read_spill_path<P: AsRef<Path>>(path: P) -> io::Result<UsageLog> {
    read_spill(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_op(i: u64) -> OpRecord {
        OpRecord {
            at: i * 17,
            user: (i % 5) as usize,
            session: (i % 3) as u32,
            op: OpKind::ALL[(i % 8) as usize],
            ino: i,
            bytes: i * 100,
            file_size: i * 1000,
            response: i + 7,
            category: FileCategory::REG_USER_RDONLY,
            retries: 0,
            aborted: false,
        }
    }

    /// A record with a fault outcome, promoting its frame to the
    /// fault-outcome tag.
    fn faulted_op(i: u64) -> OpRecord {
        OpRecord {
            retries: (i % 4) as u32,
            aborted: i.is_multiple_of(5),
            ..sample_op(i)
        }
    }

    fn sample_session(i: u64) -> SessionRecord {
        SessionRecord {
            user: (i % 5) as usize,
            user_type: (i % 2) as usize,
            session: i as u32,
            start: i,
            end: i + 100,
            ops: i * 3,
            files_referenced: i,
            file_bytes_referenced: i * 512,
            bytes_accessed: i * 128,
            bytes_read: i * 96,
            bytes_written: i * 32,
            total_response: i * 11,
        }
    }

    #[test]
    fn category_codes_round_trip() {
        for t in [FileType::Dir, FileType::Reg, FileType::Notes] {
            for o in [Owner::User, Owner::Other] {
                for u in [
                    UsageClass::ReadOnly,
                    UsageClass::New,
                    UsageClass::ReadWrite,
                    UsageClass::Temp,
                ] {
                    let cat = FileCategory {
                        file_type: t,
                        owner: o,
                        usage: u,
                    };
                    assert_eq!(decode_category(encode_category(cat)).unwrap(), cat);
                }
            }
        }
        assert!(decode_category(24).is_err());
    }

    #[test]
    fn op_codes_round_trip() {
        for kind in OpKind::ALL {
            assert_eq!(decode_op(encode_op(kind)).unwrap(), kind);
        }
        assert!(decode_op(8).is_err());
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(take_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // A truncated varint errors instead of panicking.
        assert!(take_varint(&[0x80], &mut 0).is_err());
        // An 11-byte encoding overflows u64.
        let over = [0xFFu8; 10];
        assert!(take_varint(&over, &mut 0).is_err());
    }

    #[test]
    fn delta_column_round_trips_extremes() {
        let values = [0u64, u64::MAX, 1, u64::MAX / 2, 0, 3, 3, 3];
        let mut body = Vec::new();
        push_delta_col(&mut body, values.iter().copied());
        let len = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
        assert_eq!(len, body.len() - 4);
        assert_eq!(
            decode_delta_col(&body[4..], values.len()).unwrap(),
            values.to_vec()
        );
        // Trailing garbage in a column is rejected.
        let mut padded = body[4..].to_vec();
        padded.push(0);
        assert!(decode_delta_col(&padded, values.len()).is_err());
    }

    #[test]
    fn u8_column_picks_the_smaller_encoding() {
        // A long run compresses via RLE…
        let run = vec![7u8; 100];
        let mut body = Vec::new();
        push_u8_col(&mut body, &run);
        let len = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
        assert!(len < run.len(), "run of 100 should RLE to a few bytes");
        assert_eq!(decode_u8_col(&body[4..], run.len()).unwrap(), run);
        // …while an alternating column falls back to the raw bytes.
        let alt: Vec<u8> = (0..100u8).map(|i| i % 2).collect();
        let mut body = Vec::new();
        push_u8_col(&mut body, &alt);
        let len = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
        assert_eq!(len, 1 + alt.len(), "alternating bytes stay raw");
        assert_eq!(decode_u8_col(&body[4..], alt.len()).unwrap(), alt);
        // Corrupt RLE runs are rejected: zero-length and overlong.
        assert!(decode_u8_col(&[1, 7, 0], 3).is_err());
        assert!(decode_u8_col(&[1, 7, 9], 3).is_err());
        assert!(decode_u8_col(&[2, 0, 0], 2).is_err());
    }

    fn write_all(codec: SpillCodec, n_ops: u64) -> (Vec<u8>, UsageLog) {
        let mut sink = SpillSink::with_codec(Vec::new(), codec).unwrap();
        let mut expected = UsageLog::new();
        for i in 0..n_ops {
            let op = sample_op(i);
            sink.record_op(&op);
            expected.push_op(op);
            if i % 997 == 0 {
                let s = sample_session(i);
                sink.record_session(&s);
                expected.push_session(s);
            }
        }
        (sink.finish().unwrap(), expected)
    }

    #[test]
    fn round_trips_multiple_frames_both_codecs() {
        // 3 × FRAME_CAP ops forces mid-run frame flushes; interleaved
        // session records verify per-kind order is preserved.
        for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
            let (bytes, expected) = write_all(codec, 3 * FRAME_CAP as u64 + 100);
            let back = read_spill(bytes.as_slice()).unwrap();
            assert_eq!(back.ops().len(), expected.ops().len());
            assert_eq!(back.sessions().len(), expected.sessions().len());
            // Byte-identical serialized form: the reconstruction is
            // lossless under either codec.
            assert_eq!(back.to_json().unwrap(), expected.to_json().unwrap());
        }
    }

    #[test]
    fn compressed_files_are_measurably_smaller() {
        let (raw, _) = write_all(SpillCodec::Raw, 2 * FRAME_CAP as u64);
        let (compressed, _) = write_all(SpillCodec::Compressed, 2 * FRAME_CAP as u64);
        assert!(
            (compressed.len() as f64) < 0.7 * raw.len() as f64,
            "compressed {} vs raw {}",
            compressed.len(),
            raw.len()
        );
    }

    #[test]
    fn v1_format_is_frozen_byte_for_byte() {
        // The raw codec must keep writing exactly the historical v1 layout,
        // so files from earlier releases and files from `SpillCodec::Raw`
        // are the same format. Reconstruct the expected bytes from the
        // documented layout by hand and compare.
        let ops = [sample_op(1), sample_op(2)];
        let session = sample_session(5);
        let mut sink = SpillSink::with_codec(Vec::new(), SpillCodec::Raw)
            .unwrap()
            .without_index();
        for op in &ops {
            sink.record_op(op);
        }
        sink.record_session(&session);
        let bytes = sink.finish().unwrap();

        let mut expected = MAGIC_V1.to_vec();
        expected.push(TAG_OPS);
        expected.extend_from_slice(&2u32.to_le_bytes());
        for o in &ops {
            expected.extend_from_slice(&o.at.to_le_bytes());
        }
        for o in &ops {
            expected.extend_from_slice(&(o.user as u64).to_le_bytes());
        }
        for o in &ops {
            expected.extend_from_slice(&o.session.to_le_bytes());
        }
        for o in &ops {
            expected.push(encode_op(o.op));
        }
        for o in &ops {
            expected.extend_from_slice(&o.ino.to_le_bytes());
        }
        for o in &ops {
            expected.extend_from_slice(&o.bytes.to_le_bytes());
        }
        for o in &ops {
            expected.extend_from_slice(&o.file_size.to_le_bytes());
        }
        for o in &ops {
            expected.extend_from_slice(&o.response.to_le_bytes());
        }
        for o in &ops {
            expected.push(encode_category(o.category));
        }
        expected.push(TAG_SESSIONS);
        expected.extend_from_slice(&1u32.to_le_bytes());
        for v in [session.user as u64, session.user_type as u64] {
            expected.extend_from_slice(&v.to_le_bytes());
        }
        expected.extend_from_slice(&session.session.to_le_bytes());
        for v in [
            session.start,
            session.end,
            session.ops,
            session.files_referenced,
            session.file_bytes_referenced,
            session.bytes_accessed,
            session.bytes_read,
            session.bytes_written,
            session.total_response,
        ] {
            expected.extend_from_slice(&v.to_le_bytes());
        }
        expected.push(TAG_END);
        expected.extend_from_slice(&2u64.to_le_bytes());
        expected.extend_from_slice(&1u64.to_le_bytes());
        assert_eq!(bytes, expected, "v1 byte layout must stay frozen");
        // And it reads back losslessly.
        let back = read_spill(bytes.as_slice()).unwrap();
        assert_eq!(back.ops().len(), 2);
        assert_eq!(back.sessions().len(), 1);
    }

    #[test]
    fn fault_outcomes_round_trip_both_codecs() {
        // Mixed stream: clean frames keep the plain tag, frames holding
        // any non-default outcome carry the fault columns; both read back
        // losslessly and interleave correctly with session frames.
        for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
            let mut sink = SpillSink::with_options(Vec::new(), codec, 4).unwrap();
            let mut expected = UsageLog::new();
            for i in 0..40 {
                // First half clean, second half faulted: the 4-record
                // frames cross both kinds of op frame.
                let op = if i < 20 { sample_op(i) } else { faulted_op(i) };
                sink.record_op(&op);
                expected.push_op(op);
                if i % 7 == 0 {
                    let s = sample_session(i);
                    sink.record_session(&s);
                    expected.push_session(s);
                }
            }
            let bytes = sink.finish().unwrap();
            let back = read_spill(bytes.as_slice()).unwrap();
            assert_eq!(
                back.to_json().unwrap(),
                expected.to_json().unwrap(),
                "{codec:?}"
            );
            // Filtered readers handle (decode and skip) both op tags.
            let ops: Vec<OpRecord> = SpillReader::new(bytes.as_slice())
                .unwrap()
                .ops_only()
                .map(|r| match r.unwrap() {
                    SpillRecord::Op(op) => op,
                    SpillRecord::Session(_) => panic!("sessions were filtered out"),
                })
                .collect();
            assert_eq!(ops, expected.ops(), "{codec:?}");
            let sessions: Vec<SessionRecord> = SpillReader::new(bytes.as_slice())
                .unwrap()
                .sessions_only()
                .map(|r| match r.unwrap() {
                    SpillRecord::Session(s) => s,
                    SpillRecord::Op(_) => panic!("ops were filtered out"),
                })
                .collect();
            assert_eq!(sessions, expected.sessions(), "{codec:?}");
        }
    }

    #[test]
    fn default_outcomes_never_change_the_byte_stream() {
        // Records whose outcome fields hold the defaults must produce a
        // file indistinguishable from one written by a pre-fault release:
        // the same bytes, under both codecs.
        for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
            // `frame_has_faults` gates the tag choice: all-default frames
            // take the historical tag…
            assert!(!frame_has_faults(&[sample_op(3), sample_op(4)]));
            assert!(frame_has_faults(&[sample_op(3), faulted_op(21)]));
            // …so decoding a clean stream and re-writing it reproduces the
            // original file byte for byte (no fault frames appear).
            let (bytes, _) = write_all(codec, 200);
            let log = read_spill(bytes.as_slice()).unwrap();
            let mut rewrite = SpillSink::with_codec(Vec::new(), codec).unwrap();
            for op in log.ops() {
                rewrite.record_op(op);
            }
            for s in log.sessions() {
                rewrite.record_session(s);
            }
            assert_eq!(rewrite.finish().unwrap(), bytes, "{codec:?}");
        }
    }

    #[test]
    fn v2_fault_frames_detect_bit_flips() {
        let mut sink = SpillSink::with_codec(Vec::new(), SpillCodec::Compressed).unwrap();
        for i in 0..32 {
            sink.record_op(&faulted_op(i));
        }
        let bytes = sink.finish().unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    read_spill(flipped.as_slice()).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn v1_rejects_non_boolean_aborted() {
        // Build a valid v1 fault frame, then corrupt the aborted column:
        // the strict 0/1 decode is v1's only integrity check.
        let mut sink = SpillSink::with_codec(Vec::new(), SpillCodec::Raw)
            .unwrap()
            .without_index();
        sink.record_op(&faulted_op(21)); // retries 1, not aborted
        let mut bytes = sink.finish().unwrap();
        let aborted_at = bytes.len() - 17 - 1; // last column byte before the end marker
        assert_eq!(bytes[aborted_at], 0);
        bytes[aborted_at] = 7;
        let err = read_spill(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("aborted flag"), "{err}");
    }

    #[test]
    fn empty_run_round_trips() {
        let sink = SpillSink::new(Vec::new()).unwrap();
        let bytes = sink.finish().unwrap();
        // Header, the sealed end marker (tag + two u64 totals), then the
        // empty index footer and its fixed-size trailer.
        assert_eq!(
            bytes.len(),
            MAGIC_V2.len() + 1 + 16 + INDEX_FIXED_BYTES + TRAILER_BYTES
        );
        assert_eq!(&bytes[..8], MAGIC_V2);
        let back = read_spill(bytes.as_slice()).unwrap();
        assert!(back.ops().is_empty());
        assert!(back.sessions().is_empty());
        // Without the index the file is exactly the pre-footer layout.
        let bare = SpillSink::new(Vec::new())
            .unwrap()
            .without_index()
            .finish()
            .unwrap();
        assert_eq!(bare.len(), MAGIC_V2.len() + 1 + 16);
        assert_eq!(bare, bytes[..bare.len()]);
        assert!(read_spill(bare.as_slice()).unwrap().ops().is_empty());
    }

    #[test]
    fn unsealed_stream_is_rejected_as_truncated() {
        // A writer that dies before finish() leaves frames but no end
        // marker — that must not read back as a clean (but partial) log.
        let mut sink = SpillSink::new(Vec::new()).unwrap().without_index();
        for i in 0..10 {
            sink.record_op(&sample_op(i));
        }
        let bytes = sink.finish().unwrap();
        let unsealed = &bytes[..bytes.len() - 17]; // strip the end marker
        let err = read_spill(unsealed).unwrap_err();
        // Truncation is UnexpectedEof (salvageable), not InvalidData.
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("end-of-stream"), "{err}");
        // A marker whose counts disagree with the frames is also rejected.
        let mut lying = unsealed.to_vec();
        lying.push(TAG_END);
        lying.extend_from_slice(&99u64.to_le_bytes());
        lying.extend_from_slice(&0u64.to_le_bytes());
        let err = read_spill(lying.as_slice()).unwrap_err();
        assert!(err.to_string().contains("promises"), "{err}");
    }

    #[test]
    fn trailing_garbage_after_the_end_marker_is_rejected() {
        // The historical bug: a valid stream + junk read back clean. Both
        // the streaming and collecting readers must now reject it, with
        // and without an index footer in between.
        for indexed in [false, true] {
            for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
                let mut sink = SpillSink::with_codec(Vec::new(), codec).unwrap();
                if !indexed {
                    sink = sink.without_index();
                }
                for i in 0..10 {
                    sink.record_op(&sample_op(i));
                }
                let mut bytes = sink.finish().unwrap();
                assert!(read_spill(bytes.as_slice()).is_ok());
                bytes.push(0xA5);
                let err = read_spill(bytes.as_slice()).unwrap_err();
                assert_eq!(
                    err.kind(),
                    io::ErrorKind::InvalidData,
                    "{indexed} {codec:?}"
                );
                let mut reader = SpillReader::new(bytes.as_slice()).unwrap();
                let last = (&mut reader).last().expect("at least one item");
                assert!(last.is_err(), "streaming reader accepted garbage");
                // The records themselves were all intact: salvage callers
                // can still tell this apart from mid-stream damage.
                assert!(reader.stream_complete());
            }
        }
    }

    #[test]
    fn index_footer_round_trips_and_matches_the_stream() {
        for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
            let mut sink = SpillSink::with_options(Vec::new(), codec, 8).unwrap();
            let mut expected = UsageLog::new();
            for i in 0..50 {
                let op = if i < 25 { sample_op(i) } else { faulted_op(i) };
                sink.record_op(&op);
                expected.push_op(op);
                if i % 9 == 0 {
                    let s = sample_session(i);
                    sink.record_session(&s);
                    expected.push_session(s);
                }
            }
            let bytes = sink.finish().unwrap();
            let index = FrameIndex::load(&mut io::Cursor::new(&bytes))
                .unwrap()
                .expect("footer present");
            assert_eq!(index.records(), 50 + 6, "{codec:?}");
            let (ops, sessions): (Vec<&FrameIndexEntry>, Vec<&FrameIndexEntry>) =
                index.entries().iter().partition(|e| !e.is_session_frame());
            assert_eq!(ops.iter().map(|e| u64::from(e.records)).sum::<u64>(), 50);
            assert_eq!(
                sessions.iter().map(|e| u64::from(e.records)).sum::<u64>(),
                6
            );
            // Seeking to each entry decodes exactly its records, and the
            // entry's time range matches what the records say.
            let mut reader = SpillReader::new(io::Cursor::new(&bytes)).unwrap();
            for entry in index.entries() {
                reader.seek_to_frames(entry.offset, 1).unwrap();
                let records: Vec<SpillRecord> = (&mut reader).collect::<io::Result<_>>().unwrap();
                assert_eq!(records.len(), entry.records as usize, "{codec:?}");
                let times: Vec<u64> = records
                    .iter()
                    .map(|r| match r {
                        SpillRecord::Op(o) => o.at,
                        SpillRecord::Session(s) => s.end,
                    })
                    .collect();
                assert_eq!(times.iter().min(), Some(&entry.min_time));
                assert_eq!(times.iter().max(), Some(&entry.max_time));
            }
            // A multi-frame seek spanning the whole file reproduces the log.
            reader
                .seek_to_frames(index.entries()[0].offset, index.frames() as u64)
                .unwrap();
            let all: Vec<SpillRecord> = (&mut reader).collect::<io::Result<_>>().unwrap();
            assert_eq!(
                all.len() as u64,
                expected.ops().len() as u64 + expected.sessions().len() as u64
            );
            // Overrunning the frame budget into the end marker is corruption.
            reader
                .seek_to_frames(index.entries()[0].offset, index.frames() as u64 + 1)
                .unwrap();
            let err = (&mut reader).collect::<io::Result<Vec<_>>>().unwrap_err();
            assert!(err.to_string().contains("promised more frames"), "{err}");
        }
    }

    #[test]
    fn unindexed_and_pre_footer_files_load_no_index() {
        let mut sink = SpillSink::new(Vec::new()).unwrap().without_index();
        for i in 0..10 {
            sink.record_op(&sample_op(i));
        }
        let bytes = sink.finish().unwrap();
        assert!(FrameIndex::load(&mut io::Cursor::new(&bytes))
            .unwrap()
            .is_none());
        // Too-short files (shorter than any footered stream) are also None.
        assert!(FrameIndex::load(&mut io::Cursor::new(b"USWGSPL2"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn footer_truncation_degrades_to_streaming() {
        // Cut anywhere inside the footer region: FrameIndex::load falls
        // back to None (no trailer yet) and the streaming reader reports
        // UnexpectedEof with the stream itself complete — never InvalidData.
        let mut sink = SpillSink::with_options(Vec::new(), SpillCodec::Compressed, 8).unwrap();
        for i in 0..30 {
            sink.record_op(&sample_op(i));
        }
        let bytes = sink.finish().unwrap();
        let footer_len = INDEX_FIXED_BYTES + 4 * INDEX_ENTRY_BYTES + TRAILER_BYTES;
        let marker_end = bytes.len() - footer_len;
        for cut in marker_end + 1..bytes.len() {
            let part = &bytes[..cut];
            assert!(
                FrameIndex::load(&mut io::Cursor::new(part))
                    .unwrap()
                    .is_none(),
                "cut at {cut}"
            );
            let mut reader = SpillReader::new(part).unwrap();
            let err = (&mut reader).collect::<io::Result<Vec<_>>>().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
            assert!(reader.stream_complete(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_bad_magic_and_tag() {
        assert!(read_spill(&b"NOTSPILL"[..]).is_err());
        for magic in [MAGIC_V1, MAGIC_V2] {
            let mut raw = magic.to_vec();
            raw.extend_from_slice(&[9, 0, 0, 0, 0]); // unknown tag 9, count 0
            assert!(read_spill(raw.as_slice()).is_err());
        }
    }

    #[test]
    fn rejects_oversized_frame_count() {
        // A corrupt count must fail as InvalidData *before* the reader
        // tries to allocate column buffers for it.
        for magic in [MAGIC_V1, MAGIC_V2] {
            let mut raw = magic.to_vec();
            raw.push(TAG_OPS);
            raw.extend_from_slice(&u32::MAX.to_le_bytes());
            let err = read_spill(raw.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("frame count"), "{err}");
        }
    }

    #[test]
    fn truncated_stream_errors() {
        for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
            let mut sink = SpillSink::with_codec(Vec::new(), codec).unwrap();
            sink.record_op(&sample_op(1));
            let bytes = sink.finish().unwrap();
            // Drop the last byte: the final marker comes up short.
            assert!(read_spill(&bytes[..bytes.len() - 1]).is_err());
        }
    }

    #[test]
    fn v2_detects_every_single_bit_flip() {
        // CRC32 over tag + count + columns, plus the end-marker totals and
        // the magic check, cover every byte of a v2 file: any single-bit
        // corruption must surface as a clean error, never as a silently
        // different log (and never as a panic).
        let (bytes, _) = write_all(SpillCodec::Compressed, 64);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                let err = read_spill(flipped.as_slice());
                assert!(
                    err.is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn reader_streams_the_same_records_read_spill_collects() {
        for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
            let (bytes, expected) = write_all(codec, 300);
            let mut streamed = UsageLog::new();
            let mut reader = SpillReader::new(bytes.as_slice()).unwrap();
            assert_eq!(reader.codec(), codec);
            for record in &mut reader {
                match record.unwrap() {
                    SpillRecord::Op(op) => streamed.push_op(op),
                    SpillRecord::Session(s) => streamed.push_session(s),
                }
            }
            assert_eq!(streamed.to_json().unwrap(), expected.to_json().unwrap());
            // Exhausted readers stay exhausted.
            assert!(reader.next().is_none());
        }
    }

    #[test]
    fn filtered_readers_skip_without_decoding() {
        for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
            // Tiny frames force many skips of each kind, interleaved.
            let mut sink = SpillSink::with_options(Vec::new(), codec, 3).unwrap();
            let mut expected = UsageLog::new();
            for i in 0..25 {
                let op = sample_op(i);
                sink.record_op(&op);
                expected.push_op(op);
                let s = sample_session(i);
                sink.record_session(&s);
                expected.push_session(s);
            }
            let bytes = sink.finish().unwrap();
            let ops: Vec<OpRecord> = SpillReader::new(bytes.as_slice())
                .unwrap()
                .ops_only()
                .map(|r| match r.unwrap() {
                    SpillRecord::Op(op) => op,
                    SpillRecord::Session(_) => panic!("sessions were filtered out"),
                })
                .collect();
            assert_eq!(ops, expected.ops(), "{codec:?}");
            let sessions: Vec<SessionRecord> = SpillReader::new(bytes.as_slice())
                .unwrap()
                .sessions_only()
                .map(|r| match r.unwrap() {
                    SpillRecord::Session(s) => s,
                    SpillRecord::Op(_) => panic!("ops were filtered out"),
                })
                .collect();
            assert_eq!(sessions, expected.sessions(), "{codec:?}");
            // Truncation inside a *skipped* frame still errors cleanly.
            let cut = &bytes[..bytes.len() / 2];
            let results: Vec<_> = SpillReader::new(cut).unwrap().ops_only().collect();
            assert!(results.last().is_some_and(Result::is_err));
        }
    }

    #[test]
    fn reader_fuses_after_an_error() {
        let (bytes, _) = write_all(SpillCodec::Compressed, 10);
        let truncated = &bytes[..bytes.len() - 5];
        let mut reader = SpillReader::new(truncated).unwrap();
        let mut errors = 0;
        for record in &mut reader {
            if record.is_err() {
                errors += 1;
            }
        }
        assert_eq!(errors, 1, "exactly one terminal error");
        assert!(reader.next().is_none());
    }

    #[test]
    fn tiny_frame_caps_cross_many_boundaries() {
        for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
            let mut sink = SpillSink::with_options(Vec::new(), codec, 3).unwrap();
            let mut expected = UsageLog::new();
            for i in 0..20 {
                let op = sample_op(i);
                sink.record_op(&op);
                expected.push_op(op);
                let s = sample_session(i);
                sink.record_session(&s);
                expected.push_session(s);
            }
            let bytes = sink.finish().unwrap();
            let back = read_spill(bytes.as_slice()).unwrap();
            assert_eq!(back.to_json().unwrap(), expected.to_json().unwrap());
        }
    }

    /// A writer that fails after `n` bytes, to exercise deferred errors.
    struct FailAfter {
        left: usize,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.len() > self.left {
                return Err(io::Error::other("disk full"));
            }
            self.left -= buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_surface_at_finish() {
        for codec in [SpillCodec::Raw, SpillCodec::Compressed] {
            let mut sink = SpillSink::with_codec(FailAfter { left: 64 }, codec).unwrap();
            for i in 0..(FRAME_CAP as u64 + 1) {
                sink.record_op(&sample_op(i)); // mid-run flush hits the fault
            }
            assert!(sink.finish().is_err());
        }
    }
}

#[cfg(test)]
mod corrupt_trailer {
    use super::*;

    /// A trailer whose declared `footer_len` exceeds the file must fail
    /// cleanly — the footer-start computation used to underflow (a debug
    /// panic; in release the wrapped offset sailed past the sanity check).
    #[test]
    fn huge_footer_len_is_rejected_not_a_panic() {
        let mut sink = SpillSink::new(Vec::new()).unwrap().without_index();
        for i in 0..10u64 {
            let op = OpRecord {
                at: i,
                user: 0,
                session: 0,
                op: OpKind::Read,
                ino: i,
                bytes: 0,
                file_size: 0,
                response: 0,
                category: FileCategory::REG_USER_RDONLY,
                retries: 0,
                aborted: false,
            };
            sink.record_op(&op);
        }
        let mut bytes = sink.finish().unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(MAGIC_TRAILER);
        let err = FrameIndex::load(&mut std::io::Cursor::new(&bytes))
            .expect_err("a footer larger than the file is corrupt, not absent");
        assert!(
            err.to_string().contains("impossible"),
            "unexpected error: {err}"
        );
    }
}
