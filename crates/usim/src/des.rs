//! The discrete-event driver: all users run concurrently in simulated time
//! against a file-system timing model.
//!
//! This is the reproduction of the paper's measurement setup. Each user
//! alternates between thinking and issuing a system call; the call's
//! semantic effect executes against the VFS immediately, while its latency
//! is the traversal of the timing model's stage chain through the shared
//! resource pool. Response times therefore include queueing behind every
//! other user — the effect Chapter 5 measures.

use crate::compile::{BehaviorState, CompiledPopulation, CompiledUserType};
use crate::log::{OpRecord, SessionRecord, UsageLog};
use crate::session::{ExecutedOp, Session, MAX_ACCESS_BYTES};
use crate::sink::LogSink;
use crate::{RunConfig, UsimError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use uswg_fsc::FileCatalog;
use uswg_netfs::{PendingOp, ServiceModel, Stage, StepOutcome};
use uswg_sim::{ResourcePool, ResourceStats, Scheduler, SimTime, Simulation, World};
use uswg_vfs::{Process, Vfs};

/// Events driving one simulated user.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The user's think time expired: issue the next operation.
    Wake(usize),
    /// An in-flight operation finished a stage.
    Step(usize),
}

/// Per-user simulation state.
struct UserState {
    /// The user's global id: equal to the local slot index in an unsharded
    /// run, and the population-wide index in a shard of a
    /// [`ShardedDesDriver`](crate::ShardedDesDriver) run. Seeds the user's
    /// PRNG stream and labels every record, so a user's behaviour is a
    /// function of the global id alone — independent of how the population
    /// is partitioned.
    gid: usize,
    proc: Process,
    rng: StdRng,
    type_idx: usize,
    behavior: BehaviorState,
    session: Option<Session>,
    session_start: SimTime,
    sessions_done: u32,
    pending: Option<PendingOp>,
    current: Option<(ExecutedOp, SimTime)>,
    /// Attempts made on the current operation (1 = first try). Only read
    /// when fault injection is enabled.
    attempts: u32,
    /// The previous retry backoff, µs — the decorrelated-jitter state.
    prev_backoff: u64,
}

/// The simulated world: file system, catalog, model, pool and users.
/// Generic over the [`LogSink`] receiving its records, so sweeps can stream
/// straight into running summaries instead of materializing the op vector.
struct UsimWorld<S: LogSink> {
    vfs: Vfs,
    catalog: FileCatalog,
    pool: ResourcePool,
    model: Box<dyn ServiceModel>,
    /// Separate stream for model randomness (disk jitter), so the timing
    /// model never perturbs the users' operation selection: the same seed
    /// produces the same op stream under every model and under the direct
    /// driver.
    model_rng: StdRng,
    population: CompiledPopulation,
    config: RunConfig,
    users: Vec<UserState>,
    buf: Vec<u8>,
    sink: S,
    error: Option<UsimError>,
}

impl<S: LogSink> UsimWorld<S> {
    fn finish_session(&mut self, user: usize, now: SimTime) {
        let state = &mut self.users[user];
        if let Some(session) = state.session.take() {
            let m = session.metrics;
            self.sink.record_session(&SessionRecord {
                user: state.gid,
                user_type: session.user_type,
                session: session.ordinal,
                start: state.session_start.micros(),
                end: now.micros(),
                ops: m.ops,
                files_referenced: m.files_referenced,
                file_bytes_referenced: m.file_bytes_referenced,
                bytes_accessed: m.bytes_read + m.bytes_written,
                bytes_read: m.bytes_read,
                bytes_written: m.bytes_written,
                total_response: m.total_response,
            });
            state.sessions_done += 1;
        }
    }
}

impl<S: LogSink> World for UsimWorld<S> {
    type Event = Ev;

    fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
        if self.error.is_some() {
            return; // drain silently after a fault
        }
        let now = sched.now();
        self.vfs.set_clock(now.micros());
        match event {
            Ev::Wake(user) => {
                // Ensure a session is active (or the user is finished).
                if self.users[user].session.is_none() {
                    if self.users[user].sessions_done >= self.config.sessions_per_user {
                        return;
                    }
                    let state = &mut self.users[user];
                    let ordinal = state.sessions_done;
                    let utype = &self.population.types()[state.type_idx];
                    let session = Session::plan(
                        state.gid,
                        state.type_idx,
                        ordinal,
                        utype,
                        &self.catalog,
                        &mut state.rng,
                    );
                    state.session = Some(session);
                    state.session_start = now;
                }
                // Issue the next operation.
                let mut session = self.users[user].session.take().expect("just ensured");
                let state = &mut self.users[user];
                let utype = &self.population.types()[state.type_idx];
                let next = session.next_op(
                    &mut self.vfs,
                    &mut state.proc,
                    utype,
                    &mut self.buf,
                    &mut state.rng,
                );
                match next {
                    Ok(Some(exec)) => {
                        let mut stages = self.model.stages(&exec.request, &mut self.model_rng);
                        // Latency spike on the first attempt: a seeded draw
                        // from the issuing user's own stream, so the outcome
                        // is independent of sharding and backend. The
                        // disabled default draws nothing.
                        if let Some(spike) = self.config.faults.sample_spike(&mut state.rng) {
                            stages.insert(0, Stage::Delay(spike));
                        }
                        state.attempts = 1;
                        state.prev_backoff = 0;
                        state.pending = Some(PendingOp::new(stages));
                        state.current = Some((exec, now));
                        state.session = Some(session);
                        sched.schedule(0, Ev::Step(user));
                    }
                    Ok(None) => {
                        // Logout; the next login follows after the user
                        // type's inter-session gap (0 by default — the
                        // paper runs sessions back to back per terminal).
                        self.users[user].session = Some(session);
                        self.finish_session(user, now);
                        let state = &mut self.users[user];
                        let utype = &self.population.types()[state.type_idx];
                        let gap = utype.sample_inter_session(now.micros(), &mut state.rng);
                        sched.schedule(gap, Ev::Wake(user));
                    }
                    Err(e) => {
                        self.error = Some(e);
                    }
                }
            }
            Ev::Step(user) => {
                let state = &mut self.users[user];
                let Some(pending) = state.pending.as_mut() else {
                    return;
                };
                match pending.advance(&mut self.pool, now) {
                    StepOutcome::NextAt(t) => {
                        sched.schedule_at(t, Ev::Step(user));
                    }
                    StepOutcome::Done => {
                        state.pending = None;
                        // Transient-fault draw for the finished attempt
                        // (per-user stream; nothing is drawn when faults
                        // are off). A failed attempt retries under the
                        // policy: the service traversal is regenerated and
                        // re-entered behind a backoff delay, keeping the
                        // original issue time so the recorded response
                        // spans every attempt. The call's semantic effect
                        // already executed at issue time — faults model the
                        // latency and disposition of the call, not its
                        // file-system state.
                        let faults = self.config.faults;
                        let mut aborted = false;
                        if faults.enabled() && faults.sample_fault(&mut state.rng) {
                            if state.attempts < faults.max_attempts() {
                                let backoff =
                                    faults.retry.backoff(state.prev_backoff, &mut state.rng);
                                state.prev_backoff = backoff;
                                state.attempts += 1;
                                let (exec, _) = state.current.as_ref().expect("op in flight");
                                let mut stages =
                                    self.model.stages(&exec.request, &mut self.model_rng);
                                stages.insert(0, Stage::Delay(backoff));
                                state.pending = Some(PendingOp::new(stages));
                                sched.schedule(0, Ev::Step(user));
                                return;
                            }
                            aborted = true; // retry budget exhausted
                        }
                        let (exec, issued) = state.current.take().expect("op in flight");
                        let response = now - issued;
                        let session = state.session.as_mut().expect("session active");
                        session.metrics.total_response += response;
                        if self.config.record_ops {
                            self.sink.record_op(&OpRecord {
                                at: issued.micros(),
                                user: state.gid,
                                session: session.ordinal,
                                op: exec.request.kind,
                                ino: exec.request.file.0,
                                bytes: exec.request.bytes,
                                file_size: exec.request.file_size,
                                response,
                                category: exec.category,
                                retries: state.attempts.saturating_sub(1),
                                aborted,
                            });
                        }
                        let utype = &self.population.types()[state.type_idx];
                        let think = utype.sample_think(&mut state.behavior, &mut state.rng);
                        sched.schedule(think, Ev::Wake(user));
                    }
                }
            }
        }
    }
}

/// The result of a discrete-event run.
#[derive(Debug)]
pub struct DesReport {
    /// The usage log (ops + sessions).
    pub log: UsageLog,
    /// Final statistics of every model resource, by name.
    pub resources: Vec<(String, ResourceStats)>,
    /// Simulated duration of the whole run.
    pub duration: SimTime,
    /// Name of the timing model used.
    pub model: String,
    /// Total events processed by the kernel.
    pub events: u64,
}

impl DesReport {
    /// Assembles a report from a collected log and the run's statistics —
    /// the single place the two shapes are stitched together, so adding a
    /// run-level statistic means touching [`DesRunStats`] and this
    /// constructor only. Also the seam the sharded driver re-enters with a
    /// merged log and merged statistics.
    pub(crate) fn from_parts(log: UsageLog, stats: DesRunStats) -> Self {
        Self {
            log,
            resources: stats.resources,
            duration: stats.duration,
            model: stats.model,
            events: stats.events,
        }
    }
}

/// Run-level statistics of a sink-driven DES run (everything a
/// [`DesReport`] carries except the materialized log).
#[derive(Debug)]
pub struct DesRunStats {
    /// Final statistics of every model resource, by name.
    pub resources: Vec<(String, ResourceStats)>,
    /// Simulated duration of the whole run.
    pub duration: SimTime,
    /// Name of the timing model used.
    pub model: String,
    /// Total events processed by the kernel.
    pub events: u64,
}

/// XOR mask deriving the model-randomness stream (disk jitter) from the
/// run seed. Shard 0 of a sharded run uses exactly this stream, so a
/// one-shard run replays the unsharded simulation byte for byte.
pub(crate) const MODEL_SEED_XOR: u64 = 0x4D4F_4445_4C00_0001;

/// Multiplier deriving each user's PRNG stream from the run seed and the
/// user's *global* id, so a user's operation stream is independent of how
/// the population is partitioned across shards.
pub(crate) const USER_SEED_MUL: u64 = 0x9E37_79B9;

/// Runs a population against a timing model in simulated time. See the
/// module documentation.
#[derive(Debug, Default)]
pub struct DesDriver;

impl DesDriver {
    /// Creates a driver.
    pub fn new() -> Self {
        Self
    }

    /// Executes the run.
    ///
    /// `vfs` and `catalog` are consumed (the simulation owns them while it
    /// runs); `pool` must be the pool the model registered its resources in.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors and any unexpected
    /// file-system error raised mid-run.
    pub fn run(
        &self,
        vfs: Vfs,
        catalog: FileCatalog,
        population: &CompiledPopulation,
        model: Box<dyn ServiceModel>,
        pool: ResourcePool,
        config: &RunConfig,
    ) -> Result<DesReport, UsimError> {
        config.validate()?;
        let assignment = population.assign(config.n_users);
        // Pre-size the log: sessions are exact, ops come from the compiled
        // population's expected-ops estimate (a hint; growth still works).
        let sessions = config.n_users * config.sessions_per_user as usize;
        let est_ops = if config.record_ops {
            // Memoize the estimate per type: it walks the type's category
            // tables, so evaluating it per user would cost O(users × cats).
            let per_type: Vec<f64> = population
                .types()
                .iter()
                .map(CompiledUserType::expected_ops_per_session)
                .collect();
            let per_user: f64 = assignment.iter().map(|&t| per_type[t]).sum();
            // Cap the upfront reservation: the estimate can overshoot, and
            // 2^20 records (~80 MiB of OpRecords) is the most a hint should
            // pre-commit — beyond that, amortized growth is cheap anyway.
            ((per_user * f64::from(config.sessions_per_user)) as usize).min(1 << 20)
        } else {
            0
        };
        let log = UsageLog::with_capacity(est_ops, sessions);
        let users: Vec<(usize, usize)> = assignment.into_iter().enumerate().collect();
        let (log, stats) = self.run_inner(
            vfs,
            catalog,
            population,
            model,
            pool,
            config,
            users,
            config.seed ^ MODEL_SEED_XOR,
            log,
        )?;
        Ok(DesReport::from_parts(log, stats))
    }

    /// Executes the run, streaming records into `sink` instead of
    /// materializing a [`UsageLog`]. This is the memory-lean entry point for
    /// large-population sweeps; `DesDriver::run` is a thin wrapper passing a
    /// pre-sized log as the sink. Record streams are identical between the
    /// two paths for the same seed.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors and any unexpected
    /// file-system error raised mid-run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_sink<S: LogSink>(
        &self,
        vfs: Vfs,
        catalog: FileCatalog,
        population: &CompiledPopulation,
        model: Box<dyn ServiceModel>,
        pool: ResourcePool,
        config: &RunConfig,
        sink: S,
    ) -> Result<(S, DesRunStats), UsimError> {
        config.validate()?;
        let assignment = population.assign(config.n_users);
        let users: Vec<(usize, usize)> = assignment.into_iter().enumerate().collect();
        self.run_inner(
            vfs,
            catalog,
            population,
            model,
            pool,
            config,
            users,
            config.seed ^ MODEL_SEED_XOR,
            sink,
        )
    }

    /// Shared body of [`Self::run`], [`Self::run_with_sink`] and the
    /// sharded driver's per-shard runs: simulates the given `(global id,
    /// type index)` users — the full population for the unsharded entry
    /// points, one shard's members otherwise. Per-user PRNG streams are
    /// derived from the *global* ids, so each user's operation stream is
    /// the same under every partitioning; `model_seed` seeds the timing
    /// model's jitter stream (per shard in sharded runs).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_inner<S: LogSink>(
        &self,
        vfs: Vfs,
        mut catalog: FileCatalog,
        population: &CompiledPopulation,
        model: Box<dyn ServiceModel>,
        pool: ResourcePool,
        config: &RunConfig,
        users: Vec<(usize, usize)>,
        model_seed: u64,
        sink: S,
    ) -> Result<(S, DesRunStats), UsimError> {
        // Precompute the O(1) alias samplers for session planning's
        // file-selection picks. Draw-for-draw identical to the unsealed
        // modulo path, so seeded replay is unaffected. A catalog the
        // caller already sealed — possibly with a *weighted* popularity
        // policy via `FileCatalog::seal_with` — is left alone: re-sealing
        // here would silently reset those weights to uniform.
        if !catalog.is_sealed() {
            catalog.seal();
        }
        let n_local = users.len();
        let users = users
            .into_iter()
            .map(|(gid, type_idx)| UserState {
                gid,
                proc: vfs.new_process(),
                rng: StdRng::seed_from_u64(config.seed ^ (gid as u64).wrapping_mul(USER_SEED_MUL)),
                type_idx,
                behavior: population.types()[type_idx].new_behavior(),
                session: None,
                session_start: SimTime::ZERO,
                sessions_done: 0,
                pending: None,
                current: None,
                attempts: 0,
                prev_backoff: 0,
            })
            .collect();
        let model_name = model.name().to_string();
        let world = UsimWorld {
            vfs,
            catalog,
            pool,
            model,
            model_rng: StdRng::seed_from_u64(model_seed),
            population: population.clone(),
            config: *config,
            users,
            buf: vec![0xA5u8; MAX_ACCESS_BYTES as usize],
            sink,
            error: None,
        };
        // Steady state holds at most one pending event per user (wake or
        // step); ×2 leaves slack for logout/login turnover. The backend
        // choice never changes the drain order (both drain in (time, seq)
        // order), so it is free to vary per run without breaking replay.
        let mut sim = Simulation::with_backend(world, config.scheduler_backend(), n_local * 2 + 1);
        for u in 0..n_local {
            sim.schedule(0, Ev::Wake(u));
        }
        let events = sim.run();
        let duration = sim.now();
        let world = sim.into_world();
        if let Some(e) = world.error {
            return Err(e);
        }
        let resources = world
            .pool
            .iter()
            .map(|(_, r)| (r.name().to_string(), r.stats()))
            .collect();
        Ok((
            world.sink,
            DesRunStats {
                resources,
                duration,
                model: model_name,
                events,
            },
        ))
    }
}
