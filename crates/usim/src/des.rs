//! The discrete-event driver: all users run concurrently in simulated time
//! against a file-system timing model.
//!
//! This is the reproduction of the paper's measurement setup. Each user
//! alternates between thinking and issuing a system call; the call's
//! semantic effect executes against the VFS immediately, while its latency
//! is the traversal of the timing model's stage chain through the shared
//! resource pool. Response times therefore include queueing behind every
//! other user — the effect Chapter 5 measures.
//!
//! # Memory layout: cold columns, hot slots
//!
//! A million-user population spends almost all of its simulated life logged
//! out, so per-user state is split by temperature. The whole-run facts —
//! id, type, behaviour phase, session count, PRNG — live in [`UserArena`],
//! parallel columns costing tens of bytes per user. Everything a user only
//! needs *while logged in* — the VFS process, the planned [`Session`], the
//! in-flight operation and its retry state — is materialized into a
//! [`HotArena`] slot at login and recycled at logout, so that memory scales
//! with the number of *concurrently active* users, not the population.
//! Materialization is invisible to replay: session planning draws from the
//! same per-user PRNG stream at the same points, so the op stream stays a
//! pure function of (spec, seed, K) — pinned byte for byte by
//! `tests/golden_identity.rs`.

use crate::compile::{BehaviorState, CompiledPopulation};
use crate::log::{OpRecord, SessionRecord, UsageLog};
use crate::session::{ExecutedOp, Session, MAX_ACCESS_BYTES};
use crate::sink::LogSink;
use crate::{RunConfig, UsimError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use uswg_fsc::FileCatalog;
use uswg_netfs::{PendingOp, ServiceModel, Stage, StepOutcome};
use uswg_sim::{ResourcePool, ResourceStats, Scheduler, SimTime, Simulation, World};
use uswg_vfs::{Process, Vfs};

/// Events driving one simulated user. The payload is the *local* user
/// index, packed to `u32` like [`UserArena::gid`] (populations beyond
/// `u32::MAX` are rejected by [`RunConfig::validate`]): with an 8-byte
/// payload a queue entry is 32 bytes, with 4 it is 24 — at a million
/// pending events that is the difference between 32 MB and 24 MB of queue.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The user's think time expired: issue the next operation.
    Wake(u32),
    /// An in-flight operation finished a stage.
    Step(u32),
}

/// Hot-slot sentinel: the user is logged out (idle or finished).
const HOT_NONE: u32 = u32::MAX;

/// Whole-run per-user state as parallel columns (struct of arrays). These
/// are the only fields a population of N users pays for N times; everything
/// session-scoped lives in [`HotArena`] slots.
pub(crate) struct UserArena {
    /// The user's global id: equal to the local slot index in an unsharded
    /// run, and the population-wide index in a shard of a
    /// [`ShardedDesDriver`](crate::ShardedDesDriver) run. Seeds the user's
    /// PRNG stream and labels every record, so a user's behaviour is a
    /// function of the global id alone — independent of how the population
    /// is partitioned. Packed to `u32`; [`RunConfig::validate`] rejects
    /// larger populations.
    gid: Vec<u32>,
    /// Index into the compiled population's types.
    type_idx: Vec<u16>,
    behavior: Vec<BehaviorState>,
    sessions_done: Vec<u32>,
    rng: Vec<StdRng>,
    /// The user's [`HotArena`] slot while logged in, [`HOT_NONE`] otherwise.
    hot: Vec<u32>,
}

impl UserArena {
    /// Builds the columns for `members` — the full population for the
    /// unsharded entry points, one shard's global ids otherwise. The type
    /// assignment is evaluated per member with
    /// [`CompiledPopulation::type_of`], so nothing population-sized is ever
    /// materialized besides the columns themselves.
    pub(crate) fn build(
        population: &CompiledPopulation,
        seed: u64,
        n_users: usize,
        members: impl Iterator<Item = usize>,
        len_hint: usize,
    ) -> Self {
        let mut arena = Self {
            gid: Vec::with_capacity(len_hint),
            type_idx: Vec::with_capacity(len_hint),
            behavior: Vec::with_capacity(len_hint),
            sessions_done: Vec::with_capacity(len_hint),
            rng: Vec::with_capacity(len_hint),
            hot: Vec::with_capacity(len_hint),
        };
        for gid in members {
            let t = population.type_of(gid, n_users);
            arena
                .gid
                .push(u32::try_from(gid).expect("validated: population fits u32 ids"));
            arena
                .type_idx
                .push(u16::try_from(t).expect("more than 65535 user types"));
            arena.behavior.push(population.types()[t].new_behavior());
            arena.sessions_done.push(0);
            arena.rng.push(StdRng::seed_from_u64(
                seed ^ (gid as u64).wrapping_mul(USER_SEED_MUL),
            ));
            arena.hot.push(HOT_NONE);
        }
        arena
    }

    /// Number of users in the arena.
    pub(crate) fn len(&self) -> usize {
        self.gid.len()
    }
}

/// Session-scoped state, materialized at login and recycled at logout: the
/// planned session, the VFS process (fd table), and the in-flight-op/retry
/// slots. A logged-out user carries none of this.
struct HotUser {
    proc: Process,
    session: Session,
    session_start: SimTime,
    pending: Option<PendingOp>,
    current: Option<(ExecutedOp, SimTime)>,
    /// Attempts made on the current operation (1 = first try). Only read
    /// when fault injection is enabled.
    attempts: u32,
    /// The previous retry backoff, µs — the decorrelated-jitter state.
    prev_backoff: u64,
}

/// Free-list arena of [`HotUser`] slots, sized by the peak number of
/// *concurrently logged-in* users rather than the population.
#[derive(Default)]
struct HotArena {
    slots: Vec<Option<HotUser>>,
    free: Vec<u32>,
}

impl HotArena {
    fn acquire(&mut self, hot: HotUser) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(hot);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("hot slots fit u32");
                self.slots.push(Some(hot));
                idx
            }
        }
    }

    fn release(&mut self, idx: u32) -> HotUser {
        let hot = self.slots[idx as usize]
            .take()
            .expect("released slot is live");
        self.free.push(idx);
        hot
    }

    fn get_mut(&mut self, idx: u32) -> &mut HotUser {
        self.slots[idx as usize]
            .as_mut()
            .expect("used slot is live")
    }
}

/// The simulated world: file system, catalog, model, pool and users.
/// Generic over the [`LogSink`] receiving its records, so sweeps can stream
/// straight into running summaries instead of materializing the op vector.
struct UsimWorld<S: LogSink> {
    vfs: Vfs,
    catalog: FileCatalog,
    pool: ResourcePool,
    model: Box<dyn ServiceModel>,
    /// Separate stream for model randomness (disk jitter), so the timing
    /// model never perturbs the users' operation selection: the same seed
    /// produces the same op stream under every model and under the direct
    /// driver.
    model_rng: StdRng,
    population: CompiledPopulation,
    config: RunConfig,
    users: UserArena,
    hot: HotArena,
    buf: Vec<u8>,
    sink: S,
    error: Option<UsimError>,
}

impl<S: LogSink> UsimWorld<S> {
    fn finish_session(&mut self, user: usize, now: SimTime) {
        let slot = self.users.hot[user];
        if slot == HOT_NONE {
            return;
        }
        let hot = self.hot.release(slot);
        self.users.hot[user] = HOT_NONE;
        let m = hot.session.metrics;
        self.sink.record_session(&SessionRecord {
            user: self.users.gid[user] as usize,
            user_type: hot.session.user_type,
            session: hot.session.ordinal,
            start: hot.session_start.micros(),
            end: now.micros(),
            ops: m.ops,
            files_referenced: m.files_referenced,
            file_bytes_referenced: m.file_bytes_referenced,
            bytes_accessed: m.bytes_read + m.bytes_written,
            bytes_read: m.bytes_read,
            bytes_written: m.bytes_written,
            total_response: m.total_response,
        });
        self.users.sessions_done[user] += 1;
    }
}

impl<S: LogSink> World for UsimWorld<S> {
    type Event = Ev;

    fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
        if self.error.is_some() {
            return; // drain silently after a fault
        }
        let now = sched.now();
        self.vfs.set_clock(now.micros());
        match event {
            Ev::Wake(u) => {
                let user = u as usize;
                // Materialize a session (or the user is finished). The VFS
                // process is per session too: process creation is
                // state-free and fd numbers never reach records or PRNG
                // streams, so recycling it with the slot is invisible to
                // replay.
                if self.users.hot[user] == HOT_NONE {
                    if self.users.sessions_done[user] >= self.config.sessions_per_user {
                        return;
                    }
                    let type_idx = usize::from(self.users.type_idx[user]);
                    let session = Session::plan(
                        self.users.gid[user] as usize,
                        type_idx,
                        self.users.sessions_done[user],
                        &self.population.types()[type_idx],
                        &self.catalog,
                        &mut self.users.rng[user],
                    );
                    self.users.hot[user] = self.hot.acquire(HotUser {
                        proc: self.vfs.new_process(),
                        session,
                        session_start: now,
                        pending: None,
                        current: None,
                        attempts: 0,
                        prev_backoff: 0,
                    });
                }
                // Issue the next operation.
                let utype = &self.population.types()[usize::from(self.users.type_idx[user])];
                let hot = self.hot.get_mut(self.users.hot[user]);
                let next = hot.session.next_op(
                    &mut self.vfs,
                    &mut hot.proc,
                    utype,
                    &self.catalog,
                    &mut self.buf,
                    &mut self.users.rng[user],
                );
                match next {
                    Ok(Some(exec)) => {
                        let mut stages = self.model.stages(&exec.request, &mut self.model_rng);
                        // Latency spike on the first attempt: a seeded draw
                        // from the issuing user's own stream, so the outcome
                        // is independent of sharding and backend. The
                        // disabled default draws nothing.
                        if let Some(spike) =
                            self.config.faults.sample_spike(&mut self.users.rng[user])
                        {
                            stages.insert(0, Stage::Delay(spike));
                        }
                        hot.attempts = 1;
                        hot.prev_backoff = 0;
                        hot.pending = Some(PendingOp::new(stages));
                        hot.current = Some((exec, now));
                        sched.schedule(0, Ev::Step(u));
                    }
                    Ok(None) => {
                        // Logout; the next login follows after the user
                        // type's inter-session gap (0 by default — the
                        // paper runs sessions back to back per terminal).
                        // A *finished* user gets no re-wake at all: the
                        // event would pop into the early-return above
                        // without touching state or RNG, and the user's
                        // stream draws nothing further — so skipping both
                        // the gap draw and the event leaves the op stream
                        // byte-identical while cutting one dead queue entry
                        // per user (the whole population's worth lands
                        // simultaneously when sessions are back to back).
                        self.finish_session(user, now);
                        if self.users.sessions_done[user] < self.config.sessions_per_user {
                            let utype =
                                &self.population.types()[usize::from(self.users.type_idx[user])];
                            let gap =
                                utype.sample_inter_session(now.micros(), &mut self.users.rng[user]);
                            sched.schedule(gap, Ev::Wake(u));
                        }
                    }
                    Err(e) => {
                        self.error = Some(e);
                    }
                }
            }
            Ev::Step(u) => {
                let user = u as usize;
                let slot = self.users.hot[user];
                if slot == HOT_NONE {
                    return;
                }
                let hot = self.hot.get_mut(slot);
                let Some(pending) = hot.pending.as_mut() else {
                    return;
                };
                match pending.advance(&mut self.pool, now) {
                    StepOutcome::NextAt(t) => {
                        sched.schedule_at(t, Ev::Step(u));
                    }
                    StepOutcome::Done => {
                        hot.pending = None;
                        // Transient-fault draw for the finished attempt
                        // (per-user stream; nothing is drawn when faults
                        // are off). A failed attempt retries under the
                        // policy: the service traversal is regenerated and
                        // re-entered behind a backoff delay, keeping the
                        // original issue time so the recorded response
                        // spans every attempt. The call's semantic effect
                        // already executed at issue time — faults model the
                        // latency and disposition of the call, not its
                        // file-system state.
                        let faults = self.config.faults;
                        let mut aborted = false;
                        if faults.enabled() && faults.sample_fault(&mut self.users.rng[user]) {
                            if hot.attempts < faults.max_attempts() {
                                let backoff = faults
                                    .retry
                                    .backoff(hot.prev_backoff, &mut self.users.rng[user]);
                                hot.prev_backoff = backoff;
                                hot.attempts += 1;
                                let (exec, _) = hot.current.as_ref().expect("op in flight");
                                let mut stages =
                                    self.model.stages(&exec.request, &mut self.model_rng);
                                stages.insert(0, Stage::Delay(backoff));
                                hot.pending = Some(PendingOp::new(stages));
                                sched.schedule(0, Ev::Step(u));
                                return;
                            }
                            aborted = true; // retry budget exhausted
                        }
                        let (exec, issued) = hot.current.take().expect("op in flight");
                        let response = now - issued;
                        hot.session.metrics.total_response += response;
                        if self.config.record_ops {
                            self.sink.record_op(&OpRecord {
                                at: issued.micros(),
                                user: self.users.gid[user] as usize,
                                session: hot.session.ordinal,
                                op: exec.request.kind,
                                ino: exec.request.file.0,
                                bytes: exec.request.bytes,
                                file_size: exec.request.file_size,
                                response,
                                category: exec.category,
                                retries: hot.attempts.saturating_sub(1),
                                aborted,
                            });
                        }
                        let utype =
                            &self.population.types()[usize::from(self.users.type_idx[user])];
                        let think = utype.sample_think(
                            &mut self.users.behavior[user],
                            &mut self.users.rng[user],
                        );
                        sched.schedule(think, Ev::Wake(u));
                    }
                }
            }
        }
    }
}

/// The result of a discrete-event run.
#[derive(Debug)]
pub struct DesReport {
    /// The usage log (ops + sessions).
    pub log: UsageLog,
    /// Final statistics of every model resource, by name.
    pub resources: Vec<(String, ResourceStats)>,
    /// Simulated duration of the whole run.
    pub duration: SimTime,
    /// Name of the timing model used.
    pub model: String,
    /// Total events processed by the kernel.
    pub events: u64,
}

impl DesReport {
    /// Assembles a report from a collected log and the run's statistics —
    /// the single place the two shapes are stitched together, so adding a
    /// run-level statistic means touching [`DesRunStats`] and this
    /// constructor only. Also the seam the sharded driver re-enters with a
    /// merged log and merged statistics.
    pub(crate) fn from_parts(log: UsageLog, stats: DesRunStats) -> Self {
        Self {
            log,
            resources: stats.resources,
            duration: stats.duration,
            model: stats.model,
            events: stats.events,
        }
    }
}

/// Run-level statistics of a sink-driven DES run (everything a
/// [`DesReport`] carries except the materialized log).
#[derive(Debug)]
pub struct DesRunStats {
    /// Final statistics of every model resource, by name.
    pub resources: Vec<(String, ResourceStats)>,
    /// Simulated duration of the whole run.
    pub duration: SimTime,
    /// Name of the timing model used.
    pub model: String,
    /// Total events processed by the kernel.
    pub events: u64,
}

/// XOR mask deriving the model-randomness stream (disk jitter) from the
/// run seed. Shard 0 of a sharded run uses exactly this stream, so a
/// one-shard run replays the unsharded simulation byte for byte.
pub(crate) const MODEL_SEED_XOR: u64 = 0x4D4F_4445_4C00_0001;

/// Multiplier deriving each user's PRNG stream from the run seed and the
/// user's *global* id, so a user's operation stream is independent of how
/// the population is partitioned across shards.
pub(crate) const USER_SEED_MUL: u64 = 0x9E37_79B9;

/// Capacity hint for a materialized [`UsageLog`]: the session count
/// (saturating — the `n_users × sessions_per_user` product can exceed
/// `usize` long before either factor looks suspicious) and the compiled
/// population's expected op count, both capped so the upfront reservation
/// stays bounded no matter how large the run is. 2^20 records (~80 MiB of
/// `OpRecord`s) is the most a hint should pre-commit — beyond that,
/// amortized growth is cheap anyway, and a 10M-user request must reserve
/// hint-sized, not population-sized, buffers.
pub(crate) fn log_capacity_hint(
    population: &CompiledPopulation,
    config: &RunConfig,
) -> (usize, usize) {
    const CAP: usize = 1 << 20;
    let sessions = config
        .n_users
        .saturating_mul(config.sessions_per_user as usize)
        .min(CAP);
    let est_ops = if config.record_ops {
        let total = population.expected_ops_per_user_session()
            * config.n_users as f64
            * f64::from(config.sessions_per_user);
        if total.is_finite() && total > 0.0 {
            (total as usize).min(CAP) // saturating float→int cast
        } else {
            0
        }
    } else {
        0
    };
    (est_ops, sessions)
}

/// Runs a population against a timing model in simulated time. See the
/// module documentation.
#[derive(Debug, Default)]
pub struct DesDriver;

impl DesDriver {
    /// Creates a driver.
    pub fn new() -> Self {
        Self
    }

    /// Executes the run.
    ///
    /// `vfs` and `catalog` are consumed (the simulation owns them while it
    /// runs); `pool` must be the pool the model registered its resources in.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors and any unexpected
    /// file-system error raised mid-run.
    pub fn run(
        &self,
        vfs: Vfs,
        catalog: FileCatalog,
        population: &CompiledPopulation,
        model: Box<dyn ServiceModel>,
        pool: ResourcePool,
        config: &RunConfig,
    ) -> Result<DesReport, UsimError> {
        config.validate()?;
        let (est_ops, sessions) = log_capacity_hint(population, config);
        let log = UsageLog::with_capacity(est_ops, sessions);
        let users = UserArena::build(
            population,
            config.seed,
            config.n_users,
            0..config.n_users,
            config.n_users,
        );
        let (log, stats) = self.run_inner(
            vfs,
            catalog,
            population,
            model,
            pool,
            config,
            users,
            config.seed ^ MODEL_SEED_XOR,
            log,
        )?;
        Ok(DesReport::from_parts(log, stats))
    }

    /// Executes the run, streaming records into `sink` instead of
    /// materializing a [`UsageLog`]. This is the memory-lean entry point for
    /// large-population sweeps; `DesDriver::run` is a thin wrapper passing a
    /// pre-sized log as the sink. Record streams are identical between the
    /// two paths for the same seed.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors and any unexpected
    /// file-system error raised mid-run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_sink<S: LogSink>(
        &self,
        vfs: Vfs,
        catalog: FileCatalog,
        population: &CompiledPopulation,
        model: Box<dyn ServiceModel>,
        pool: ResourcePool,
        config: &RunConfig,
        sink: S,
    ) -> Result<(S, DesRunStats), UsimError> {
        config.validate()?;
        let users = UserArena::build(
            population,
            config.seed,
            config.n_users,
            0..config.n_users,
            config.n_users,
        );
        self.run_inner(
            vfs,
            catalog,
            population,
            model,
            pool,
            config,
            users,
            config.seed ^ MODEL_SEED_XOR,
            sink,
        )
    }

    /// Shared body of [`Self::run`], [`Self::run_with_sink`] and the
    /// sharded driver's per-shard runs: simulates the users in `users` —
    /// the full population for the unsharded entry points, one shard's
    /// members otherwise. Per-user PRNG streams are derived from the
    /// *global* ids (by [`UserArena::build`]), so each user's operation
    /// stream is the same under every partitioning; `model_seed` seeds the
    /// timing model's jitter stream (per shard in sharded runs).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_inner<S: LogSink>(
        &self,
        vfs: Vfs,
        mut catalog: FileCatalog,
        population: &CompiledPopulation,
        model: Box<dyn ServiceModel>,
        pool: ResourcePool,
        config: &RunConfig,
        users: UserArena,
        model_seed: u64,
        sink: S,
    ) -> Result<(S, DesRunStats), UsimError> {
        // Precompute the O(1) alias samplers for session planning's
        // file-selection picks. Draw-for-draw identical to the unsealed
        // modulo path, so seeded replay is unaffected. A catalog the
        // caller already sealed — possibly with a *weighted* popularity
        // policy via `FileCatalog::seal_with` — is left alone: re-sealing
        // here would silently reset those weights to uniform.
        if !catalog.is_sealed() {
            catalog.seal();
        }
        let n_local = users.len();
        let model_name = model.name().to_string();
        let world = UsimWorld {
            vfs,
            catalog,
            pool,
            model,
            model_rng: StdRng::seed_from_u64(model_seed),
            population: population.clone(),
            config: *config,
            users,
            hot: HotArena::default(),
            buf: vec![0xA5u8; MAX_ACCESS_BYTES as usize],
            sink,
            error: None,
        };
        // The initial one-wake-per-user volley streams lazily from the
        // scheduler's seed mechanism — byte-identical to scheduling each
        // `Wake` eagerly (same `(time, seq)` slots), but the million-user
        // login wave never occupies queue memory. Steady state holds at
        // most one *dynamic* pending event per user (wake or step), and a
        // mostly-idle population holds far fewer, so the queue pre-sizes
        // for a capped slice of the population and grows only if the run
        // actually keeps that many operations in flight. The backend choice
        // never changes the drain order (both drain in (time, seq) order),
        // so it is free to vary per run without breaking replay.
        let capacity = (n_local + 1).min(1 << 16);
        let mut sim = Simulation::with_backend_seeded(
            world,
            config.scheduler_backend(),
            capacity,
            n_local,
            |u| Ev::Wake(u as u32),
        );
        let events = sim.run();
        let duration = sim.now();
        let world = sim.into_world();
        if let Some(e) = world.error {
            return Err(e);
        }
        let resources = world
            .pool
            .iter()
            .map(|(_, r)| (r.name().to_string(), r.stats()))
            .collect();
        Ok((
            world.sink,
            DesRunStats {
                resources,
                duration,
                model: model_name,
                events,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CategoryUsage, PopulationSpec, UserTypeSpec};
    use uswg_distr::DistributionSpec;
    use uswg_fsc::FileCategory;

    fn population() -> CompiledPopulation {
        let t = UserTypeSpec::new(
            "heavy",
            DistributionSpec::exponential(5000.0),
            DistributionSpec::exponential(1024.0),
            vec![CategoryUsage::exponential(
                FileCategory::REG_USER_RDONLY,
                1.42,
                2608.0,
                6.0,
                1.0,
            )],
        );
        CompiledPopulation::compile(&PopulationSpec::single(t).unwrap(), 64).unwrap()
    }

    /// The over-reservation regression the arena diet fixes: a 10M-user
    /// request must reserve hint-sized, not population-sized, buffers —
    /// and the session product must not overflow on any host.
    #[test]
    fn capacity_hint_is_bounded_for_ten_million_users() {
        let population = population();
        let mut config = RunConfig {
            n_users: 10_000_000,
            ..RunConfig::default()
        };
        config.sessions_per_user = u32::MAX; // product far beyond usize::MAX / hint cap
        let (ops, sessions) = log_capacity_hint(&population, &config);
        assert_eq!(sessions, 1 << 20);
        assert!(ops > 0 && ops <= 1 << 20);
        config.record_ops = false;
        let (ops, _) = log_capacity_hint(&population, &config);
        assert_eq!(ops, 0);
    }

    #[test]
    fn arena_build_packs_members_in_order() {
        let population = population();
        let arena = UserArena::build(&population, 7, 10, (1..10).step_by(3), 3);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.gid, vec![1, 4, 7]);
        assert!(arena.hot.iter().all(|&h| h == HOT_NONE));
        assert!(arena.sessions_done.iter().all(|&s| s == 0));
    }

    #[test]
    fn oversized_population_is_rejected() {
        let config = RunConfig {
            n_users: u32::MAX as usize + 1,
            ..RunConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(UsimError::PopulationTooLarge { .. })
        ));
    }
}
