//! The login-session engine: operation/file/amount selection under the
//! model's logical constraints.
//!
//! A session is planned at login: for each file category the user's type
//! says how likely the category is to be touched, how many files are
//! referenced and how much of each file is accessed (`access-per-byte ×
//! file size`). The op stream then interleaves the per-file state machines
//! in random order — the paper's independence assumption "subject to obvious
//! logical constraints; for example, an open must precede any read or write"
//! (Section 3.1.4) — with strictly sequential access within each file
//! (Section 4.2), wrapping with an explicit `lseek` when a pass completes.

use crate::compile::CompiledUserType;
use crate::spec::AccessPattern;
use crate::UsimError;
use rand::RngCore;
use std::borrow::Cow;
use uswg_fsc::{FileCatalog, FileCategory, FileSystemCreator, FileType, UsageClass};
use uswg_netfs::{FileId, OpKind, OpRequest};
use uswg_vfs::{Fd, FsError, OpenFlags, Process, SeekFrom, Vfs};

/// Upper bound on a single access, bytes (guards the exponential tail and
/// bounds the shared I/O buffer).
pub const MAX_ACCESS_BYTES: u64 = 262_144;

/// Safety margin on per-task operation counts, so a pathological sample
/// cannot loop forever.
const OP_GUARD_SLACK: u64 = 64;

/// One executed system call, ready for timing and logging.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecutedOp {
    pub request: OpRequest,
    pub category: FileCategory,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Closed,
    Io,
    Unlink,
    Finished,
}

/// Where a task's file lives, compactly. The path *string* is a pure
/// function of this value, so it is rendered on demand (at open/stat/
/// unlink/readdir time) instead of stored: a materialized `String` costs
/// ~50–80 heap bytes per task, and with tens of thousands of sessions
/// concurrently logged in under contention, per-task strings were one of
/// the largest hot-memory line items.
#[derive(Debug, Clone, Copy)]
enum TaskPath {
    /// Preexisting file or directory: index into the [`FileCatalog`],
    /// whose entry owns the path — rendering borrows it for free.
    Catalog(u32),
    /// Scratch file this session creates: the path is
    /// `scratch_dir(user)/s<ordinal>_c<ci>_f<k>` by construction.
    Scratch { ci: u16, k: u32 },
}

/// Per-file state machine.
#[derive(Debug)]
struct Task {
    category: FileCategory,
    location: TaskPath,
    ino: u64,
    /// Logical size of the file (target size for created files).
    file_size: u64,
    /// Total bytes of I/O this task performs.
    budget: u64,
    done: u64,
    cursor: u64,
    written: u64,
    fd: Option<Fd>,
    phase: Phase,
    is_dir: bool,
    creates: bool,
    unlink_after: bool,
    ops_issued: u64,
    pattern: AccessPattern,
    /// Random-pattern bookkeeping: the next data op must be preceded by a
    /// seek to a randomly chosen offset.
    needs_random_seek: bool,
}

impl Task {
    fn op_guard(&self) -> u64 {
        // Every data op moves at least one byte, plus bookkeeping calls.
        self.budget + OP_GUARD_SLACK
    }

    /// Renders the task's path (see [`TaskPath`]): borrowed straight from
    /// the catalog for preexisting files, formatted fresh for scratch
    /// files. Byte-identical to the strings `plan` used to store.
    fn path<'a>(&self, user: usize, ordinal: u32, catalog: &'a FileCatalog) -> Cow<'a, str> {
        match self.location {
            TaskPath::Catalog(idx) => Cow::Borrowed(catalog.file(idx as usize).path.as_str()),
            TaskPath::Scratch { ci, k } => Cow::Owned(format!(
                "{}/s{ordinal:05}_c{ci:02}_f{k:03}",
                FileSystemCreator::scratch_dir(user)
            )),
        }
    }
}

/// Accumulated per-session metrics.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SessionMetrics {
    pub ops: u64,
    pub files_referenced: u64,
    pub file_bytes_referenced: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub total_response: u64,
}

/// One login session of one user.
#[derive(Debug)]
pub(crate) struct Session {
    user: usize,
    pub user_type: usize,
    pub ordinal: u32,
    tasks: Vec<Task>,
    /// Indices of unfinished tasks (packed `u32` like every per-task id).
    live: Vec<u32>,
    pub metrics: SessionMetrics,
}

impl Session {
    /// Plans a session: selects categories, files and budgets.
    pub fn plan(
        user: usize,
        user_type: usize,
        ordinal: u32,
        utype: &CompiledUserType,
        catalog: &FileCatalog,
        rng: &mut dyn RngCore,
    ) -> Self {
        let mut tasks = Vec::new();
        for (ci, usage) in utype.categories.iter().enumerate() {
            if uniform01(rng) >= usage.pct_users {
                continue;
            }
            let n_files = usage.files.sample_count(rng);
            for k in 0..n_files {
                let preexisting = usage.category.preexisting();
                let (location, ino, file_size) = if preexisting {
                    match catalog.pick(user, usage.category, rng) {
                        Some(idx) => {
                            let f = catalog.file(idx);
                            (TaskPath::Catalog(idx as u32), f.ino, f.size)
                        }
                        None => continue, // nothing of this category exists
                    }
                } else {
                    let size = usage.file_size.sample_count(rng);
                    let location = TaskPath::Scratch {
                        ci: ci as u16,
                        k: k as u32,
                    };
                    (location, 0, size)
                };
                let accessed = (usage.access_per_byte * file_size as f64).round() as u64;
                let budget = if preexisting {
                    accessed
                } else {
                    // Created files are written in full at least once.
                    accessed.max(file_size)
                };
                tasks.push(Task {
                    category: usage.category,
                    location,
                    ino,
                    file_size,
                    budget,
                    done: 0,
                    cursor: 0,
                    written: 0,
                    fd: None,
                    phase: Phase::Closed,
                    is_dir: usage.category.file_type == FileType::Dir,
                    creates: !preexisting,
                    unlink_after: usage.category.usage == UsageClass::Temp,
                    ops_issued: 0,
                    pattern: usage.access_pattern,
                    needs_random_seek: usage.access_pattern == AccessPattern::Random,
                });
            }
        }
        // Sessions stay resident for their whole (possibly long, contended)
        // lifetime: return the plan at exactly its size, not the push-loop's
        // doubled capacity.
        tasks.shrink_to_fit();
        let live = (0..tasks.len() as u32).collect();
        Self {
            user,
            user_type,
            ordinal,
            tasks,
            live,
            metrics: SessionMetrics::default(),
        }
    }

    /// Selects and executes the next system call against `vfs`.
    ///
    /// Returns `Ok(None)` when the session has logged out (no tasks left).
    ///
    /// # Errors
    ///
    /// Propagates unexpected file-system errors; `ENOSPC`/`EFBIG` during
    /// writes degrade the task gracefully instead of failing the run.
    pub fn next_op(
        &mut self,
        vfs: &mut Vfs,
        proc: &mut Process,
        utype: &CompiledUserType,
        catalog: &FileCatalog,
        buf: &mut [u8],
        rng: &mut dyn RngCore,
    ) -> Result<Option<ExecutedOp>, UsimError> {
        loop {
            if self.live.is_empty() {
                return Ok(None);
            }
            // Random selection among unfinished files (the independence
            // assumption of Section 3.1.4).
            let slot = (rng.next_u64() % self.live.len() as u64) as usize;
            let tidx = self.live[slot] as usize;

            // Runaway guard: a task that somehow exceeds its op budget is
            // force-finished rather than looping forever.
            if self.tasks[tidx].ops_issued > self.tasks[tidx].op_guard() {
                self.tasks[tidx].done = self.tasks[tidx].budget;
            }

            match self.step_task(tidx, vfs, proc, utype, catalog, buf, rng)? {
                StepResult::Op(exec) => {
                    self.tasks[tidx].ops_issued += 1;
                    self.metrics.ops += 1;
                    return Ok(Some(exec));
                }
                StepResult::TaskDone => {
                    self.live.swap_remove(slot);
                    // Loop on: pick another task.
                }
                StepResult::TaskAbandoned => {
                    self.live.swap_remove(slot);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step_task(
        &mut self,
        tidx: usize,
        vfs: &mut Vfs,
        proc: &mut Process,
        utype: &CompiledUserType,
        catalog: &FileCatalog,
        buf: &mut [u8],
        rng: &mut dyn RngCore,
    ) -> Result<StepResult, UsimError> {
        let (user, ordinal) = (self.user, self.ordinal);
        let task = &mut self.tasks[tidx];
        match task.phase {
            Phase::Closed => {
                if task.is_dir {
                    // Directories are walked via stat + readdir.
                    match vfs.stat(&task.path(user, ordinal, catalog)) {
                        Ok(md) => {
                            task.ino = md.ino.number();
                            task.phase = Phase::Io;
                            self.metrics.files_referenced += 1;
                            self.metrics.file_bytes_referenced += task.file_size;
                            Ok(StepResult::Op(ExecutedOp {
                                request: OpRequest::metadata(
                                    self.user,
                                    OpKind::Stat,
                                    FileId(task.ino),
                                    task.file_size,
                                ),
                                category: task.category,
                            }))
                        }
                        Err(FsError::NotFound) => Ok(StepResult::TaskAbandoned),
                        Err(e) => Err(e.into()),
                    }
                } else if task.creates {
                    let path = task.path(user, ordinal, catalog);
                    let fd = match vfs.open(proc, &path, OpenFlags::read_write_create()) {
                        Ok(fd) => fd,
                        Err(FsError::NoSpace | FsError::TooManyOpenFiles) => {
                            return Ok(StepResult::TaskAbandoned);
                        }
                        Err(e) => return Err(e.into()),
                    };
                    task.fd = Some(fd);
                    task.ino = vfs.fstat(proc, fd)?.ino.number();
                    task.phase = Phase::Io;
                    self.metrics.files_referenced += 1;
                    self.metrics.file_bytes_referenced += task.file_size;
                    Ok(StepResult::Op(ExecutedOp {
                        request: OpRequest::metadata(
                            self.user,
                            OpKind::Create,
                            FileId(task.ino),
                            task.file_size,
                        ),
                        category: task.category,
                    }))
                } else {
                    let flags = if task.category.usage == UsageClass::ReadWrite {
                        OpenFlags::read_write()
                    } else {
                        OpenFlags::read_only()
                    };
                    let fd = match vfs.open(proc, &task.path(user, ordinal, catalog), flags) {
                        Ok(fd) => fd,
                        Err(FsError::NotFound) => return Ok(StepResult::TaskAbandoned),
                        Err(FsError::TooManyOpenFiles) => return Ok(StepResult::TaskAbandoned),
                        Err(e) => return Err(e.into()),
                    };
                    task.fd = Some(fd);
                    task.ino = vfs.fstat(proc, fd)?.ino.number();
                    task.phase = Phase::Io;
                    self.metrics.files_referenced += 1;
                    self.metrics.file_bytes_referenced += task.file_size;
                    Ok(StepResult::Op(ExecutedOp {
                        request: OpRequest::metadata(
                            self.user,
                            OpKind::Open,
                            FileId(task.ino),
                            task.file_size,
                        ),
                        category: task.category,
                    }))
                }
            }
            Phase::Io => {
                if task.done >= task.budget {
                    // Finished with the data: close (files) or finish (dirs).
                    if task.is_dir {
                        task.phase = Phase::Finished;
                        return Ok(StepResult::TaskDone);
                    }
                    let fd = task.fd.take().expect("file task in Io phase has fd");
                    vfs.close(proc, fd)?;
                    let exec = ExecutedOp {
                        request: OpRequest::metadata(
                            self.user,
                            OpKind::Close,
                            FileId(task.ino),
                            task.file_size,
                        ),
                        category: task.category,
                    };
                    task.phase = if task.unlink_after {
                        Phase::Unlink
                    } else {
                        Phase::Finished
                    };
                    return Ok(StepResult::Op(exec));
                }
                self.io_step(tidx, vfs, proc, utype, catalog, buf, rng)
            }
            Phase::Unlink => {
                match vfs.unlink(&task.path(user, ordinal, catalog)) {
                    Ok(()) | Err(FsError::NotFound) => {}
                    Err(e) => return Err(e.into()),
                }
                let exec = ExecutedOp {
                    request: OpRequest::metadata(
                        self.user,
                        OpKind::Unlink,
                        FileId(task.ino),
                        task.file_size,
                    ),
                    category: task.category,
                };
                task.phase = Phase::Finished;
                Ok(StepResult::Op(exec))
            }
            Phase::Finished => Ok(StepResult::TaskDone),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn io_step(
        &mut self,
        tidx: usize,
        vfs: &mut Vfs,
        proc: &mut Process,
        utype: &CompiledUserType,
        catalog: &FileCatalog,
        buf: &mut [u8],
        rng: &mut dyn RngCore,
    ) -> Result<StepResult, UsimError> {
        let (user, ordinal) = (self.user, self.ordinal);
        let task = &mut self.tasks[tidx];
        let want_write = match task.category.usage {
            UsageClass::ReadOnly => false,
            UsageClass::New | UsageClass::Temp => task.written < task.file_size,
            UsageClass::ReadWrite => {
                if task.creates {
                    task.written < task.file_size
                } else {
                    rng.next_u64().is_multiple_of(2)
                }
            }
        } && !task.is_dir;

        // In the create-fill stage, even random-pattern files are written
        // sequentially (a file must exist before records can be addressed).
        let filling = task.creates && task.written < task.file_size;

        // Random (direct) access: precede each data op with a seek to a
        // uniformly random offset — the database-style behaviour Section
        // 4.2 contrasts with the sequential default.
        if task.pattern == AccessPattern::Random
            && !task.is_dir
            && !filling
            && task.file_size > 0
            && task.needs_random_seek
        {
            let fd = task.fd.expect("Io phase has fd");
            let target = rng.next_u64() % task.file_size;
            vfs.lseek(proc, fd, SeekFrom::Start(target))?;
            task.cursor = target;
            task.needs_random_seek = false;
            return Ok(StepResult::Op(ExecutedOp {
                request: OpRequest::metadata(
                    self.user,
                    OpKind::Seek,
                    FileId(task.ino),
                    task.file_size,
                ),
                category: task.category,
            }));
        }

        // Sequential constraint: wrap to the start with an explicit lseek
        // when the cursor passes the end of the file.
        if !task.is_dir && task.file_size > 0 && task.cursor >= task.file_size {
            let fd = task.fd.expect("Io phase has fd");
            vfs.lseek(proc, fd, SeekFrom::Start(0))?;
            task.cursor = 0;
            return Ok(StepResult::Op(ExecutedOp {
                request: OpRequest::metadata(
                    self.user,
                    OpKind::Seek,
                    FileId(task.ino),
                    task.file_size,
                ),
                category: task.category,
            }));
        }

        let mut access = utype
            .access_size
            .sample_count(rng)
            .clamp(1, MAX_ACCESS_BYTES.min(buf.len() as u64));
        access = access.min(task.budget - task.done);
        let offset = task.cursor;
        if task.pattern == AccessPattern::Random && !filling {
            // The data op consumes this position; the next one seeks anew.
            task.needs_random_seek = true;
            // Keep the access within the file so reads return data
            // (task.cursor < file_size holds after a random seek).
            if !task.is_dir && task.file_size > task.cursor {
                access = access.min(task.file_size - task.cursor).max(1);
            }
        }

        if task.is_dir {
            // Directory data is consumed through readdir; the nominal bytes
            // drive the timing model.
            match vfs.readdir(&task.path(user, ordinal, catalog)) {
                Ok(_) => {}
                Err(FsError::NotFound | FsError::NotADirectory) => {
                    return Ok(StepResult::TaskAbandoned);
                }
                Err(e) => return Err(e.into()),
            }
            task.done += access;
            task.cursor += access;
            self.metrics.bytes_read += access;
            return Ok(StepResult::Op(ExecutedOp {
                request: OpRequest::data(
                    self.user,
                    OpKind::Read,
                    FileId(task.ino),
                    offset,
                    access,
                    task.file_size,
                ),
                category: task.category,
            }));
        }

        let fd = task.fd.expect("Io phase has fd");
        if want_write {
            // During the fill phase, do not write past the target size.
            if task.written < task.file_size {
                access = access.min(task.file_size - task.written).max(1);
            }
            let n = match vfs.write(proc, fd, &buf[..access as usize]) {
                Ok(n) => n as u64,
                Err(FsError::NoSpace | FsError::FileTooLarge) => {
                    // Device full: stop writing, degrade to finishing early.
                    task.done = task.budget;
                    return Ok(StepResult::TaskDone);
                }
                Err(e) => return Err(e.into()),
            };
            task.cursor += n;
            task.written += n;
            task.done += n;
            self.metrics.bytes_written += n;
            Ok(StepResult::Op(ExecutedOp {
                request: OpRequest::data(
                    self.user,
                    OpKind::Write,
                    FileId(task.ino),
                    offset,
                    n,
                    task.file_size,
                ),
                category: task.category,
            }))
        } else {
            let n = vfs.read(proc, fd, &mut buf[..access as usize])? as u64;
            if n == 0 {
                // EOF. An empty file has nothing to give: finish the task;
                // otherwise wrap on the next selection.
                if task.file_size == 0 || task.written == 0 && task.creates {
                    task.done = task.budget;
                } else {
                    task.cursor = task.file_size;
                }
            } else {
                task.cursor += n;
                task.done += n;
                self.metrics.bytes_read += n;
            }
            Ok(StepResult::Op(ExecutedOp {
                request: OpRequest::data(
                    self.user,
                    OpKind::Read,
                    FileId(task.ino),
                    offset,
                    n,
                    task.file_size,
                ),
                category: task.category,
            }))
        }
    }
}

/// Outcome of stepping one task.
#[derive(Debug)]
enum StepResult {
    /// A system call was executed.
    Op(ExecutedOp),
    /// The task completed without emitting a call; prune and pick another.
    TaskDone,
    /// The task could not run (missing file, fd pressure); prune silently.
    TaskAbandoned,
}

fn uniform01(rng: &mut dyn RngCore) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (rng.next_u64() >> 11) as f64 * SCALE
}
