//! Time-varying user behaviour — the Section 6.2 extensions.
//!
//! The paper's model is stationary and lists two refinements as future
//! work: "to simulate time-varying user behavior, such as transitions
//! between CPU-bound and I/O-bound phases, a Markov process model can be
//! used", and "from a previous study \[CS85\], we know that the distribution
//! of inter-login times varies depending on time of day". This module
//! implements both:
//!
//! * [`PhaseModel`] — a discrete-time Markov chain over behavioural phases;
//!   each phase scales the user's think time (an I/O-bound phase has scale
//!   < 1, a CPU-bound phase > 1). The chain steps once per completed
//!   operation.
//! * [`DiurnalProfile`] — 24 hourly factors applied to inter-login
//!   (inter-session) times, so simulated days have busy and quiet hours.

use crate::UsimError;
use serde::{Deserialize, Serialize};

/// One behavioural phase of a [`PhaseModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseState {
    /// Display name ("I/O-bound", "CPU-bound", …).
    pub name: String,
    /// Multiplier applied to sampled think times while in this phase.
    pub think_scale: f64,
}

/// A discrete-time Markov chain over behavioural phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseModel {
    states: Vec<PhaseState>,
    /// Row-stochastic transition matrix; `transitions[i][j]` is the
    /// probability of moving from phase `i` to phase `j` after one
    /// operation.
    transitions: Vec<Vec<f64>>,
}

impl PhaseModel {
    /// Creates a phase model.
    ///
    /// # Errors
    ///
    /// Returns [`UsimError::BadProbability`] when the matrix is not square
    /// over the states, a row does not sum to one (±1e-6), an entry is
    /// negative, or a scale is negative/non-finite.
    pub fn new(states: Vec<PhaseState>, transitions: Vec<Vec<f64>>) -> Result<Self, UsimError> {
        if states.is_empty() {
            return Err(UsimError::BadProbability {
                name: "phase_states",
                value: 0.0,
            });
        }
        if transitions.len() != states.len() {
            return Err(UsimError::BadProbability {
                name: "transition_rows",
                value: transitions.len() as f64,
            });
        }
        for state in &states {
            if !(state.think_scale.is_finite() && state.think_scale >= 0.0) {
                return Err(UsimError::BadProbability {
                    name: "think_scale",
                    value: state.think_scale,
                });
            }
        }
        for row in &transitions {
            if row.len() != states.len() {
                return Err(UsimError::BadProbability {
                    name: "transition_cols",
                    value: row.len() as f64,
                });
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-6 || row.iter().any(|&p| p < 0.0) {
                return Err(UsimError::BadProbability {
                    name: "transition_row_sum",
                    value: sum,
                });
            }
        }
        Ok(Self {
            states,
            transitions,
        })
    }

    /// The classic two-phase I/O-bound / CPU-bound model: in the I/O phase
    /// think time shrinks by `io_scale`, in the CPU phase it grows by
    /// `cpu_scale`; `persistence` is the probability of staying in the
    /// current phase each step.
    ///
    /// # Errors
    ///
    /// Returns [`UsimError::BadProbability`] for `persistence` outside
    /// `[0, 1]` or non-positive scales.
    pub fn io_cpu(io_scale: f64, cpu_scale: f64, persistence: f64) -> Result<Self, UsimError> {
        if !(0.0..=1.0).contains(&persistence) {
            return Err(UsimError::BadProbability {
                name: "persistence",
                value: persistence,
            });
        }
        Self::new(
            vec![
                PhaseState {
                    name: "I/O-bound".into(),
                    think_scale: io_scale,
                },
                PhaseState {
                    name: "CPU-bound".into(),
                    think_scale: cpu_scale,
                },
            ],
            vec![
                vec![persistence, 1.0 - persistence],
                vec![1.0 - persistence, persistence],
            ],
        )
    }

    /// The phases.
    pub fn states(&self) -> &[PhaseState] {
        &self.states
    }

    /// Steps the chain: given the current state and a uniform draw `u` in
    /// `[0, 1)`, returns the next state index.
    pub fn step(&self, current: usize, u: f64) -> usize {
        let row = &self.transitions[current.min(self.states.len() - 1)];
        let mut acc = 0.0;
        for (next, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return next;
            }
        }
        row.len() - 1
    }

    /// The think-time multiplier of a state.
    pub fn scale(&self, state: usize) -> f64 {
        self.states[state.min(self.states.len() - 1)].think_scale
    }
}

/// 24 hourly activity factors applied to inter-login times.
///
/// A factor above 1 stretches the gap between sessions (a quiet hour);
/// below 1 compresses it (a busy hour).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    hourly: Vec<f64>,
}

impl DiurnalProfile {
    /// Creates a profile from 24 positive hourly factors (index 0 = the
    /// hour starting at simulated time zero).
    ///
    /// # Errors
    ///
    /// Returns [`UsimError::BadProbability`] unless exactly 24 finite,
    /// positive factors are supplied.
    pub fn new(hourly: Vec<f64>) -> Result<Self, UsimError> {
        if hourly.len() != 24 {
            return Err(UsimError::BadProbability {
                name: "hourly_factors",
                value: hourly.len() as f64,
            });
        }
        if hourly.iter().any(|&f| !f.is_finite() || f <= 0.0) {
            return Err(UsimError::BadProbability {
                name: "hourly_factor",
                value: -1.0,
            });
        }
        Ok(Self { hourly })
    }

    /// A campus-lab shape after \[CS85\]: quiet nights (large factors),
    /// a busy afternoon and evening.
    pub fn university_lab() -> Self {
        let hourly = vec![
            6.0, 8.0, 10.0, 10.0, 10.0, 8.0, // 00-05: night
            4.0, 2.0, 1.2, 1.0, 0.9, 0.8, // 06-11: morning ramp
            0.8, 0.7, 0.6, 0.6, 0.7, 0.8, // 12-17: afternoon peak
            0.9, 0.8, 0.9, 1.5, 3.0, 5.0, // 18-23: evening tail-off
        ];
        Self { hourly }
    }

    /// The factor in effect at simulated time `micros`.
    pub fn factor_at(&self, micros: u64) -> f64 {
        const HOUR_US: u64 = 3_600_000_000;
        let hour = (micros / HOUR_US) % 24;
        self.hourly[hour as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_model_validation() {
        assert!(PhaseModel::new(vec![], vec![]).is_err());
        let states = vec![
            PhaseState {
                name: "a".into(),
                think_scale: 1.0,
            },
            PhaseState {
                name: "b".into(),
                think_scale: 2.0,
            },
        ];
        // Wrong row count.
        assert!(PhaseModel::new(states.clone(), vec![vec![1.0, 0.0]]).is_err());
        // Row does not sum to 1.
        assert!(PhaseModel::new(states.clone(), vec![vec![0.5, 0.4], vec![0.0, 1.0]]).is_err());
        // Negative scale.
        let bad = vec![PhaseState {
            name: "x".into(),
            think_scale: -1.0,
        }];
        assert!(PhaseModel::new(bad, vec![vec![1.0]]).is_err());
        // Valid.
        assert!(PhaseModel::new(states, vec![vec![0.9, 0.1], vec![0.1, 0.9]]).is_ok());
    }

    #[test]
    fn io_cpu_helper() {
        let m = PhaseModel::io_cpu(0.2, 5.0, 0.9).unwrap();
        assert_eq!(m.states().len(), 2);
        assert!((m.scale(0) - 0.2).abs() < 1e-12);
        assert!((m.scale(1) - 5.0).abs() < 1e-12);
        assert!(PhaseModel::io_cpu(0.2, 5.0, 1.5).is_err());
    }

    #[test]
    fn stepping_follows_probabilities() {
        let m = PhaseModel::io_cpu(0.5, 2.0, 0.8).unwrap();
        // Row 0 = [0.8, 0.2]: u < 0.8 stays in 0, otherwise moves to 1.
        assert_eq!(m.step(0, 0.5), 0);
        assert_eq!(m.step(0, 0.85), 1);
        // Row 1 = [0.2, 0.8]: u < 0.2 moves to 0, otherwise stays in 1.
        assert_eq!(m.step(1, 0.1), 0);
        assert_eq!(m.step(1, 0.95), 1);
        // Out-of-range current state clamps to the last row.
        assert_eq!(m.step(99, 0.1), 0);
    }

    #[test]
    fn chain_reaches_stationarity() {
        let m = PhaseModel::io_cpu(1.0, 1.0, 0.7).unwrap();
        // Symmetric chain: long-run occupancy ~50/50.
        let mut state = 0;
        let mut in_zero = 0;
        let mut u = 0.123f64;
        for _ in 0..100_000 {
            u = (u * 69_069.0 + 0.01) % 1.0; // cheap deterministic stream
            state = m.step(state, u);
            if state == 0 {
                in_zero += 1;
            }
        }
        let frac = in_zero as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.05, "occupancy {frac}");
    }

    #[test]
    fn diurnal_validation_and_lookup() {
        assert!(DiurnalProfile::new(vec![1.0; 23]).is_err());
        assert!(DiurnalProfile::new(vec![0.0; 24]).is_err());
        let p = DiurnalProfile::university_lab();
        const HOUR_US: u64 = 3_600_000_000;
        assert!((p.factor_at(0) - 6.0).abs() < 1e-12);
        assert!((p.factor_at(14 * HOUR_US) - 0.6).abs() < 1e-12);
        // Wraps at 24h.
        assert!((p.factor_at(24 * HOUR_US) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let m = PhaseModel::io_cpu(0.3, 4.0, 0.85).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: PhaseModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        let d = DiurnalProfile::university_lab();
        let json = serde_json::to_string(&d).unwrap();
        let back: DiurnalProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
