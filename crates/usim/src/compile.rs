//! Compilation of specifications into CDF tables.
//!
//! "First, file distributions and usage distributions must be specified.
//! These are used to compute tables of cumulative distribution function
//! (CDF) values for use in random number generation." (Section 4.1) — this
//! module is that step: every distribution in a [`PopulationSpec`] becomes a
//! [`CdfTable`] at the configured resolution, and sampling during simulation
//! is pure inverse-transform table lookup, exactly as in the original tool.

use crate::spec::AccessPattern;
use crate::{DiurnalProfile, PhaseModel, PopulationSpec, UsimError};
use rand::RngCore;
use uswg_distr::CdfTable;
use uswg_fsc::FileCategory;

/// A compiled category usage: CDF tables plus scalar parameters.
#[derive(Debug, Clone)]
pub(crate) struct CompiledCategoryUsage {
    pub category: FileCategory,
    pub access_per_byte: f64,
    pub file_size: CdfTable,
    pub files: CdfTable,
    pub pct_users: f64,
    pub access_pattern: AccessPattern,
}

/// Per-user progress of the time-varying behaviour models (current Markov
/// phase). Create one per simulated user with
/// [`CompiledUserType::new_behavior`]. Packed to `u32`: the whole
/// population pays for this once per user (a user-arena column), and a
/// phase chain is spec data — a handful of states, nowhere near 2³².
#[derive(Debug, Clone, Copy, Default)]
pub struct BehaviorState {
    phase: u32,
}

/// A compiled user type, ready for simulation.
#[derive(Debug, Clone)]
pub struct CompiledUserType {
    pub(crate) name: String,
    pub(crate) think_time: CdfTable,
    pub(crate) access_size: CdfTable,
    pub(crate) categories: Vec<CompiledCategoryUsage>,
    pub(crate) inter_session_time: CdfTable,
    pub(crate) phases: Option<PhaseModel>,
    pub(crate) diurnal: Option<DiurnalProfile>,
}

impl CompiledUserType {
    /// The user type's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mean think time recorded from the spec, µs.
    pub fn mean_think_time(&self) -> f64 {
        self.think_time.mean()
    }

    /// Mean access size recorded from the spec, bytes.
    pub fn mean_access_size(&self) -> f64 {
        self.access_size.mean()
    }

    /// Fresh behaviour state (phase chain at state 0) for one user.
    pub fn new_behavior(&self) -> BehaviorState {
        BehaviorState::default()
    }

    /// Samples the think time after one operation, stepping the phase chain
    /// if one is configured. Both drivers call this at the same point of
    /// the per-user RNG stream, so runs stay driver-independent.
    pub fn sample_think(&self, behavior: &mut BehaviorState, rng: &mut dyn RngCore) -> u64 {
        let base = self.think_time.sample(rng);
        let scale = match &self.phases {
            Some(model) => {
                let u = uniform01(rng);
                behavior.phase = model.step(behavior.phase as usize, u) as u32;
                model.scale(behavior.phase as usize)
            }
            None => 1.0,
        };
        (base * scale).round().max(0.0) as u64
    }

    /// Samples the logout→login gap at time `now_micros`, applying the
    /// diurnal profile if configured.
    pub fn sample_inter_session(&self, now_micros: u64, rng: &mut dyn RngCore) -> u64 {
        let base = self.inter_session_time.sample(rng);
        let factor = self
            .diurnal
            .as_ref()
            .map_or(1.0, |d| d.factor_at(now_micros));
        (base * factor).round().max(0.0) as u64
    }

    /// Expected file-access system calls per login session, estimated from
    /// the compiled tables' recorded means: per category, `pct_users ×
    /// mean_files × (bookkeeping calls + data calls)`, where data calls ≈
    /// `access_per_byte × mean_file_size / mean_access_size`. Used to
    /// pre-size usage logs; it is a capacity hint, not a guarantee.
    pub fn expected_ops_per_session(&self) -> f64 {
        // open + close + the occasional create/unlink/stat/seek per file.
        const BOOKKEEPING_OPS: f64 = 4.0;
        let access = self.access_size.mean().max(1.0);
        self.categories
            .iter()
            .map(|c| {
                let data_ops = (c.access_per_byte * c.file_size.mean().max(0.0) / access).ceil();
                c.pct_users * c.files.mean().max(0.0) * (BOOKKEEPING_OPS + data_ops)
            })
            .sum()
    }

    /// Total CDF-table bytes held by this type — the memory cost the paper
    /// flags in Section 4.2 ("the product of the number of user types,
    /// number of file types, and the number of sample values").
    pub fn table_memory_bytes(&self) -> usize {
        self.think_time.memory_bytes()
            + self.access_size.memory_bytes()
            + self.inter_session_time.memory_bytes()
            + self
                .categories
                .iter()
                .map(|c| c.file_size.memory_bytes() + c.files.memory_bytes())
                .sum::<usize>()
    }
}

/// A compiled population: types, fractions and user→type assignment.
#[derive(Debug, Clone)]
pub struct CompiledPopulation {
    types: Vec<CompiledUserType>,
    fractions: Vec<f64>,
}

impl CompiledPopulation {
    /// Compiles every distribution in `spec` to CDF tables with `resolution`
    /// sample points.
    ///
    /// # Errors
    ///
    /// Propagates distribution construction/tabulation errors.
    pub fn compile(spec: &PopulationSpec, resolution: usize) -> Result<Self, UsimError> {
        let mut types = Vec::with_capacity(spec.types().len());
        let mut fractions = Vec::with_capacity(spec.types().len());
        for (t, frac) in spec.types() {
            let mut categories = Vec::with_capacity(t.categories.len());
            for usage in &t.categories {
                categories.push(CompiledCategoryUsage {
                    category: usage.category,
                    access_per_byte: usage.access_per_byte,
                    file_size: CdfTable::from_distribution(&*usage.file_size.build()?, resolution)?,
                    files: CdfTable::from_distribution(&*usage.files.build()?, resolution)?,
                    pct_users: usage.pct_users,
                    access_pattern: usage.access_pattern,
                });
            }
            types.push(CompiledUserType {
                name: t.name.clone(),
                think_time: CdfTable::from_distribution(&*t.think_time.build()?, resolution)?,
                access_size: CdfTable::from_distribution(&*t.access_size.build()?, resolution)?,
                categories,
                inter_session_time: CdfTable::from_distribution(
                    &*t.inter_session_time.build()?,
                    resolution,
                )?,
                phases: t.phases.clone(),
                diurnal: t.diurnal.clone(),
            });
            fractions.push(*frac);
        }
        Ok(Self { types, fractions })
    }

    /// The compiled types.
    pub fn types(&self) -> &[CompiledUserType] {
        &self.types
    }

    /// Deterministic proportional assignment of users to type indices (see
    /// [`PopulationSpec::assign`]).
    pub fn assign(&self, n_users: usize) -> Vec<usize> {
        (0..n_users).map(|i| self.type_of(i, n_users)).collect()
    }

    /// The type index [`Self::assign`] gives user `i` of an `n_users`
    /// population — the same proportional split, evaluated per user in
    /// O(types). This is what the columnar user arenas call, so a
    /// million-user run never materializes the population-wide assignment
    /// vector.
    pub fn type_of(&self, i: usize, n_users: usize) -> usize {
        let target = (i as f64 + 0.5) / n_users as f64;
        let mut acc = 0.0;
        let mut chosen = self.types.len() - 1;
        for (idx, &frac) in self.fractions.iter().enumerate() {
            acc += frac;
            if target < acc + 1e-12 {
                chosen = idx;
                break;
            }
        }
        chosen
    }

    /// Fraction-weighted expected file-access calls per login session
    /// across the population: the O(types) log-capacity hint the DES
    /// driver pre-sizes with. The proportional assignment differs from the
    /// exact fractions only by per-type rounding, which a hint can ignore
    /// — evaluating the estimate per assigned user would cost
    /// O(users × categories).
    pub fn expected_ops_per_user_session(&self) -> f64 {
        self.types
            .iter()
            .zip(&self.fractions)
            .map(|(t, frac)| frac * t.expected_ops_per_session())
            .sum()
    }

    /// Total CDF-table memory across all types, bytes.
    pub fn table_memory_bytes(&self) -> usize {
        self.types.iter().map(|t| t.table_memory_bytes()).sum()
    }
}

fn uniform01(rng: &mut dyn RngCore) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (rng.next_u64() >> 11) as f64 * SCALE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CategoryUsage, UserTypeSpec};
    use uswg_distr::DistributionSpec;

    fn population() -> PopulationSpec {
        let t = UserTypeSpec::new(
            "heavy",
            DistributionSpec::exponential(5000.0),
            DistributionSpec::exponential(1024.0),
            vec![
                CategoryUsage::exponential(FileCategory::REG_USER_RDONLY, 1.42, 2608.0, 6.0, 1.0),
                CategoryUsage::exponential(FileCategory::REG_USER_TEMP, 2.0, 9233.0, 9.7, 0.59),
            ],
        );
        PopulationSpec::single(t).unwrap()
    }

    #[test]
    fn compiles_all_tables() {
        let pop = CompiledPopulation::compile(&population(), 256).unwrap();
        assert_eq!(pop.types().len(), 1);
        let t = &pop.types()[0];
        assert_eq!(t.name(), "heavy");
        assert_eq!(t.categories.len(), 2);
        assert!((t.mean_think_time() - 5000.0).abs() < 1e-9);
        assert!((t.mean_access_size() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn memory_scales_with_resolution() {
        let lo = CompiledPopulation::compile(&population(), 64).unwrap();
        let hi = CompiledPopulation::compile(&population(), 640).unwrap();
        // Near-linear in resolution; the degenerate constant inter-session
        // table (2 points at any resolution) keeps it just under 10×.
        assert!(hi.table_memory_bytes() > 9 * lo.table_memory_bytes());
        assert!(hi.table_memory_bytes() <= 10 * lo.table_memory_bytes());
    }

    #[test]
    fn assignment_matches_spec_assignment() {
        let spec = population();
        let compiled = CompiledPopulation::compile(&spec, 64).unwrap();
        assert_eq!(spec.assign(7), compiled.assign(7));
    }
}
