//! Streaming destinations for usage records.
//!
//! At paper scale (a handful of users × 50 sessions) materializing every
//! [`OpRecord`] is free; at the ROADMAP's millions-of-users scale the op
//! vector **is** the memory ceiling — a sweep point only needs running
//! summaries of the op stream. [`LogSink`] abstracts where records go: the
//! default [`UsageLog`] sink collects everything (so existing figures are
//! byte-identical), while [`SummarySink`] folds each record into running
//! aggregates and retains O(1) memory regardless of run length.

use crate::log::{OpRecord, SessionRecord, UsageLog};
use std::sync::mpsc::{Receiver, SyncSender};

/// A destination for the records a driver produces.
///
/// Methods take references so a sink never forces a copy it does not need.
pub trait LogSink {
    /// Receives one executed operation. Only called when the run's
    /// `record_ops` flag is on.
    fn record_op(&mut self, op: &OpRecord);

    /// Receives one completed session.
    fn record_session(&mut self, session: &SessionRecord);
}

impl LogSink for UsageLog {
    fn record_op(&mut self, op: &OpRecord) {
        self.push_op(*op);
    }

    fn record_session(&mut self, session: &SessionRecord) {
        self.push_session(*session);
    }
}

/// A tee: every record goes to both sinks, left first. Lets one run feed a
/// streaming summary *and* a spill file (the `uswg run --spill` path) with
/// no extra driver machinery.
impl<A: LogSink, B: LogSink> LogSink for (A, B) {
    fn record_op(&mut self, op: &OpRecord) {
        self.0.record_op(op);
        self.1.record_op(op);
    }

    fn record_session(&mut self, session: &SessionRecord) {
        self.0.record_session(session);
        self.1.record_session(session);
    }
}

/// Bounded-channel sink: forwards each op record to a consumer on another
/// thread, blocking once the channel holds `capacity` records. That block
/// *is* the backpressure — a DES run producing on one thread and a
/// consumer pacing on another hold at most O(capacity) records resident
/// between them, however long the run. Session records are dropped (the
/// consumer side of this sink is an op stream).
///
/// If the receiver goes away the sink stops sending and the run finishes
/// normally; [`ChannelSink::is_disconnected`] reports that it happened.
#[derive(Debug)]
pub struct ChannelSink {
    tx: SyncSender<OpRecord>,
    disconnected: bool,
}

impl ChannelSink {
    /// A sink/receiver pair over a channel buffering `capacity` records
    /// (floored at one).
    pub fn bounded(capacity: usize) -> (Self, Receiver<OpRecord>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
        (
            Self {
                tx,
                disconnected: false,
            },
            rx,
        )
    }

    /// True once the receiver has hung up; later records are discarded.
    pub fn is_disconnected(&self) -> bool {
        self.disconnected
    }
}

impl LogSink for ChannelSink {
    fn record_op(&mut self, op: &OpRecord) {
        if self.disconnected {
            return;
        }
        if self.tx.send(*op).is_err() {
            self.disconnected = true;
        }
    }

    fn record_session(&mut self, _session: &SessionRecord) {}
}

/// One metric's running moments: the raw sum (so the reported mean is
/// bit-identical to post-hoc `sum / n` aggregation), a Welford running
/// mean + M2 (so the variance never suffers the catastrophic cancellation
/// of the naive `sumsq − sum²/n` form — at a billion low-variance samples
/// that form loses every significant digit, precisely the scale this sink
/// exists for), and the extrema.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Moments {
    /// Exact running sum of the samples.
    sum: f64,
    /// Welford running mean.
    mean: f64,
    /// Welford sum of squared deviations from the running mean.
    m2: f64,
    /// Smallest sample (+∞ while empty).
    min: f64,
    /// Largest sample (−∞ while empty).
    max: f64,
}

impl Default for Moments {
    fn default() -> Self {
        Self {
            sum: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Moments {
    /// Folds in one sample; `n` is the sample count *including* `x`.
    fn record(&mut self, x: f64, n: u64) {
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Chan's parallel update: folds `other` (holding `nb` samples) into
    /// `self` (holding `na`), exactly as stable as sequential Welford.
    fn merge(&mut self, other: &Self, na: u64, nb: u64) {
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if nb == 0 {
            return;
        }
        if na == 0 {
            self.mean = other.mean;
            self.m2 = other.m2;
            return;
        }
        let n = (na + nb) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * nb as f64 / n;
        self.m2 += other.m2 + delta * delta * (na as f64) * (nb as f64) / n;
    }

    /// Sample standard deviation over `n` samples.
    fn std_dev(&self, n: u64) -> f64 {
        if n < 2 {
            0.0
        } else {
            (self.m2.max(0.0) / (n - 1) as f64).sqrt()
        }
    }
}

/// Streaming-aggregate sink: folds the op stream into the figures' headline
/// metrics without materializing any records.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SummarySink {
    /// Operations observed.
    pub ops: u64,
    /// Data operations (reads/writes moving at least one byte).
    pub data_ops: u64,
    /// Bytes moved by data operations.
    pub data_bytes: u64,
    /// Total response time over all operations, µs.
    pub total_response: u64,
    /// Moments of data-op access sizes.
    access_size: Moments,
    /// Moments of data-op response times.
    response: Moments,
    /// Sessions observed.
    pub sessions: u64,
    /// Total bytes accessed across sessions.
    pub session_bytes_accessed: u64,
    /// Retried attempts summed over all operations (fault injection).
    pub retries: u64,
    /// Operations that exhausted their retry budget and were aborted.
    pub aborted_ops: u64,
    /// Bytes moved by *aborted* data operations — subtract from
    /// `data_bytes` for goodput.
    pub aborted_bytes: u64,
}

impl SummarySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `other` into `self`, as if every record `other` saw had been
    /// recorded here too. This is the reduction step for sharded or
    /// replicated runs: fan the population out over independent sinks, then
    /// merge them pairwise — counts, sums and extrema combine exactly, and
    /// the variance accumulators combine via Chan's parallel formula, so a
    /// merged sink differs from a single-sink run of the concatenated
    /// stream only by floating-point rounding order (≤ 1e-9 relative,
    /// property-tested).
    pub fn merge(&mut self, other: &SummarySink) {
        self.access_size
            .merge(&other.access_size, self.data_ops, other.data_ops);
        self.response
            .merge(&other.response, self.data_ops, other.data_ops);
        self.ops += other.ops;
        self.data_ops += other.data_ops;
        self.data_bytes += other.data_bytes;
        self.total_response += other.total_response;
        self.sessions += other.sessions;
        self.session_bytes_accessed += other.session_bytes_accessed;
        self.retries += other.retries;
        self.aborted_ops += other.aborted_ops;
        self.aborted_bytes += other.aborted_bytes;
    }

    /// Bytes moved by data operations that completed without aborting —
    /// the goodput numerator under fault injection (equal to `data_bytes`
    /// in a fault-free run).
    pub fn goodput_bytes(&self) -> u64 {
        self.data_bytes - self.aborted_bytes
    }

    /// Fraction of operations that aborted (0 in a fault-free run).
    pub fn abort_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.aborted_ops as f64 / self.ops as f64
        }
    }

    /// Mean response time per data byte, µs — the Figures 5.6–5.12 metric,
    /// charging metadata calls to the transferred bytes exactly like
    /// `uswg_analyze::metrics::response_time_per_byte`.
    pub fn response_per_byte(&self) -> f64 {
        if self.data_bytes == 0 {
            0.0
        } else {
            self.total_response as f64 / self.data_bytes as f64
        }
    }

    /// Mean access size over data operations, bytes.
    pub fn mean_access_size(&self) -> f64 {
        if self.data_ops == 0 {
            0.0
        } else {
            self.access_size.sum / self.data_ops as f64
        }
    }

    /// Sample standard deviation of data-op access sizes, bytes.
    pub fn std_dev_access_size(&self) -> f64 {
        self.access_size.std_dev(self.data_ops)
    }

    /// Mean response time over data operations, µs.
    pub fn mean_response(&self) -> f64 {
        if self.data_ops == 0 {
            0.0
        } else {
            self.response.sum / self.data_ops as f64
        }
    }

    /// Sample standard deviation of data-op response times, µs.
    pub fn std_dev_response(&self) -> f64 {
        self.response.std_dev(self.data_ops)
    }

    /// Smallest data-op access size, bytes (0 while empty, matching the
    /// zero summary `Summary::of(&[])` reports).
    pub fn min_access_size(&self) -> f64 {
        if self.data_ops == 0 {
            0.0
        } else {
            self.access_size.min
        }
    }

    /// Largest data-op access size, bytes (0 while empty).
    pub fn max_access_size(&self) -> f64 {
        if self.data_ops == 0 {
            0.0
        } else {
            self.access_size.max
        }
    }

    /// Smallest data-op response time, µs (0 while empty).
    pub fn min_response(&self) -> f64 {
        if self.data_ops == 0 {
            0.0
        } else {
            self.response.min
        }
    }

    /// Largest data-op response time, µs (0 while empty).
    pub fn max_response(&self) -> f64 {
        if self.data_ops == 0 {
            0.0
        } else {
            self.response.max
        }
    }
}

impl LogSink for SummarySink {
    fn record_op(&mut self, op: &OpRecord) {
        self.ops += 1;
        self.total_response += op.response;
        self.retries += u64::from(op.retries);
        if op.aborted {
            self.aborted_ops += 1;
        }
        if op.op.is_data() && op.bytes > 0 {
            self.data_ops += 1;
            self.data_bytes += op.bytes;
            if op.aborted {
                self.aborted_bytes += op.bytes;
            }
            self.access_size.record(op.bytes as f64, self.data_ops);
            self.response.record(op.response as f64, self.data_ops);
        }
    }

    fn record_session(&mut self, session: &SessionRecord) {
        self.sessions += 1;
        self.session_bytes_accessed += session.bytes_accessed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uswg_fsc::FileCategory;
    use uswg_netfs::OpKind;

    fn op(kind: OpKind, bytes: u64, response: u64) -> OpRecord {
        OpRecord {
            at: 0,
            user: 0,
            session: 0,
            op: kind,
            ino: 1,
            bytes,
            file_size: 1000,
            response,
            category: FileCategory::REG_USER_RDONLY,
            retries: 0,
            aborted: false,
        }
    }

    #[test]
    fn summary_matches_metrics_semantics() {
        let mut sink = SummarySink::new();
        sink.record_op(&op(OpKind::Open, 0, 400));
        sink.record_op(&op(OpKind::Read, 400, 100));
        // (400 + 100) µs over 400 data bytes, as response_time_per_byte.
        assert!((sink.response_per_byte() - 1.25).abs() < 1e-12);
        assert_eq!(sink.ops, 2);
        assert_eq!(sink.data_ops, 1);
    }

    #[test]
    fn summary_moments_match_direct_computation() {
        let mut sink = SummarySink::new();
        for (bytes, resp) in [(100u64, 10u64), (300, 30)] {
            sink.record_op(&op(OpKind::Write, bytes, resp));
        }
        assert!((sink.mean_access_size() - 200.0).abs() < 1e-9);
        // Sample std dev of {100, 300} is sqrt(20000) ≈ 141.42.
        assert!((sink.std_dev_access_size() - 20000f64.sqrt()).abs() < 1e-9);
        assert!((sink.mean_response() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sink_is_all_zero() {
        let sink = SummarySink::new();
        assert_eq!(sink.response_per_byte(), 0.0);
        assert_eq!(sink.mean_access_size(), 0.0);
        assert_eq!(sink.std_dev_response(), 0.0);
    }

    #[test]
    fn usage_log_is_a_sink() {
        let mut log = UsageLog::new();
        LogSink::record_op(&mut log, &op(OpKind::Read, 8, 1));
        assert_eq!(log.ops().len(), 1);
    }

    #[test]
    fn extrema_track_data_ops_only() {
        let mut sink = SummarySink::new();
        assert_eq!(sink.min_access_size(), 0.0);
        assert_eq!(sink.max_response(), 0.0);
        sink.record_op(&op(OpKind::Open, 0, 9_999)); // metadata: no extrema
        sink.record_op(&op(OpKind::Read, 100, 10));
        sink.record_op(&op(OpKind::Write, 300, 30));
        assert_eq!(sink.min_access_size(), 100.0);
        assert_eq!(sink.max_access_size(), 300.0);
        assert_eq!(sink.min_response(), 10.0);
        assert_eq!(sink.max_response(), 30.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let records = [
            op(OpKind::Read, 100, 10),
            op(OpKind::Open, 0, 5),
            op(OpKind::Write, 300, 30),
            op(OpKind::Read, 50, 7),
        ];
        let mut whole = SummarySink::new();
        for r in &records {
            whole.record_op(r);
        }
        whole.record_session(&SessionRecord {
            user: 0,
            user_type: 0,
            session: 0,
            start: 0,
            end: 1,
            ops: 4,
            files_referenced: 2,
            file_bytes_referenced: 100,
            bytes_accessed: 450,
            bytes_read: 150,
            bytes_written: 300,
            total_response: 52,
        });
        let mut left = SummarySink::new();
        let mut right = SummarySink::new();
        for r in &records[..2] {
            left.record_op(r);
        }
        for r in &records[2..] {
            right.record_op(r);
        }
        right.record_session(&SessionRecord {
            user: 0,
            user_type: 0,
            session: 0,
            start: 0,
            end: 1,
            ops: 4,
            files_referenced: 2,
            file_bytes_referenced: 100,
            bytes_accessed: 450,
            bytes_read: 150,
            bytes_written: 300,
            total_response: 52,
        });
        let mut merged = left;
        merged.merge(&right);
        // Integer tallies and extrema combine exactly; the float sums here
        // are small integers, so even those are exact.
        assert_eq!(merged, whole);
        // Merging an empty sink is the identity.
        merged.merge(&SummarySink::new());
        assert_eq!(merged, whole);
    }

    #[test]
    fn std_dev_survives_large_mean_small_variance() {
        // The regime that kills the naive `sumsq − sum²/n` form: a million
        // samples near 2^26 whose true spread is ~1 — the squared sums
        // agree to ~16 digits, so the naive difference is pure rounding
        // noise, while Welford keeps full precision. This is exactly the
        // large-population profile the summary mode exists for.
        let base = 1u64 << 26;
        let n = 1_000_000u64;
        let mut whole = SummarySink::new();
        let mut shards: Vec<SummarySink> = (0..10).map(|_| SummarySink::new()).collect();
        for i in 0..n {
            let record = op(OpKind::Read, base + i % 3, base + i % 3);
            whole.record_op(&record);
            shards[(i % 10) as usize].record_op(&record);
        }
        // Values cycle {base, base+1, base+2}: sample variance → 2/3.
        let expected = (2.0f64 / 3.0).sqrt();
        let got = whole.std_dev_access_size();
        assert!(
            (got - expected).abs() < 1e-6,
            "sequential std {got} vs {expected}"
        );
        // Chan's merge keeps the same stability across shard reductions.
        let mut merged = SummarySink::new();
        for shard in &shards {
            merged.merge(shard);
        }
        let got = merged.std_dev_access_size();
        assert!(
            (got - expected).abs() < 1e-6,
            "merged std {got} vs {expected}"
        );
        assert_eq!(merged.data_ops, whole.data_ops);
        assert_eq!(merged.mean_access_size(), whole.mean_access_size());
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut tee = (SummarySink::new(), UsageLog::new());
        tee.record_op(&op(OpKind::Read, 64, 3));
        assert_eq!(tee.0.data_ops, 1);
        assert_eq!(tee.1.ops().len(), 1);
    }

    #[test]
    fn channel_sink_preserves_op_order_under_backpressure() {
        // Capacity 2 forces the producer to block on the consumer; the
        // records still arrive exactly once, in recording order.
        let (mut sink, rx) = ChannelSink::bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100u64 {
                sink.record_op(&op(OpKind::Read, i + 1, i));
            }
            sink.is_disconnected()
        });
        let got: Vec<u64> = rx.iter().map(|record| record.response).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(!producer.join().unwrap());
    }

    #[test]
    fn channel_sink_survives_a_hung_up_receiver() {
        let (mut sink, rx) = ChannelSink::bounded(1);
        drop(rx);
        // No panic, records silently discarded, and the hangup is visible.
        sink.record_op(&op(OpKind::Read, 8, 1));
        sink.record_op(&op(OpKind::Write, 8, 2));
        assert!(sink.is_disconnected());
    }

    #[test]
    fn channel_sink_ignores_sessions() {
        let (mut sink, rx) = ChannelSink::bounded(4);
        sink.record_session(&SessionRecord {
            user: 0,
            user_type: 0,
            session: 0,
            start: 0,
            end: 1,
            ops: 0,
            files_referenced: 0,
            file_bytes_referenced: 0,
            bytes_accessed: 0,
            bytes_read: 0,
            bytes_written: 0,
            total_response: 0,
        });
        sink.record_op(&op(OpKind::Read, 8, 7));
        drop(sink);
        let got: Vec<_> = rx.iter().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].response, 7);
    }
}
