//! Streaming destinations for usage records.
//!
//! At paper scale (a handful of users × 50 sessions) materializing every
//! [`OpRecord`] is free; at the ROADMAP's millions-of-users scale the op
//! vector **is** the memory ceiling — a sweep point only needs running
//! summaries of the op stream. [`LogSink`] abstracts where records go: the
//! default [`UsageLog`] sink collects everything (so existing figures are
//! byte-identical), while [`SummarySink`] folds each record into running
//! aggregates and retains O(1) memory regardless of run length.

use crate::log::{OpRecord, SessionRecord, UsageLog};

/// A destination for the records a driver produces.
///
/// Methods take references so a sink never forces a copy it does not need.
pub trait LogSink {
    /// Receives one executed operation. Only called when the run's
    /// `record_ops` flag is on.
    fn record_op(&mut self, op: &OpRecord);

    /// Receives one completed session.
    fn record_session(&mut self, session: &SessionRecord);
}

impl LogSink for UsageLog {
    fn record_op(&mut self, op: &OpRecord) {
        self.push_op(*op);
    }

    fn record_session(&mut self, session: &SessionRecord) {
        self.push_session(*session);
    }
}

/// Streaming-aggregate sink: folds the op stream into the figures' headline
/// metrics without materializing any records.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SummarySink {
    /// Operations observed.
    pub ops: u64,
    /// Data operations (reads/writes moving at least one byte).
    pub data_ops: u64,
    /// Bytes moved by data operations.
    pub data_bytes: u64,
    /// Total response time over all operations, µs.
    pub total_response: u64,
    /// Sum of data-op access sizes (for the mean).
    access_size_sum: f64,
    /// Sum of squared data-op access sizes (for the std dev).
    access_size_sumsq: f64,
    /// Sum of data-op response times.
    response_sum: f64,
    /// Sum of squared data-op response times.
    response_sumsq: f64,
    /// Sessions observed.
    pub sessions: u64,
    /// Total bytes accessed across sessions.
    pub session_bytes_accessed: u64,
}

impl SummarySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean response time per data byte, µs — the Figures 5.6–5.12 metric,
    /// charging metadata calls to the transferred bytes exactly like
    /// `uswg_analyze::metrics::response_time_per_byte`.
    pub fn response_per_byte(&self) -> f64 {
        if self.data_bytes == 0 {
            0.0
        } else {
            self.total_response as f64 / self.data_bytes as f64
        }
    }

    /// Mean access size over data operations, bytes.
    pub fn mean_access_size(&self) -> f64 {
        if self.data_ops == 0 {
            0.0
        } else {
            self.access_size_sum / self.data_ops as f64
        }
    }

    /// Sample standard deviation of data-op access sizes, bytes.
    pub fn std_dev_access_size(&self) -> f64 {
        sample_std_dev(self.access_size_sum, self.access_size_sumsq, self.data_ops)
    }

    /// Mean response time over data operations, µs.
    pub fn mean_response(&self) -> f64 {
        if self.data_ops == 0 {
            0.0
        } else {
            self.response_sum / self.data_ops as f64
        }
    }

    /// Sample standard deviation of data-op response times, µs.
    pub fn std_dev_response(&self) -> f64 {
        sample_std_dev(self.response_sum, self.response_sumsq, self.data_ops)
    }
}

fn sample_std_dev(sum: f64, sumsq: f64, n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let n = n as f64;
    let var = (sumsq - sum * sum / n) / (n - 1.0);
    var.max(0.0).sqrt()
}

impl LogSink for SummarySink {
    fn record_op(&mut self, op: &OpRecord) {
        self.ops += 1;
        self.total_response += op.response;
        if op.op.is_data() && op.bytes > 0 {
            self.data_ops += 1;
            self.data_bytes += op.bytes;
            let bytes = op.bytes as f64;
            let resp = op.response as f64;
            self.access_size_sum += bytes;
            self.access_size_sumsq += bytes * bytes;
            self.response_sum += resp;
            self.response_sumsq += resp * resp;
        }
    }

    fn record_session(&mut self, session: &SessionRecord) {
        self.sessions += 1;
        self.session_bytes_accessed += session.bytes_accessed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uswg_fsc::FileCategory;
    use uswg_netfs::OpKind;

    fn op(kind: OpKind, bytes: u64, response: u64) -> OpRecord {
        OpRecord {
            at: 0,
            user: 0,
            session: 0,
            op: kind,
            ino: 1,
            bytes,
            file_size: 1000,
            response,
            category: FileCategory::REG_USER_RDONLY,
        }
    }

    #[test]
    fn summary_matches_metrics_semantics() {
        let mut sink = SummarySink::new();
        sink.record_op(&op(OpKind::Open, 0, 400));
        sink.record_op(&op(OpKind::Read, 400, 100));
        // (400 + 100) µs over 400 data bytes, as response_time_per_byte.
        assert!((sink.response_per_byte() - 1.25).abs() < 1e-12);
        assert_eq!(sink.ops, 2);
        assert_eq!(sink.data_ops, 1);
    }

    #[test]
    fn summary_moments_match_direct_computation() {
        let mut sink = SummarySink::new();
        for (bytes, resp) in [(100u64, 10u64), (300, 30)] {
            sink.record_op(&op(OpKind::Write, bytes, resp));
        }
        assert!((sink.mean_access_size() - 200.0).abs() < 1e-9);
        // Sample std dev of {100, 300} is sqrt(20000) ≈ 141.42.
        assert!((sink.std_dev_access_size() - 20000f64.sqrt()).abs() < 1e-9);
        assert!((sink.mean_response() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sink_is_all_zero() {
        let sink = SummarySink::new();
        assert_eq!(sink.response_per_byte(), 0.0);
        assert_eq!(sink.mean_access_size(), 0.0);
        assert_eq!(sink.std_dev_response(), 0.0);
    }

    #[test]
    fn usage_log_is_a_sink() {
        let mut log = UsageLog::new();
        LogSink::record_op(&mut log, &op(OpKind::Read, 8, 1));
        assert_eq!(log.ops().len(), 1);
    }
}
