//! The User Simulator (USIM).
//!
//! "The USIM simulates workload on a terminal or workstation, i.e., a series
//! of users logging in and using the computer. […] Based on these
//! specifications, the USIM repeatedly randomly selects a file access
//! operation to be performed, the file on which to perform the operation,
//! the amount of this file to access, and the time delay to the next
//! operation." (Section 4.1.3)
//!
//! The specification mirrors the paper's inputs: the number of users, the
//! user types with their population fractions ([`PopulationSpec`]), and per
//! user type × file category the distributions of number of files accessed,
//! file size and size accessed per operation ([`CategoryUsage`]), plus think
//! time (Table 5.4). All distributions are compiled to CDF tables — the GDS
//! artifact — before simulation.
//!
//! Two drivers execute the generated operation stream:
//!
//! * [`DesDriver`] runs all users concurrently in **simulated time** against
//!   a [`ServiceModel`](uswg_netfs::ServiceModel), producing the response
//!   times of the paper's Chapter 5 experiments;
//! * [`DirectDriver`] runs sessions back-to-back against the
//!   [`Vfs`](uswg_vfs::Vfs) with no timing model, for usage-distribution
//!   studies (Figures 5.3–5.5) and throughput benchmarking.
//!
//! Both record a [`UsageLog`] — the paper's "usage log file".

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
mod des;
mod direct;
mod error;
mod faults;
mod log;
mod session;
mod shard;
mod sink;
mod spec;
mod spill;
mod temporal;

pub use compile::{BehaviorState, CompiledPopulation, CompiledUserType};
pub use des::{DesDriver, DesReport, DesRunStats};
pub use direct::DirectDriver;
pub use error::UsimError;
pub use faults::{FaultSpec, RetryPolicy, PPM_SCALE};
pub use log::{OpRecord, SessionRecord, UsageLog};
pub use session::MAX_ACCESS_BYTES;
pub use shard::{
    merge_shard_logs, merge_spill_shards, shard_model_seed, ShardEnv, ShardPlan, ShardedDesDriver,
};
pub use sink::{ChannelSink, LogSink, SummarySink};
pub use spec::{AccessPattern, CategoryUsage, PopulationSpec, RunConfig, UserTypeSpec};
pub use spill::{
    read_spill, read_spill_path, FrameIndex, FrameIndexEntry, SpillCodec, SpillReader, SpillRecord,
    SpillSink, FRAME_CAP,
};
pub use temporal::{DiurnalProfile, PhaseModel, PhaseState};
pub use uswg_sim::SchedulerBackend;
