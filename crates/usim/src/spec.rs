//! User-type and population specifications (the USIM inputs of Section
//! 4.1.3, with Tables 5.2 and 5.4 as the canonical values).

use crate::UsimError;
use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;
use std::sync::OnceLock;
use uswg_distr::DistributionSpec;
use uswg_fsc::FileCategory;
use uswg_sim::SchedulerBackend;

/// Tolerance when validating that population fractions sum to one.
const FRACTION_TOL: f64 = 1e-6;

/// How the bytes of a file are visited.
///
/// The paper simulates only sequential access but flags the alternative:
/// "in other environments, such as a commercial database system,
/// nonsequential (or random) file access may be the predominant behavior"
/// (Section 4.2), and lists indexed/direct-access files as future work
/// (Section 6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AccessPattern {
    /// Sequential with explicit `lseek` wraparound (the paper's model).
    #[default]
    Sequential,
    /// Direct access: each data operation is preceded by an `lseek` to a
    /// uniformly random offset (database-style record access).
    Random,
}

/// How one user type uses one file category: a row of Table 5.2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryUsage {
    /// The file category.
    pub category: FileCategory,
    /// Mean number of times each byte of an accessed file is accessed
    /// (Table 5.2's "accesses" measure, after \[DI86\]'s access-per-byte).
    /// A file of size `s` receives about `access_per_byte × s` bytes of I/O.
    pub access_per_byte: f64,
    /// Size distribution of files the user creates in this category
    /// (`NEW`/`TEMP`); pre-existing categories take sizes from the catalog.
    pub file_size: DistributionSpec,
    /// Distribution of the number of files of this category referenced per
    /// login session.
    pub files: DistributionSpec,
    /// Probability (0–1) that a session accesses this category at all
    /// (Table 5.2's "percent of users accessing category" / 100).
    pub pct_users: f64,
    /// How bytes within a file are visited (sequential by default).
    #[serde(default)]
    pub access_pattern: AccessPattern,
}

impl CategoryUsage {
    /// Creates a category usage with exponential file-size and file-count
    /// distributions, matching the paper's assumption that "the usage
    /// measures are specified in terms of mean values only; the measures are
    /// assumed to be exponentially distributed".
    pub fn exponential(
        category: FileCategory,
        access_per_byte: f64,
        mean_file_size: f64,
        mean_files: f64,
        pct_users: f64,
    ) -> Self {
        Self {
            category,
            access_per_byte,
            file_size: DistributionSpec::exponential(mean_file_size),
            files: DistributionSpec::exponential(mean_files),
            pct_users,
            access_pattern: AccessPattern::default(),
        }
    }

    /// Builder-style access-pattern override (random = database-style
    /// direct access).
    pub fn with_access_pattern(mut self, pattern: AccessPattern) -> Self {
        self.access_pattern = pattern;
        self
    }

    fn validate(&self, type_name: &str) -> Result<(), UsimError> {
        if !(0.0..=1.0).contains(&self.pct_users) {
            return Err(UsimError::BadProbability {
                name: "pct_users",
                value: self.pct_users,
            });
        }
        if !(self.access_per_byte.is_finite() && self.access_per_byte >= 0.0) {
            return Err(UsimError::BadProbability {
                name: "access_per_byte",
                value: self.access_per_byte,
            });
        }
        let _ = type_name;
        Ok(())
    }
}

/// The default inter-session gap: immediate re-login, the paper's behavior.
fn default_inter_session() -> DistributionSpec {
    DistributionSpec::constant(0.0)
}

/// One user type: think time, access size, and per-category usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserTypeSpec {
    /// Human-readable name ("heavy I/O", …).
    pub name: String,
    /// Think time (inter-I/O-request time) distribution, µs (Table 5.4).
    pub think_time: DistributionSpec,
    /// Access size per file I/O system call, bytes.
    pub access_size: DistributionSpec,
    /// Usage of each file category.
    pub categories: Vec<CategoryUsage>,
    /// Gap between a logout and the next login, µs (defaults to 0 —
    /// back-to-back sessions, the paper's measurement mode).
    #[serde(default = "default_inter_session")]
    pub inter_session_time: DistributionSpec,
    /// Optional Markov phase model scaling think times over time
    /// (Section 6.2's CPU-bound/I/O-bound extension).
    #[serde(default)]
    pub phases: Option<crate::PhaseModel>,
    /// Optional time-of-day profile applied to inter-session times
    /// (Section 6.2's \[CS85\] inter-login-time extension).
    #[serde(default)]
    pub diurnal: Option<crate::DiurnalProfile>,
}

impl UserTypeSpec {
    /// Creates a user type with back-to-back sessions and stationary
    /// behaviour (the paper's model).
    pub fn new(
        name: impl Into<String>,
        think_time: DistributionSpec,
        access_size: DistributionSpec,
        categories: Vec<CategoryUsage>,
    ) -> Self {
        Self {
            name: name.into(),
            think_time,
            access_size,
            categories,
            inter_session_time: default_inter_session(),
            phases: None,
            diurnal: None,
        }
    }

    /// Builder-style inter-session (inter-login) time override.
    pub fn with_inter_session_time(mut self, dist: DistributionSpec) -> Self {
        self.inter_session_time = dist;
        self
    }

    /// Builder-style Markov phase model override.
    pub fn with_phases(mut self, phases: crate::PhaseModel) -> Self {
        self.phases = Some(phases);
        self
    }

    /// Builder-style diurnal profile override.
    pub fn with_diurnal(mut self, diurnal: crate::DiurnalProfile) -> Self {
        self.diurnal = Some(diurnal);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), UsimError> {
        if self.categories.is_empty() {
            return Err(UsimError::EmptyUserType {
                name: self.name.clone(),
            });
        }
        for usage in &self.categories {
            usage.validate(&self.name)?;
        }
        Ok(())
    }
}

/// A population: user types and the fraction of users belonging to each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    types: Vec<(UserTypeSpec, f64)>,
}

impl PopulationSpec {
    /// Creates a population from `(type, fraction)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`UsimError::EmptyPopulation`] for an empty list,
    /// [`UsimError::BadFractions`] when fractions do not sum to one, and the
    /// per-type validation errors.
    pub fn new(types: Vec<(UserTypeSpec, f64)>) -> Result<Self, UsimError> {
        if types.is_empty() {
            return Err(UsimError::EmptyPopulation);
        }
        let sum: f64 = types.iter().map(|&(_, f)| f).sum();
        if (sum - 1.0).abs() > FRACTION_TOL || types.iter().any(|&(_, f)| f < 0.0) {
            return Err(UsimError::BadFractions { sum });
        }
        for (t, _) in &types {
            t.validate()?;
        }
        Ok(Self { types })
    }

    /// A population consisting of a single user type.
    ///
    /// # Errors
    ///
    /// Propagates the type's validation errors.
    pub fn single(user_type: UserTypeSpec) -> Result<Self, UsimError> {
        Self::new(vec![(user_type, 1.0)])
    }

    /// The `(type, fraction)` pairs.
    pub fn types(&self) -> &[(UserTypeSpec, f64)] {
        &self.types
    }

    /// Deterministically assigns `n_users` to types in proportion to the
    /// fractions: user `i` takes the type whose cumulative fraction covers
    /// `(i + 0.5) / n`. With 5 users and an 80/20 split this yields exactly
    /// 4 + 1, which matters for the paper's small populations.
    pub fn assign(&self, n_users: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(n_users);
        for i in 0..n_users {
            let target = (i as f64 + 0.5) / n_users as f64;
            let mut acc = 0.0;
            let mut chosen = self.types.len() - 1;
            for (idx, &(_, frac)) in self.types.iter().enumerate() {
                acc += frac;
                if target < acc + 1e-12 {
                    chosen = idx;
                    break;
                }
            }
            out.push(chosen);
        }
        out
    }
}

/// Run-level configuration of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of concurrent users ("load intensity").
    pub n_users: usize,
    /// Login sessions each user completes.
    pub sessions_per_user: u32,
    /// Base RNG seed; every user derives an independent stream from it.
    pub seed: u64,
    /// Whether to record every operation in the log (sessions are always
    /// recorded). Turn off for very long runs.
    pub record_ops: bool,
    /// Resolution of the compiled CDF tables (samples per distribution).
    pub cdf_resolution: usize,
    /// Event-queue backend of the DES driver. Both backends produce
    /// byte-identical simulations for the same seed; the calendar queue is
    /// O(1) per event and wins beyond ~100k concurrently pending events
    /// (roughly, users). `None` — the default, and what a freshly written
    /// spec serializes — resolves at run time to the `USWG_SCHEDULER`
    /// environment variable or the binary heap, so spec files stay portable
    /// across backend matrices; set `Some` (or pass `--scheduler` to
    /// `uswg run`) to pin one explicitly.
    #[serde(default)]
    pub scheduler: Option<SchedulerBackend>,
    /// Shards a single DES run across cores: the population is split
    /// round-robin into this many independent DES instances and the
    /// results are merged deterministically (see
    /// [`ShardedDesDriver`](crate::ShardedDesDriver)). `None` — the
    /// default — resolves to the `USWG_SHARDS` environment variable, and
    /// when that too is unset runs the exact single-instance simulation
    /// with one globally contended resource model. `Some(1)` routes
    /// through the sharded driver with one shard, which replays the exact
    /// path byte for byte; `Some(K > 1)` trades contention fidelity for
    /// wall-clock — each shard owns a private copy of the timing model's
    /// resources, so response times are preserved statistically, not
    /// exactly, while the operation streams themselves are unchanged.
    #[serde(default)]
    pub shards: Option<NonZeroUsize>,
    /// Seeded fault injection at the service boundary: transient errors
    /// with deterministic retries, and latency spikes. The default is
    /// fully disabled and draws no PRNG values, so specs without a
    /// `faults` section replay pre-fault runs byte for byte.
    #[serde(default)]
    pub faults: crate::FaultSpec,
}

impl Default for RunConfig {
    /// One user, 50 sessions (the paper's per-point session count), ops
    /// recorded, 1024-point tables.
    fn default() -> Self {
        Self {
            n_users: 1,
            sessions_per_user: 50,
            seed: 0x5EED,
            record_ops: true,
            cdf_resolution: 1024,
            scheduler: None,
            shards: None,
            faults: crate::FaultSpec::default(),
        }
    }
}

impl RunConfig {
    /// Validates the counts.
    ///
    /// # Errors
    ///
    /// Returns [`UsimError::BadCount`] when users, sessions or resolution
    /// are zero, and [`UsimError::PopulationTooLarge`] when the population
    /// exceeds the user arena's packed `u32` ids.
    pub fn validate(&self) -> Result<(), UsimError> {
        if self.n_users == 0 {
            return Err(UsimError::BadCount { name: "n_users" });
        }
        if self.n_users > u32::MAX as usize {
            return Err(UsimError::PopulationTooLarge {
                n_users: self.n_users,
            });
        }
        if self.sessions_per_user == 0 {
            return Err(UsimError::BadCount {
                name: "sessions_per_user",
            });
        }
        if self.cdf_resolution < 2 {
            return Err(UsimError::BadCount {
                name: "cdf_resolution",
            });
        }
        self.faults.validate()?;
        Ok(())
    }

    /// Builder-style user count override.
    pub fn with_users(mut self, n: usize) -> Self {
        self.n_users = n;
        self
    }

    /// Builder-style session count override.
    pub fn with_sessions(mut self, n: u32) -> Self {
        self.sessions_per_user = n;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style scheduler-backend override.
    pub fn with_scheduler(mut self, scheduler: SchedulerBackend) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Builder-style shard-count override.
    pub fn with_shards(mut self, shards: NonZeroUsize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Builder-style fault-injection override.
    pub fn with_faults(mut self, faults: crate::FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// The backend this run will use: the pinned choice, or the
    /// process-wide default (`USWG_SCHEDULER`, falling back to the heap).
    pub fn scheduler_backend(&self) -> SchedulerBackend {
        self.scheduler.unwrap_or_default()
    }

    /// The shard count this run will use: the pinned choice, or the
    /// process-wide default from the `USWG_SHARDS` environment variable
    /// (read once and memoized, so a process cannot observe a mid-run
    /// change — the same contract as `USWG_SCHEDULER`). `None` means the
    /// exact unsharded path. This is how CI runs the whole suite as a
    /// shards matrix without touching any individual test.
    ///
    /// # Panics
    ///
    /// Panics when `USWG_SHARDS` is set to anything but a positive
    /// integer — a misconfigured matrix entry must fail loudly.
    pub fn effective_shards(&self) -> Option<NonZeroUsize> {
        static CHOICE: OnceLock<Option<NonZeroUsize>> = OnceLock::new();
        self.shards
            .or(*CHOICE.get_or_init(|| match std::env::var("USWG_SHARDS") {
                Ok(v) => Some(v.parse::<NonZeroUsize>().unwrap_or_else(|_| {
                    panic!("USWG_SHARDS={v:?} is not a shard count (expected a positive integer)")
                })),
                Err(_) => None,
            }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_type(name: &str) -> UserTypeSpec {
        UserTypeSpec::new(
            name,
            DistributionSpec::constant(0.0),
            DistributionSpec::exponential(1024.0),
            vec![CategoryUsage::exponential(
                FileCategory::REG_USER_RDONLY,
                1.0,
                2608.0,
                2.0,
                1.0,
            )],
        )
    }

    #[test]
    fn population_validation() {
        assert!(matches!(
            PopulationSpec::new(vec![]),
            Err(UsimError::EmptyPopulation)
        ));
        let bad = PopulationSpec::new(vec![(minimal_type("a"), 0.5)]);
        assert!(matches!(bad, Err(UsimError::BadFractions { .. })));
        let empty_type = UserTypeSpec::new(
            "e",
            DistributionSpec::constant(0.0),
            DistributionSpec::exponential(1.0),
            vec![],
        );
        assert!(matches!(
            PopulationSpec::single(empty_type),
            Err(UsimError::EmptyUserType { .. })
        ));
    }

    #[test]
    fn probability_bounds_checked() {
        let mut t = minimal_type("x");
        t.categories[0].pct_users = 1.5;
        assert!(matches!(
            PopulationSpec::single(t),
            Err(UsimError::BadProbability { .. })
        ));
    }

    #[test]
    fn assignment_is_proportional() {
        let pop = PopulationSpec::new(vec![
            (minimal_type("heavy"), 0.8),
            (minimal_type("light"), 0.2),
        ])
        .unwrap();
        let assigned = pop.assign(5);
        assert_eq!(assigned.iter().filter(|&&t| t == 0).count(), 4);
        assert_eq!(assigned.iter().filter(|&&t| t == 1).count(), 1);
        // 50/50 over 6 users.
        let pop = PopulationSpec::new(vec![
            (minimal_type("heavy"), 0.5),
            (minimal_type("light"), 0.5),
        ])
        .unwrap();
        let assigned = pop.assign(6);
        assert_eq!(assigned.iter().filter(|&&t| t == 0).count(), 3);
    }

    #[test]
    fn assignment_single_type() {
        let pop = PopulationSpec::single(minimal_type("only")).unwrap();
        assert_eq!(pop.assign(4), vec![0, 0, 0, 0]);
        assert_eq!(pop.types().len(), 1);
    }

    #[test]
    fn run_config_validation() {
        assert!(RunConfig::default().validate().is_ok());
        assert!(RunConfig::default().with_users(0).validate().is_err());
        assert!(RunConfig::default().with_sessions(0).validate().is_err());
        let c = RunConfig {
            cdf_resolution: 1,
            ..RunConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let pop = PopulationSpec::new(vec![
            (minimal_type("heavy"), 0.8),
            (minimal_type("light"), 0.2),
        ])
        .unwrap();
        let json = serde_json::to_string(&pop).unwrap();
        let back: PopulationSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(pop, back);
    }
}
