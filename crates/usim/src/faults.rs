//! Seeded fault injection at the service boundary: transient errors,
//! latency spikes and a deterministic retry policy.
//!
//! The paper's generator reproduces *healthy* file-system behaviour; real
//! services spend their interesting life under faults and overload. This
//! module adds a [`FaultSpec`] to the run configuration: each operation's
//! service traversal can suffer a seeded latency spike, and each attempt
//! can fail transiently and be retried under a [`RetryPolicy`] with
//! exponential backoff and decorrelated jitter. Every random decision is
//! drawn from the issuing user's own PRNG stream, so a faulted run remains
//! a pure function of (spec, seed, K): fault outcomes never depend on the
//! scheduler backend, the worker count or how the population is sharded —
//! exactly the contract the shard- and sweep-equivalence suites pin.
//!
//! Faults model the *timing and outcome* of a call, not its semantics: the
//! synthetic file system executes the call's effect at issue time either
//! way, so an aborted operation is one whose latency budget was spent on
//! failed attempts — its retries and final disposition are recorded
//! first-class on the [`OpRecord`](crate::OpRecord) (`retries`, `aborted`)
//! and aggregated by [`SummarySink`](crate::SummarySink).
//!
//! The disabled default draws **nothing** from any PRNG, which is what
//! keeps `FaultSpec::default()` runs byte-identical to pre-fault behaviour.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Probabilities are expressed in parts per million, keeping the spec
/// integral (hashable, `Eq`, no float-rounding drift across platforms).
pub const PPM_SCALE: u64 = 1_000_000;

/// Deterministic retry schedule for transiently failed attempts:
/// exponential backoff with decorrelated jitter (each backoff is drawn
/// uniformly from `[base, 3 × previous]`, clamped to `max`), the schedule
/// most load generators converge on because it spreads synchronized
/// retries apart. The jitter draw comes from the issuing user's PRNG, so
/// the schedule is replayed exactly for a given (spec, seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed per operation, including the first (≥ 1).
    /// An attempt budget of 1 means a transient fault aborts immediately.
    pub max_attempts: u32,
    /// Smallest backoff before a retry, µs.
    pub base_backoff_micros: u64,
    /// Cap on any single backoff, µs.
    pub max_backoff_micros: u64,
}

impl Default for RetryPolicy {
    /// Four attempts (three retries), 1 ms base, 64 ms cap.
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_micros: 1_000,
            max_backoff_micros: 64_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff before the next attempt, given the previous backoff
    /// (pass `0` before the first retry). Decorrelated jitter: uniform in
    /// `[base, max(3 × prev, base + 1))`, clamped to `max_backoff_micros`.
    pub fn backoff(&self, prev: u64, rng: &mut dyn RngCore) -> u64 {
        let base = self.base_backoff_micros.max(1);
        let hi = prev.saturating_mul(3).max(base + 1);
        let draw = base + rng.next_u64() % (hi - base);
        draw.min(self.max_backoff_micros.max(base))
    }
}

/// Seeded fault model applied at the service boundary of every operation.
///
/// The default is fully disabled (zero rates) and — crucially — draws no
/// random values at all, so a spec without a `faults` section replays the
/// historical byte stream exactly. Serialized specs omit nothing: the
/// field is `#[serde(default)]` wherever it appears, so every existing
/// spec file parses unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability that one *attempt* fails transiently, parts per
    /// million (0 = never, 1 000 000 = always).
    #[serde(default)]
    pub fault_ppm: u32,
    /// Probability that an operation's first attempt suffers a latency
    /// spike, parts per million.
    #[serde(default)]
    pub spike_ppm: u32,
    /// Added latency of a spike, µs (0 disables spikes regardless of
    /// `spike_ppm`).
    #[serde(default)]
    pub spike_micros: u64,
    /// Retry schedule for transiently failed attempts.
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl FaultSpec {
    /// Whether any fault mechanism can fire. When this is `false` the
    /// driver takes the exact pre-fault code path and consumes no PRNG
    /// values.
    pub fn enabled(&self) -> bool {
        self.fault_ppm > 0 || (self.spike_ppm > 0 && self.spike_micros > 0)
    }

    /// Validates rates and the retry budget.
    ///
    /// # Errors
    ///
    /// Returns [`UsimError::BadCount`](crate::UsimError) when a rate
    /// exceeds one million ppm or the attempt budget is zero.
    pub fn validate(&self) -> Result<(), crate::UsimError> {
        if u64::from(self.fault_ppm) > PPM_SCALE {
            return Err(crate::UsimError::BadCount { name: "fault_ppm" });
        }
        if u64::from(self.spike_ppm) > PPM_SCALE {
            return Err(crate::UsimError::BadCount { name: "spike_ppm" });
        }
        if self.max_attempts() == 0 {
            return Err(crate::UsimError::BadCount {
                name: "retry.max_attempts",
            });
        }
        Ok(())
    }

    /// The retry budget (total attempts per operation).
    pub fn max_attempts(&self) -> u32 {
        self.retry.max_attempts
    }

    /// Draws whether this attempt fails transiently. Consumes one PRNG
    /// value when `fault_ppm > 0`, none otherwise.
    pub fn sample_fault(&self, rng: &mut dyn RngCore) -> bool {
        self.fault_ppm > 0 && rng.next_u64() % PPM_SCALE < u64::from(self.fault_ppm)
    }

    /// Draws the spike latency for an operation's first attempt: `Some`
    /// when the spike fires. Consumes one PRNG value when spikes are
    /// configured, none otherwise.
    pub fn sample_spike(&self, rng: &mut dyn RngCore) -> Option<u64> {
        if self.spike_ppm == 0 || self.spike_micros == 0 {
            return None;
        }
        (rng.next_u64() % PPM_SCALE < u64::from(self.spike_ppm)).then_some(self.spike_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_is_disabled_and_draws_nothing() {
        let spec = FaultSpec::default();
        assert!(!spec.enabled());
        assert!(spec.validate().is_ok());
        // Disabled sampling consumes no PRNG values: two rngs stay in
        // lockstep across sample calls.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert!(!spec.sample_fault(&mut a));
            assert_eq!(spec.sample_spike(&mut a), None);
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn spike_requires_both_rate_and_magnitude() {
        let mut spec = FaultSpec {
            spike_ppm: PPM_SCALE as u32,
            ..FaultSpec::default()
        };
        assert!(!spec.enabled());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(spec.sample_spike(&mut rng), None);
        spec.spike_micros = 500;
        assert!(spec.enabled());
        assert_eq!(spec.sample_spike(&mut rng), Some(500));
    }

    #[test]
    fn certain_fault_always_fires() {
        let spec = FaultSpec {
            fault_ppm: PPM_SCALE as u32,
            ..FaultSpec::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(spec.sample_fault(&mut rng));
        }
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let bad_rate = FaultSpec {
            fault_ppm: PPM_SCALE as u32 + 1,
            ..FaultSpec::default()
        };
        assert!(bad_rate.validate().is_err());
        let no_budget = FaultSpec {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..FaultSpec::default()
        };
        assert!(no_budget.validate().is_err());
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff_micros: 100,
            max_backoff_micros: 1_000,
        };
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut prev = 0;
        for _ in 0..20 {
            let ours = policy.backoff(prev, &mut a);
            assert_eq!(ours, policy.backoff(prev, &mut b), "same seed, same draw");
            assert!((100..=1_000).contains(&ours), "backoff {ours} out of range");
            prev = ours;
        }
    }

    #[test]
    fn backoff_grows_toward_the_cap() {
        // With decorrelated jitter the expected backoff grows until the
        // cap dominates; check the reachable range widens with prev.
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(9);
        let first = policy.backoff(0, &mut rng);
        assert!(first >= policy.base_backoff_micros);
        let capped = policy.backoff(u64::MAX, &mut rng);
        assert!(capped <= policy.max_backoff_micros);
    }

    #[test]
    fn serde_round_trips_and_missing_section_defaults() {
        let spec = FaultSpec {
            fault_ppm: 50_000,
            spike_ppm: 10_000,
            spike_micros: 30_000,
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_micros: 500,
                max_backoff_micros: 8_000,
            },
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // An empty object is the disabled default — the back-compat hinge
        // for every pre-fault spec file.
        let empty: FaultSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, FaultSpec::default());
        assert!(!empty.enabled());
    }
}
