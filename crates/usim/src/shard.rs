//! Sharded single-run DES: one giant population split across cores.
//!
//! Sweeps and replication studies already fan whole simulations out across
//! a work-stealing pool, but one *point* — one run, millions of users — was
//! still a single thread. The paper's workload model draws every user's
//! sessions independently (Section 3.1.4's independence assumption), so the
//! population is embarrassingly partitionable: [`ShardedDesDriver`] splits
//! the users round-robin into K shards ([`ShardPlan`]), runs each shard as
//! an independent DES instance with its own [`Scheduler`](uswg_sim::Scheduler),
//! file system and timing model, and merges the results deterministically.
//!
//! # What sharding preserves, exactly and statistically
//!
//! Each user's PRNG stream is derived from the *global* user id and each
//! shard's model-jitter stream from the root seed and the *shard index*
//! ([`shard_model_seed`]), so behaviour never depends on K's thread
//! schedule, and a one-shard run replays the unsharded simulation byte for
//! byte. What changes with K > 1 is *contention*: every shard owns a full
//! copy of the timing model's resources, so users queue only behind their
//! own shard — the per-shard resource model is an **approximation** of one
//! globally contended model (resource statistics are aggregated at merge
//! time). Everything derived from the operation streams alone — operation
//! counts, access sizes, bytes moved, session counts — is preserved
//! exactly for workloads whose cross-user coupling is read-only (shared
//! files are not resized and the device never fills); response times are
//! preserved only statistically. `RunConfig { shards: None }` remains the
//! exact, fully contended path. The equivalence suite
//! (`tests/shard_equivalence.rs`) pins both halves of this contract.
//!
//! # Determinism of the merge
//!
//! Shards execute in parallel, but every shard's result lands in a slot
//! indexed by its shard number, and merging walks those slots in shard
//! order: summary mode folds the per-shard [`SummarySink`]s with
//! [`SummarySink::merge`], and full-log mode k-way-merges the per-shard
//! logs by completion time (ties broken by shard index, within-shard order
//! preserved) — a global re-sequencing that makes the merged [`UsageLog`]
//! a pure function of (spec, seed, K), independent of worker count and
//! scheduler backend.

use crate::compile::CompiledPopulation;
use crate::des::{DesDriver, DesReport, DesRunStats, UserArena, MODEL_SEED_XOR};
use crate::log::{OpRecord, SessionRecord, UsageLog};
use crate::sink::{LogSink, SummarySink};
use crate::spill::{SpillReader, SpillRecord, SpillSink};
use crate::{RunConfig, UsimError};
use std::io;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use uswg_fsc::FileCatalog;
use uswg_netfs::ServiceModel;
use uswg_sim::{ResourcePool, ResourceStats};
use uswg_vfs::Vfs;

/// Multiplier deriving each shard's model-jitter stream from the shard
/// index: odd, so the map `shard ↦ shard × MUL` is injective modulo 2⁶⁴ and
/// per-shard seeds are guaranteed distinct.
const SHARD_SEED_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// The model-randomness seed of one shard: shard 0 uses exactly the
/// unsharded driver's stream (so K = 1 replays the unsharded run byte for
/// byte), and every other shard gets a distinct stream that depends only on
/// the root seed and the shard index — never on K or the thread schedule.
pub fn shard_model_seed(seed: u64, shard: usize) -> u64 {
    seed ^ MODEL_SEED_XOR ^ (shard as u64).wrapping_mul(SHARD_SEED_MUL)
}

/// The partitioning of a population across K shards: user `u` belongs to
/// shard `u mod K` (round-robin). Round-robin — rather than contiguous
/// blocks — interleaves the deterministic type assignment
/// ([`CompiledPopulation::assign`] hands out types in population order), so
/// every shard sees approximately the population's type mix instead of one
/// shard getting all the heavy users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    n_users: usize,
    shards: usize,
}

impl ShardPlan {
    /// Plans `n_users` across `shards` shards.
    pub fn new(n_users: usize, shards: NonZeroUsize) -> Self {
        Self {
            n_users,
            shards: shards.get(),
        }
    }

    /// The requested shard count K.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shards that actually hold users: `min(K, n_users)`. With round-robin
    /// assignment the populated shards are exactly `0..active_shards()`,
    /// so empty shards never spin up a simulation.
    pub fn active_shards(&self) -> usize {
        self.shards.min(self.n_users)
    }

    /// The shard user `user` belongs to. A pure function of the user id and
    /// K — stable across runs, worker counts and schedules.
    pub fn shard_of(&self, user: usize) -> usize {
        user % self.shards
    }

    /// Global ids of the users in `shard`, in ascending order.
    pub fn members(&self, shard: usize) -> impl Iterator<Item = usize> + '_ {
        (shard..self.n_users).step_by(self.shards)
    }

    /// Number of users in `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        if shard >= self.shards || shard >= self.n_users {
            0
        } else {
            (self.n_users - shard).div_ceil(self.shards)
        }
    }
}

/// Everything one shard needs that the driver cannot clone for itself: the
/// synthetic file system, its catalog, and a freshly built timing model
/// with the resource pool it registered into. Callers build one per active
/// shard from the same spec and seed, so all shards start from identical
/// initial file-system states.
#[derive(Debug)]
pub struct ShardEnv {
    /// The shard's private copy of the synthetic file system.
    pub vfs: Vfs,
    /// The shard's file catalog (matching `vfs`).
    pub catalog: FileCatalog,
    /// The shard's timing model, registered into `pool`.
    pub model: Box<dyn ServiceModel>,
    /// The resource pool `model` registered its resources in.
    pub pool: ResourcePool,
}

/// One shard's outcome, parked in a slot indexed by shard number so the
/// merge can walk results in shard order no matter which worker ran what.
type ShardSlot<S> = Mutex<Option<Result<(S, DesRunStats), UsimError>>>;

/// Runs one population as K independent DES instances on a work-stealing
/// pool and merges the results deterministically. See the module
/// documentation for the exact-vs-statistical contract.
#[derive(Debug, Default)]
pub struct ShardedDesDriver {
    workers: usize,
}

impl ShardedDesDriver {
    /// A driver that uses one worker per available core (capped at the
    /// number of active shards).
    pub fn new() -> Self {
        Self { workers: 0 }
    }

    /// A driver with an explicit worker count (`0` = one per core). The
    /// worker count never changes results — only wall-clock.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers }
    }

    fn resolve_workers(&self, active: usize) -> usize {
        let want = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        };
        want.min(active)
    }

    /// Runs every active shard through [`DesDriver::run_inner`] with its
    /// own sink, returning `(sink, stats)` per shard **in shard order** —
    /// the property every merge below relies on. `make_sink` builds the
    /// shard's sink from its shard index (and may fail — spill sinks open
    /// files). Shards execute on a work-stealing pool; a shard failure
    /// cancels undispatched shards and the lowest-indexed error among the
    /// shards that ran is returned.
    fn run_shards<S, F>(
        &self,
        population: &CompiledPopulation,
        config: &RunConfig,
        plan: ShardPlan,
        envs: Vec<ShardEnv>,
        make_sink: F,
    ) -> Result<Vec<(S, DesRunStats)>, UsimError>
    where
        S: LogSink + Send,
        F: Fn(usize) -> Result<S, UsimError> + Sync,
    {
        config.validate()?;
        let active = plan.active_shards();
        if envs.len() != active {
            return Err(UsimError::ShardEnvMismatch {
                expected: active,
                got: envs.len(),
            });
        }
        let driver = DesDriver::new();
        let cells: Vec<Mutex<Option<ShardEnv>>> =
            envs.into_iter().map(|e| Mutex::new(Some(e))).collect();
        let slots: Vec<ShardSlot<S>> = (0..active).map(|_| Mutex::new(None)).collect();
        stealpool::run_indexed(self.resolve_workers(active), active, |s| {
            let env = cells[s]
                .lock()
                .expect("env lock")
                .take()
                .expect("each shard env is taken exactly once");
            // Each shard builds only its own slice of the user columns —
            // nothing population-sized (like the old assignment vector) is
            // shared or cloned across shards.
            let users = UserArena::build(
                population,
                config.seed,
                config.n_users,
                plan.members(s),
                plan.shard_len(s),
            );
            let result = make_sink(s).and_then(|sink| {
                driver.run_inner(
                    env.vfs,
                    env.catalog,
                    population,
                    env.model,
                    env.pool,
                    config,
                    users,
                    shard_model_seed(config.seed, s),
                    sink,
                )
            });
            let ok = result.is_ok();
            *slots[s].lock().expect("slot lock") = Some(result);
            ok // a failed shard cancels the rest of the pool
        });
        let mut out = Vec::with_capacity(active);
        let mut first_err: Option<UsimError> = None;
        for slot in slots {
            match slot.into_inner().expect("slot lock") {
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                // Cancelled after a failure elsewhere.
                None => {}
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                debug_assert_eq!(out.len(), active, "no error, so every shard ran");
                Ok(out)
            }
        }
    }

    /// Executes the run in full-log mode: K independent shard simulations,
    /// then a deterministic k-way merge of the per-shard logs (see
    /// [`merge_shard_logs`]) and an aggregation of the per-shard resource
    /// statistics.
    ///
    /// `envs` must hold exactly one [`ShardEnv`] per *active* shard
    /// (`ShardPlan::new(config.n_users, shards).active_shards()`), each
    /// built from the same spec and seed.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors, a shard-environment
    /// count mismatch, and any file-system error raised inside a shard.
    pub fn run(
        &self,
        population: &CompiledPopulation,
        config: &RunConfig,
        shards: NonZeroUsize,
        envs: Vec<ShardEnv>,
    ) -> Result<DesReport, UsimError> {
        let plan = ShardPlan::new(config.n_users, shards);
        let results = self.run_shards(population, config, plan, envs, |_| Ok(UsageLog::new()))?;
        let (logs, stats): (Vec<UsageLog>, Vec<DesRunStats>) = results.into_iter().unzip();
        Ok(DesReport::from_parts(
            merge_shard_logs(logs),
            merge_stats(stats),
        ))
    }

    /// Executes the run in summary mode: every shard streams into its own
    /// [`SummarySink`]; the sinks are folded with [`SummarySink::merge`] in
    /// shard-index order. O(1) retained memory per shard, no log ever
    /// materialized — the mode that scales a single run to the ROADMAP's
    /// millions of users.
    ///
    /// # Errors
    ///
    /// As for [`ShardedDesDriver::run`].
    pub fn run_summary(
        &self,
        population: &CompiledPopulation,
        config: &RunConfig,
        shards: NonZeroUsize,
        envs: Vec<ShardEnv>,
    ) -> Result<(SummarySink, DesRunStats), UsimError> {
        let plan = ShardPlan::new(config.n_users, shards);
        let results =
            self.run_shards(population, config, plan, envs, |_| Ok(SummarySink::new()))?;
        let mut merged = SummarySink::new();
        let mut stats = Vec::with_capacity(results.len());
        for (sink, st) in results {
            merged.merge(&sink);
            stats.push(st);
        }
        Ok((merged, merge_stats(stats)))
    }

    /// Executes the run in **streamed** full-log mode: every shard spills
    /// its records to a private temporary spill file as it runs, and the
    /// per-shard files are k-way merged *frame by frame* into `sink` in
    /// exactly [`merge_shard_logs`]' deterministic order (`(completion
    /// time, shard index)` for ops, `(end, shard index)` for sessions; all
    /// merged ops first, then all merged sessions — the order
    /// `WorkloadSpec::run_des_with_sink` has always replayed). No
    /// [`UsageLog`] is ever materialized, so resident memory is
    /// O(K × frame) regardless of run length — the path that lets
    /// `uswg run --spill --shards K` capture full-fidelity logs of runs
    /// that would never fit in RAM. The streamed record sequence is
    /// byte-identical to merging materialized per-shard logs
    /// (property-tested in `tests/spill_pipeline.rs`).
    ///
    /// Temporary files live in a fresh directory under
    /// [`std::env::temp_dir`] and are removed before returning (including
    /// on error).
    ///
    /// # Errors
    ///
    /// As for [`ShardedDesDriver::run`], plus [`UsimError::Spill`] for any
    /// failure creating, writing, sealing or reading the temporary spill
    /// streams.
    pub fn run_spill_streamed<S: LogSink>(
        &self,
        population: &CompiledPopulation,
        config: &RunConfig,
        shards: NonZeroUsize,
        envs: Vec<ShardEnv>,
        mut sink: S,
    ) -> Result<(S, DesRunStats), UsimError> {
        let plan = ShardPlan::new(config.n_users, shards);
        let dir = ShardSpillDir::create()?;
        let paths: Vec<PathBuf> = (0..plan.active_shards())
            .map(|s| dir.path().join(format!("shard{s:04}.spill")))
            .collect();
        let results = self.run_shards(population, config, plan, envs, |s| {
            Ok(SpillSink::create(&paths[s])?)
        })?;
        let mut stats = Vec::with_capacity(results.len());
        for (spill, st) in results {
            // Seal each stream: an unsealed spill file is indistinguishable
            // from a crashed run and the merge would reject it.
            spill.finish()?;
            stats.push(st);
        }
        merge_spill_shards(&paths, &mut sink)?;
        Ok((sink, merge_stats(stats)))
    }
}

/// Monotonic counter distinguishing concurrent streamed runs in one
/// process (tests run many in parallel).
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh per-run temporary directory for per-shard spill streams,
/// removed (best-effort) when dropped — also on the error paths.
#[derive(Debug)]
struct ShardSpillDir(PathBuf);

impl ShardSpillDir {
    fn create() -> io::Result<Self> {
        let path = std::env::temp_dir().join(format!(
            "uswg-shard-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(Self(path))
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ShardSpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Folds per-shard run statistics (given in shard order) into one:
/// event counts sum, the duration is the longest shard's, and resource
/// statistics aggregate positionally by name — every shard built its model
/// from the same config, so the pools register the same resources in the
/// same order.
fn merge_stats(stats: Vec<DesRunStats>) -> DesRunStats {
    let mut iter = stats.into_iter();
    let mut merged = iter.next().expect("at least one active shard");
    for st in iter {
        merged.events += st.events;
        merged.duration = merged.duration.max(st.duration);
        for (i, (name, rs)) in st.resources.into_iter().enumerate() {
            match merged.resources.get_mut(i) {
                Some((have, acc)) if *have == name => add_stats(acc, &rs),
                // Defensive: heterogeneous shard models should not happen,
                // but a mismatch must not silently mis-aggregate.
                _ => merged.resources.push((name, rs)),
            }
        }
    }
    merged
}

/// Adds `b`'s tallies into `a` (sums and the max single wait).
fn add_stats(a: &mut ResourceStats, b: &ResourceStats) {
    a.jobs += b.jobs;
    a.total_service += b.total_service;
    a.total_wait += b.total_wait;
    a.max_wait = a.max_wait.max(b.max_wait);
}

/// Deterministic k-way merge of per-shard usage logs, the full-log half of
/// the shard merge.
///
/// Within a shard, the DES emits operation records in nondecreasing
/// *completion* time (`at + response`) and session records in nondecreasing
/// logout time — both are sorted streams. The merge therefore re-sequences
/// globally by `(completion time, shard index)` for ops and `(end, shard
/// index)` for sessions, preserving within-shard order, which makes the
/// merged log a pure function of the shard logs: independent of worker
/// count, finish order and scheduler backend. With a single shard this is
/// the identity, so a K = 1 merged log is byte-identical to the unsharded
/// driver's.
pub fn merge_shard_logs(logs: Vec<UsageLog>) -> UsageLog {
    let total_ops: usize = logs.iter().map(|l| l.ops().len()).sum();
    let total_sessions: usize = logs.iter().map(|l| l.sessions().len()).sum();
    let mut out = UsageLog::with_capacity(total_ops, total_sessions);
    let op_streams: Vec<_> = logs.iter().map(|l| l.ops()).collect();
    kway_merge_by(
        &op_streams,
        |op| op.at.saturating_add(op.response),
        |op| {
            out.push_op(op);
        },
    );
    let session_streams: Vec<_> = logs.iter().map(|l| l.sessions()).collect();
    kway_merge_by(&session_streams, |s| s.end, |s| out.push_session(s));
    out
}

/// The streaming counterpart of [`merge_shard_logs`]: k-way merges sealed
/// per-shard spill files (one per shard, **in shard order**) directly from
/// their frame iterators into `sink`, emitting every merged op record and
/// then every merged session record — the same `(key, shard index)` order
/// and the same replay shape, without materializing any log. Each file is
/// streamed twice (an op pass, then a session pass); each pass decodes
/// only its own record kind and hops over the other kind's frames
/// structurally, so resident memory is one decoded frame per shard and no
/// frame is decoded more than once across the two passes.
///
/// # Errors
///
/// Propagates open/decode errors from the spill files, including the
/// truncation and corruption rejections of
/// [`SpillReader`](crate::SpillReader); nothing is emitted past the first
/// error.
pub fn merge_spill_shards<S: LogSink>(paths: &[PathBuf], sink: &mut S) -> io::Result<()> {
    let op_streams: Vec<_> = paths
        .iter()
        .map(|p| {
            // `ops_only` hops over session frames structurally, so each
            // pass decodes only the record kind it merges.
            SpillReader::open(p).map(|r| {
                r.ops_only().filter_map(|record| match record {
                    Ok(SpillRecord::Op(op)) => Some(Ok(op)),
                    Ok(SpillRecord::Session(_)) => None,
                    Err(e) => Some(Err(e)),
                })
            })
        })
        .collect::<io::Result<_>>()?;
    kway_merge_streams(
        op_streams,
        |op: &OpRecord| op.at.saturating_add(op.response),
        |op| sink.record_op(&op),
    )?;
    let session_streams: Vec<_> = paths
        .iter()
        .map(|p| {
            SpillReader::open(p).map(|r| {
                r.sessions_only().filter_map(|record| match record {
                    Ok(SpillRecord::Session(s)) => Some(Ok(s)),
                    Ok(SpillRecord::Op(_)) => None,
                    Err(e) => Some(Err(e)),
                })
            })
        })
        .collect::<io::Result<_>>()?;
    kway_merge_streams(
        session_streams,
        |s: &SessionRecord| s.end,
        |s| sink.record_session(&s),
    )
}

/// Stable k-way merge over fallible streams: repeatedly emits the head with
/// the smallest `(key, stream index)`, holding one head per stream. The
/// streaming twin of [`kway_merge_by`]; the first stream error aborts the
/// merge.
fn kway_merge_streams<T, I>(
    mut streams: Vec<I>,
    key: impl Fn(&T) -> u64,
    mut emit: impl FnMut(T),
) -> io::Result<()>
where
    I: Iterator<Item = io::Result<T>>,
{
    let mut heads: Vec<Option<T>> = streams
        .iter_mut()
        .map(|s| s.next().transpose())
        .collect::<io::Result<_>>()?;
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (s, head) in heads.iter().enumerate() {
            if let Some(item) = head {
                let k = key(item);
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, s));
                }
            }
        }
        let Some((_, s)) = best else {
            return Ok(());
        };
        let item = heads[s].take().expect("best head exists");
        heads[s] = streams[s].next().transpose()?;
        emit(item);
    }
}

/// Stable k-way merge of sorted streams: repeatedly emits the head with the
/// smallest `(key, stream index)`. Streams are expected nondecreasing in
/// `key` (debug-asserted); a linear scan over stream heads is plenty — K is
/// a core count, not a collection size.
fn kway_merge_by<T: Copy>(streams: &[&[T]], key: impl Fn(&T) -> u64, mut emit: impl FnMut(T)) {
    #[cfg(debug_assertions)]
    for stream in streams {
        debug_assert!(
            stream.windows(2).all(|w| key(&w[0]) <= key(&w[1])),
            "shard streams must be sorted by merge key"
        );
    }
    let mut heads = vec![0usize; streams.len()];
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (s, stream) in streams.iter().enumerate() {
            if let Some(item) = stream.get(heads[s]) {
                let k = key(item);
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, s));
                }
            }
        }
        let Some((_, s)) = best else {
            return;
        };
        emit(streams[s][heads[s]]);
        heads[s] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partitions_every_user_exactly_once() {
        for (n, k) in [(1usize, 1usize), (5, 2), (7, 3), (3, 7), (10, 4)] {
            let plan = ShardPlan::new(n, NonZeroUsize::new(k).unwrap());
            let mut seen = vec![0u32; n];
            for s in 0..plan.shards() {
                assert_eq!(plan.members(s).count(), plan.shard_len(s), "n={n} k={k}");
                for u in plan.members(s) {
                    assert_eq!(plan.shard_of(u), s);
                    seen[u] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "n={n} k={k}: {seen:?}");
            assert_eq!(plan.active_shards(), n.min(k));
            // Empty shards report zero members.
            for s in plan.active_shards()..plan.shards() {
                assert_eq!(plan.shard_len(s), 0);
            }
        }
    }

    #[test]
    fn shard_zero_replays_the_unsharded_model_stream() {
        assert_eq!(shard_model_seed(0x5EED, 0), 0x5EED ^ MODEL_SEED_XOR);
    }

    #[test]
    fn shard_seeds_are_distinct_and_k_independent() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..512 {
            assert!(seen.insert(shard_model_seed(42, s)), "collision at {s}");
        }
        // The seed formula never mentions K: trivially stable under K by
        // construction; pin it anyway so a refactor cannot sneak K in.
        let plan2 = ShardPlan::new(10, NonZeroUsize::new(2).unwrap());
        let plan5 = ShardPlan::new(10, NonZeroUsize::new(5).unwrap());
        assert_eq!(plan2.shard_of(7) % 2, 1);
        assert_eq!(plan5.shard_of(7), 2);
        assert_eq!(shard_model_seed(9, 1), shard_model_seed(9, 1));
    }

    #[test]
    fn kway_merge_is_stable_and_ordered() {
        let a = [1u64, 3, 3, 9];
        let b = [2u64, 3, 8];
        let c: [u64; 0] = [];
        let mut out = Vec::new();
        kway_merge_by(&[&a, &b, &c], |&x| x, |x| out.push(x));
        assert_eq!(out, vec![1, 2, 3, 3, 3, 8, 9]);
        // Ties: stream 0's 3s both precede stream 1's 3 (shard order).
        let mut tagged = Vec::new();
        let ta = [(3u64, 'a'), (3, 'A')];
        let tb = [(3u64, 'b')];
        kway_merge_by(&[&ta, &tb], |&(k, _)| k, |x| tagged.push(x.1));
        assert_eq!(tagged, vec!['a', 'A', 'b']);
    }

    #[test]
    fn streaming_kway_merge_matches_slice_merge() {
        let a = [1u64, 3, 3, 9];
        let b = [2u64, 3, 8];
        let c: [u64; 0] = [];
        let mut slice_out = Vec::new();
        kway_merge_by(&[&a, &b, &c], |&x| x, |x| slice_out.push(x));
        let streams: Vec<_> = [&a[..], &b[..], &c[..]]
            .into_iter()
            .map(|s| s.iter().copied().map(io::Result::Ok))
            .collect();
        let mut stream_out = Vec::new();
        kway_merge_streams(streams, |&x| x, |x| stream_out.push(x)).unwrap();
        assert_eq!(stream_out, slice_out);
        // An error in any stream aborts the merge.
        let bad: Vec<io::Result<u64>> = vec![Ok(1), Err(io::Error::other("boom"))];
        let good: Vec<io::Result<u64>> = vec![Ok(2), Ok(3)];
        let mut out = Vec::new();
        let err = kway_merge_streams(
            vec![bad.into_iter(), good.into_iter()],
            |&x| x,
            |x| out.push(x),
        );
        assert!(err.is_err());
    }

    #[test]
    fn merge_spill_shards_matches_merge_shard_logs() {
        // Two hand-built shard logs, spilled to files, streamed back
        // through the k-way merge — record-for-record what the in-memory
        // oracle produces.
        let dir = std::env::temp_dir().join(format!(
            "uswg-shard-merge-test-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mk_op = |at: u64, response: u64, user: usize| OpRecord {
            at,
            user,
            session: 0,
            op: uswg_netfs::OpKind::Read,
            ino: 1,
            bytes: 64,
            file_size: 640,
            response,
            category: uswg_fsc::FileCategory::REG_USER_RDONLY,
            retries: 0,
            aborted: false,
        };
        let mk_session = |end: u64, user: usize| SessionRecord {
            user,
            user_type: 0,
            session: 0,
            start: 0,
            end,
            ops: 2,
            files_referenced: 1,
            file_bytes_referenced: 640,
            bytes_accessed: 128,
            bytes_read: 128,
            bytes_written: 0,
            total_response: 9,
        };
        let mut shard0 = UsageLog::new();
        shard0.push_op(mk_op(1, 4, 0)); // completes at 5
        shard0.push_op(mk_op(7, 0, 0)); // completes at 7 (tie with shard 1)
        shard0.push_session(mk_session(10, 0));
        let mut shard1 = UsageLog::new();
        shard1.push_op(mk_op(2, 1, 1)); // completes at 3
        shard1.push_op(mk_op(6, 1, 1)); // completes at 7 (loses the tie)
        shard1.push_session(mk_session(9, 1));
        let paths: Vec<PathBuf> = (0..2).map(|s| dir.join(format!("s{s}.spill"))).collect();
        for (path, log) in paths.iter().zip([&shard0, &shard1]) {
            let mut sink = SpillSink::create(path).unwrap();
            for op in log.ops() {
                crate::LogSink::record_op(&mut sink, op);
            }
            for s in log.sessions() {
                crate::LogSink::record_session(&mut sink, s);
            }
            sink.finish().unwrap();
        }
        let mut streamed = UsageLog::new();
        merge_spill_shards(&paths, &mut streamed).unwrap();
        let oracle = merge_shard_logs(vec![shard0, shard1]);
        assert_eq!(streamed.to_json().unwrap(), oracle.to_json().unwrap());
        // The tie at completion time 7 resolves in shard order.
        assert_eq!(streamed.ops()[2].user, 0);
        assert_eq!(streamed.ops()[3].user, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_stream_merge_is_identity() {
        let mut log = UsageLog::new();
        log.push_session(crate::log::SessionRecord {
            user: 3,
            user_type: 0,
            session: 0,
            start: 0,
            end: 10,
            ops: 1,
            files_referenced: 1,
            file_bytes_referenced: 5,
            bytes_accessed: 5,
            bytes_read: 5,
            bytes_written: 0,
            total_response: 2,
        });
        let before = log.to_json().unwrap();
        let merged = merge_shard_logs(vec![log]);
        assert_eq!(merged.to_json().unwrap(), before);
    }
}
