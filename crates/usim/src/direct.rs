//! The direct driver: executes sessions back-to-back against the VFS with
//! no timing model.
//!
//! This is how the original tool ran when the measured quantity was the
//! usage distribution itself rather than response time — it powers the
//! Figure 5.3–5.5 studies (600 login sessions) and the throughput benches.
//! Response times are measured with the host's monotonic clock, so they
//! reflect this machine's in-memory file system, not a model.

use crate::compile::CompiledPopulation;
use crate::log::{OpRecord, SessionRecord, UsageLog};
use crate::session::{Session, MAX_ACCESS_BYTES};
use crate::{RunConfig, UsimError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use uswg_fsc::FileCatalog;
use uswg_vfs::Vfs;

/// Runs every user's sessions sequentially. See the module documentation for the full model description.
#[derive(Debug, Default)]
pub struct DirectDriver;

impl DirectDriver {
    /// Creates a driver.
    pub fn new() -> Self {
        Self
    }

    /// Executes the run and returns the usage log.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and unexpected file-system
    /// errors.
    pub fn run(
        &self,
        vfs: &mut Vfs,
        catalog: &FileCatalog,
        population: &CompiledPopulation,
        config: &RunConfig,
    ) -> Result<UsageLog, UsimError> {
        config.validate()?;
        let assignment = population.assign(config.n_users);
        let mut log = UsageLog::new();
        let mut buf = vec![0xA5u8; MAX_ACCESS_BYTES as usize];

        for (user, &type_idx) in assignment.iter().enumerate() {
            let utype = &population.types()[type_idx];
            let mut rng =
                StdRng::seed_from_u64(config.seed ^ (user as u64).wrapping_mul(0x9E37_79B9));
            let mut proc = vfs.new_process();
            let mut behavior = utype.new_behavior();
            // Virtual clock: think times are sampled (keeping the RNG stream
            // identical to the DES driver's) and accumulated, but not slept.
            let mut virtual_clock: u64 = 0;

            for ordinal in 0..config.sessions_per_user {
                let mut session = Session::plan(user, type_idx, ordinal, utype, catalog, &mut rng);
                let start = virtual_clock;
                vfs.set_clock(start);
                loop {
                    let before = Instant::now();
                    let Some(exec) =
                        session.next_op(vfs, &mut proc, utype, catalog, &mut buf, &mut rng)?
                    else {
                        break;
                    };
                    let response = before.elapsed().as_micros() as u64;
                    session.metrics.total_response += response;
                    if config.record_ops {
                        log.push_op(OpRecord {
                            at: virtual_clock,
                            user,
                            session: ordinal,
                            op: exec.request.kind,
                            ino: exec.request.file.0,
                            bytes: exec.request.bytes,
                            file_size: exec.request.file_size,
                            response,
                            category: exec.category,
                            retries: 0,
                            aborted: false,
                        });
                    }
                    virtual_clock += utype.sample_think(&mut behavior, &mut rng);
                    vfs.set_clock(virtual_clock);
                }
                let end = virtual_clock;
                let m = session.metrics;
                log.push_session(SessionRecord {
                    user,
                    user_type: session.user_type,
                    session: ordinal,
                    start,
                    end,
                    ops: m.ops,
                    files_referenced: m.files_referenced,
                    file_bytes_referenced: m.file_bytes_referenced,
                    bytes_accessed: m.bytes_read + m.bytes_written,
                    bytes_read: m.bytes_read,
                    bytes_written: m.bytes_written,
                    total_response: m.total_response,
                });
                // Logout → next login gap (same RNG point as the DES driver).
                virtual_clock += utype.sample_inter_session(virtual_clock, &mut rng);
            }
        }
        Ok(log)
    }
}
