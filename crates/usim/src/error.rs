use std::fmt;
use uswg_distr::DistrError;
use uswg_vfs::FsError;

/// Errors from building or running the User Simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UsimError {
    /// The population has no user types.
    EmptyPopulation,
    /// User-type fractions must be positive and sum to one.
    BadFractions {
        /// The offending sum.
        sum: f64,
    },
    /// A user type has no category usages.
    EmptyUserType {
        /// The user type's name.
        name: String,
    },
    /// A probability parameter was outside `[0, 1]`.
    BadProbability {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A run-configuration count was zero.
    BadCount {
        /// Name of the parameter.
        name: &'static str,
    },
    /// The requested population does not fit the user arena's packed
    /// per-user ids (`u32`).
    PopulationTooLarge {
        /// The requested user count.
        n_users: usize,
    },
    /// The sharded driver was handed the wrong number of shard
    /// environments for the plan's active shard count.
    ShardEnvMismatch {
        /// Environments the plan requires (one per active shard).
        expected: usize,
        /// Environments actually supplied.
        got: usize,
    },
    /// A distribution could not be instantiated or tabulated.
    Distribution(DistrError),
    /// The file system rejected an operation the simulator cannot skip.
    FileSystem(FsError),
    /// A spill-file operation failed (writing, sealing or merging the
    /// per-shard streams of a streamed full-log run). Holds the rendered
    /// I/O error: `std::io::Error` is neither `Clone` nor `PartialEq`, and
    /// callers only ever report this.
    Spill {
        /// The rendered underlying I/O error.
        message: String,
    },
}

impl fmt::Display for UsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsimError::EmptyPopulation => write!(f, "population has no user types"),
            UsimError::BadFractions { sum } => {
                write!(f, "user-type fractions must sum to 1 (sum = {sum})")
            }
            UsimError::EmptyUserType { name } => {
                write!(f, "user type `{name}` has no category usages")
            }
            UsimError::BadProbability { name, value } => {
                write!(f, "probability `{name}` outside [0, 1] (got {value})")
            }
            UsimError::BadCount { name } => write!(f, "count `{name}` must be positive"),
            UsimError::PopulationTooLarge { n_users } => write!(
                f,
                "population of {n_users} users exceeds the arena limit of 2^32 - 1"
            ),
            UsimError::ShardEnvMismatch { expected, got } => write!(
                f,
                "sharded run needs one environment per active shard (expected {expected}, got {got})"
            ),
            UsimError::Distribution(e) => write!(f, "distribution: {e}"),
            UsimError::FileSystem(e) => write!(f, "file system: {e}"),
            UsimError::Spill { message } => write!(f, "spill: {message}"),
        }
    }
}

impl std::error::Error for UsimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UsimError::Distribution(e) => Some(e),
            UsimError::FileSystem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistrError> for UsimError {
    fn from(e: DistrError) -> Self {
        UsimError::Distribution(e)
    }
}

impl From<FsError> for UsimError {
    fn from(e: FsError) -> Self {
        UsimError::FileSystem(e)
    }
}

impl From<std::io::Error> for UsimError {
    fn from(e: std::io::Error) -> Self {
        UsimError::Spill {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(UsimError::EmptyPopulation
            .to_string()
            .contains("no user types"));
        assert!(UsimError::BadFractions { sum: 0.5 }
            .to_string()
            .contains("0.5"));
        let e: UsimError = FsError::NoSpace.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
