//! Event scheduling and the simulation main loop.

use crate::calendar::CalendarQueue;
use crate::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// The behaviour of a simulated system: how it reacts to each event.
///
/// Handlers receive the event and the [`Scheduler`], from which they can read
/// the current time and schedule follow-up events. Keeping the world and the
/// scheduler separate sidesteps borrow conflicts between simulation state and
/// the event queue.
pub trait World {
    /// The event type driving this world.
    type Event;

    /// Reacts to one event. The current time is `sched.now()`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Which data structure backs the event queue.
///
/// Both backends drain events in exactly the same `(time, seq)` total order
/// — the heap by comparison, the calendar by construction (see
/// [`CalendarQueue`]) — so a given seed produces byte-identical simulations
/// under either. They differ only in cost: the heap pays O(log n) per
/// operation, the calendar O(1) amortized, which starts to matter around
/// ~10⁴ pending events and dominates at ≥ 10⁵ (see the `des_throughput`
/// bench and `BENCH_baseline.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SchedulerBackend {
    /// Binary min-heap: O(log n) push/pop, lowest constant factors, best for
    /// small event populations (≲ 10k pending events).
    Heap,
    /// Calendar queue with adaptive bucket resizing: O(1) amortized
    /// push/pop, best for large populations (≳ 100k pending events).
    Calendar,
}

impl SchedulerBackend {
    /// Parses a backend name (`"heap"` or `"calendar"`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "heap" => Some(SchedulerBackend::Heap),
            "calendar" => Some(SchedulerBackend::Calendar),
            _ => None,
        }
    }

    /// The backend's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerBackend::Heap => "heap",
            SchedulerBackend::Calendar => "calendar",
        }
    }

    /// The process-wide default backend: the `USWG_SCHEDULER` environment
    /// variable (`heap` | `calendar`), or [`SchedulerBackend::Heap`] when
    /// unset. Read once and memoized, so a process cannot observe a
    /// mid-run change. This is how CI runs the whole test suite as a
    /// two-entry backend matrix without touching any individual test.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a misconfigured matrix entry must
    /// fail loudly, not silently test the wrong backend.
    pub fn from_env() -> Self {
        static CHOICE: OnceLock<SchedulerBackend> = OnceLock::new();
        *CHOICE.get_or_init(|| match std::env::var("USWG_SCHEDULER") {
            Ok(v) => SchedulerBackend::parse(&v).unwrap_or_else(|| {
                panic!("USWG_SCHEDULER={v:?} is not a scheduler backend (expected heap|calendar)")
            }),
            Err(_) => SchedulerBackend::Heap,
        })
    }
}

impl Default for SchedulerBackend {
    /// Defaults to [`SchedulerBackend::from_env`], so one environment
    /// variable switches every default-configured simulation in the process.
    fn default() -> Self {
        Self::from_env()
    }
}

impl std::fmt::Display for SchedulerBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One pending event. Ordered by time, then by insertion sequence so that
/// simultaneous events run in FIFO order (deterministic replay).
///
/// Layout note: `at` and `seq` lead so the comparison key sits in the first
/// 16 bytes; with a zero-sized or small event payload the whole entry packs
/// into one or two cache lines' worth of heap slots (see the
/// `scheduled_stays_compact` test).
pub(crate) struct Scheduled<E> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The pending-event store: one variant per [`SchedulerBackend`]. Enum
/// dispatch (not a trait object) keeps every queue operation inlinable in
/// the hot loop; the branch is perfectly predicted since a scheduler never
/// changes backend mid-run.
#[derive(Debug)]
enum Queue<E> {
    Heap(BinaryHeap<Reverse<Scheduled<E>>>),
    Calendar(CalendarQueue<E>),
}

impl<E> Queue<E> {
    #[inline]
    fn push(&mut self, ev: Scheduled<E>) {
        match self {
            Queue::Heap(h) => h.push(Reverse(ev)),
            Queue::Calendar(c) => c.push(ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled<E>> {
        match self {
            Queue::Heap(h) => h.pop().map(|Reverse(s)| s),
            Queue::Calendar(c) => c.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Heap(h) => h.len(),
            Queue::Calendar(c) => c.len(),
        }
    }

    fn reserve(&mut self, additional: usize) {
        match self {
            Queue::Heap(h) => h.reserve(additional),
            // The calendar sizes its bucket array from the live population;
            // per-bucket deques are too small to be worth pre-sizing.
            Queue::Calendar(_) => {}
        }
    }
}

/// A lazily materialized block of time-zero seed events: event `i` of
/// `count` is `make(i)`, occupying slot `(SimTime::ZERO, seq = i)` in the
/// drain order. Population-scale simulations seed one wake-up per user;
/// materializing those up front costs O(users) queue memory for events
/// whose content is a pure function of their index. Streaming them instead
/// is free: every seed sequence number is below every dynamic sequence
/// number (the scheduler's counter starts at `count`), and `now` cannot
/// advance while a time-zero event remains, so a pending seed event *always*
/// precedes the entire queue — [`Scheduler::pop`] can drain the stream
/// unconditionally, no peek or merge required. The drain order is
/// byte-identical to scheduling the same events eagerly before `run`.
struct SeedEvents<E> {
    make: Box<dyn FnMut(usize) -> E + Send>,
    next: usize,
    count: usize,
}

impl<E> std::fmt::Debug for SeedEvents<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeedEvents")
            .field("next", &self.next)
            .field("count", &self.count)
            .finish_non_exhaustive()
    }
}

/// The event queue and virtual clock of a simulation.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    backend: SchedulerBackend,
    queue: Queue<E>,
    seed: Option<SeedEvents<E>>,
}

impl<E> std::fmt::Debug for Scheduled<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Self::with_capacity(0)
    }

    fn with_capacity(capacity: usize) -> Self {
        Self::with_backend(SchedulerBackend::default(), capacity)
    }

    fn with_backend(backend: SchedulerBackend, capacity: usize) -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            backend,
            queue: match backend {
                SchedulerBackend::Heap => Queue::Heap(BinaryHeap::with_capacity(capacity)),
                SchedulerBackend::Calendar => Queue::Calendar(CalendarQueue::new()),
            },
            seed: None,
        }
    }

    /// Like `with_backend`, but with `count` time-zero seed events streamed
    /// lazily from `make` instead of stored (see [`SeedEvents`]). The seed
    /// events own sequence numbers `0..count`; dynamically scheduled events
    /// continue from `count`, so the drain order is byte-identical to
    /// calling `schedule(0, make(i))` for each `i` before the first pop —
    /// without ever holding the seeds in memory.
    fn with_backend_seeded(
        backend: SchedulerBackend,
        capacity: usize,
        count: usize,
        make: impl FnMut(usize) -> E + Send + 'static,
    ) -> Self {
        let mut sched = Self::with_backend(backend, capacity);
        sched.seq = count as u64;
        if count > 0 {
            sched.seed = Some(SeedEvents {
                make: Box::new(make),
                next: 0,
                count,
            });
        }
        sched
    }

    /// The backend this scheduler runs on.
    pub fn backend(&self) -> SchedulerBackend {
        self.backend
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay_micros` after the current time.
    #[inline]
    pub fn schedule(&mut self, delay_micros: u64, event: E) {
        self.schedule_at(self.now.saturating_add(delay_micros), event);
    }

    /// Schedules `event` at an absolute time.
    ///
    /// Events scheduled in the past are clamped to fire "now" (they still run
    /// after the current handler returns), preserving causality.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Number of events still pending (queued plus unstreamed seed events).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.seed.as_ref().map_or(0, |s| s.count - s.next)
    }

    /// Pre-allocates room for at least `additional` more pending events, so
    /// steady-state scheduling never reallocates the heap mid-run.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled<E>> {
        // A pending seed event is (ZERO, seq < count): it precedes every
        // queued event, whose time is ≥ 0 and whose seq is ≥ count. No
        // comparison against the queue top is needed (see [`SeedEvents`]).
        if let Some(seed) = self.seed.as_mut() {
            let i = seed.next;
            seed.next += 1;
            let event = (seed.make)(i);
            if seed.next == seed.count {
                self.seed = None;
            }
            return Some(Scheduled {
                at: SimTime::ZERO,
                seq: i as u64,
                event,
            });
        }
        self.queue.pop()
    }

    /// Reinserts an event that was popped but **not** executed (the
    /// deadline overshoot in [`Simulation::run_until`]). The original
    /// sequence number puts it back at exactly its previous position. The
    /// calendar backend additionally rewinds its search floor to `now`:
    /// popping had advanced the floor to the event's (possibly far-future)
    /// time, and leaving it there would let later `schedule` calls insert
    /// events below the search window — draining them out of order.
    fn unpop(&mut self, ev: Scheduled<E>) {
        // Only deadline overshoots land here, and a seed event (time zero)
        // cannot overshoot any deadline — so reinserting into the queue
        // while seeds still stream first can never reorder against them.
        debug_assert!(
            self.seed.is_none() || ev.at > SimTime::ZERO,
            "a time-zero seed event cannot overshoot a deadline"
        );
        if let Queue::Calendar(c) = &mut self.queue {
            c.reanchor(self.now.micros());
        }
        self.queue.push(ev);
    }
}

/// A discrete-event simulation: a [`World`] plus its [`Scheduler`].
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero with an empty event queue.
    pub fn new(world: W) -> Self {
        Self {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Creates a simulation whose event queue is pre-sized for `capacity`
    /// concurrent pending events. Drivers that know their steady-state
    /// event population (e.g. one in-flight event per simulated user) avoid
    /// every mid-run heap reallocation this way.
    pub fn with_capacity(world: W, capacity: usize) -> Self {
        Self {
            world,
            sched: Scheduler::with_capacity(capacity),
        }
    }

    /// Creates a simulation on an explicit [`SchedulerBackend`], pre-sized
    /// for `capacity` pending events. [`Simulation::new`] and
    /// [`Simulation::with_capacity`] use [`SchedulerBackend::default`]
    /// (the `USWG_SCHEDULER` environment variable, or the heap).
    pub fn with_backend(world: W, backend: SchedulerBackend, capacity: usize) -> Self {
        Self {
            world,
            sched: Scheduler::with_backend(backend, capacity),
        }
    }

    /// Creates a simulation pre-loaded with `count` time-zero seed events,
    /// streamed lazily: event `i` is `make(i)`, fired in index order before
    /// every dynamically scheduled event. Byte-identical to calling
    /// `schedule(0, make(i))` for `i` in `0..count` after construction, but
    /// the seeds occupy no queue memory — the difference between O(users)
    /// and O(live events) resident footprint for population-scale runs
    /// whose users are mostly idle at any instant.
    ///
    /// `capacity` pre-sizes the queue for *dynamic* events only.
    pub fn with_backend_seeded(
        world: W,
        backend: SchedulerBackend,
        capacity: usize,
        count: usize,
        make: impl FnMut(usize) -> W::Event + Send + 'static,
    ) -> Self {
        Self {
            world,
            sched: Scheduler::with_backend_seeded(backend, capacity, count, make),
        }
    }

    /// The backend the event queue runs on.
    pub fn backend(&self) -> SchedulerBackend {
        self.sched.backend()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Number of events still pending in the queue.
    pub fn pending(&self) -> usize {
        self.sched.pending()
    }

    /// Pre-allocates room for at least `additional` more pending events.
    pub fn reserve_events(&mut self, additional: usize) {
        self.sched.reserve(additional);
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an initial event `delay_micros` from now.
    pub fn schedule(&mut self, delay_micros: u64, event: W::Event) {
        self.sched.schedule(delay_micros, event);
    }

    /// Runs until the event queue is empty. Returns the number of events
    /// processed.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue is empty or the next event is later than
    /// `deadline` (that event stays queued). Returns the number of events
    /// processed.
    ///
    /// The loop is fused: each event is extracted with a single heap pop
    /// instead of a peek/pop pair, and the rare event beyond the deadline is
    /// pushed back with its original sequence number, which re-inserts it at
    /// exactly its previous position (FIFO order among simultaneous events
    /// is untouched).
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut steps = 0;
        while let Some(ev) = self.sched.pop() {
            if ev.at > deadline {
                self.sched.unpop(ev);
                break;
            }
            debug_assert!(ev.at >= self.sched.now, "time must not run backwards");
            self.sched.now = ev.at;
            self.world.handle(ev.event, &mut self.sched);
            steps += 1;
        }
        steps
    }

    /// Runs at most `max_events` events. Returns the number processed.
    pub fn run_steps(&mut self, max_events: u64) -> u64 {
        let mut steps = 0;
        while steps < max_events {
            let Some(ev) = self.sched.pop() else { break };
            self.sched.now = ev.at;
            self.world.handle(ev.event, &mut self.sched);
            steps += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the order and time at which labeled events fire.
    struct Recorder {
        fired: Vec<(u32, SimTime)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, event: u32, sched: &mut Scheduler<u32>) {
            self.fired.push((event, sched.now()));
            // Event 100 chains a follow-up.
            if event == 100 {
                sched.schedule(10, 101);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(30, 3);
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        let steps = sim.run();
        assert_eq!(steps, 3);
        let order: Vec<u32> = sim.world().fired.iter().map(|&(e, _)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_micros(30));
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        for i in 0..50 {
            sim.schedule(5, i);
        }
        sim.run();
        let order: Vec<u32> = sim.world().fired.iter().map(|&(e, _)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(5, 100);
        sim.run();
        assert_eq!(
            sim.world().fired,
            vec![
                (100, SimTime::from_micros(5)),
                (101, SimTime::from_micros(15))
            ]
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        sim.schedule(30, 3);
        let steps = sim.run_until(SimTime::from_micros(20));
        assert_eq!(steps, 2);
        assert_eq!(sim.now(), SimTime::from_micros(20));
        // The remaining event is still there.
        assert_eq!(sim.run(), 1);
        assert_eq!(sim.now(), SimTime::from_micros(30));
    }

    #[test]
    fn run_steps_bounds_event_count() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        for i in 0..10 {
            sim.schedule(i as u64, i);
        }
        assert_eq!(sim.run_steps(4), 4);
        assert_eq!(sim.world().fired.len(), 4);
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct PastScheduler;
        impl World for PastScheduler {
            type Event = bool;
            fn handle(&mut self, first: bool, sched: &mut Scheduler<bool>) {
                if first {
                    // Try to schedule before "now"; must clamp, not panic.
                    sched.schedule_at(SimTime::ZERO, false);
                }
            }
        }
        let mut sim = Simulation::new(PastScheduler);
        sim.schedule(100, true);
        assert_eq!(sim.run(), 2);
        assert_eq!(sim.now(), SimTime::from_micros(100));
    }

    #[test]
    fn pending_counts_queue() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(1, 1);
        sim.schedule(2, 2);
        assert_eq!(sim.sched.pending(), 2);
        assert_eq!(sim.pending(), 2);
    }

    #[test]
    fn with_capacity_presizes_without_behavior_change() {
        let mut plain = Simulation::new(Recorder { fired: vec![] });
        let mut sized = Simulation::with_capacity(Recorder { fired: vec![] }, 64);
        sized.reserve_events(64);
        for i in 0..50 {
            plain.schedule(100 - i as u64, i);
            sized.schedule(100 - i as u64, i);
        }
        plain.run();
        sized.run();
        assert_eq!(plain.world().fired, sized.world().fired);
    }

    #[test]
    fn run_until_pushback_preserves_fifo_order() {
        // Two events at the same instant beyond the deadline: the popped-
        // then-reinserted head must still fire before its sibling.
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(5, 0);
        sim.schedule(10, 1);
        sim.schedule(10, 2);
        assert_eq!(sim.run_until(SimTime::from_micros(5)), 1);
        assert_eq!(sim.pending(), 2);
        sim.run();
        let order: Vec<u32> = sim.world().fired.iter().map(|&(e, _)| e).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn backend_parsing_round_trips() {
        for b in [SchedulerBackend::Heap, SchedulerBackend::Calendar] {
            assert_eq!(SchedulerBackend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(SchedulerBackend::parse("splay"), None);
    }

    #[test]
    fn backend_serde_uses_snake_case_names() {
        let json = serde_json::to_string(&SchedulerBackend::Calendar).unwrap();
        assert_eq!(json, "\"calendar\"");
        let back: SchedulerBackend = serde_json::from_str(&json).unwrap();
        assert_eq!(back, SchedulerBackend::Calendar);
    }

    /// Runs a deterministic pseudo-random schedule/run_until/run_steps
    /// script and returns the fired sequence.
    fn scripted_run(backend: SchedulerBackend) -> Vec<(u32, SimTime)> {
        let mut sim = Simulation::with_backend(Recorder { fired: vec![] }, backend, 0);
        assert_eq!(sim.backend(), backend);
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut id = 0u32;
        for round in 0..40 {
            for _ in 0..25 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Mix of clustered, simultaneous and far-future delays.
                let delay = match state % 5 {
                    0 => 0,
                    1 => state % 7,
                    2 => state % 10_000,
                    3 => 1_000_000 + state % 1_000,
                    _ => u64::MAX / 2,
                };
                sim.schedule(delay, id);
                id += 1;
            }
            if round % 3 == 0 {
                sim.run_steps(7);
            } else {
                sim.run_until(sim.now().saturating_add(5_000));
            }
        }
        sim.run();
        sim.into_world().fired
    }

    #[test]
    fn backends_fire_identical_sequences() {
        let heap = scripted_run(SchedulerBackend::Heap);
        let calendar = scripted_run(SchedulerBackend::Calendar);
        // 1000 scripted events plus the follow-up Recorder chains off id 100.
        assert_eq!(heap.len(), 1_001);
        assert_eq!(heap, calendar);
    }

    #[test]
    fn calendar_backend_passes_the_heap_scenarios() {
        // The representative kernel behaviours, re-run on the calendar.
        let mut sim =
            Simulation::with_backend(Recorder { fired: vec![] }, SchedulerBackend::Calendar, 0);
        sim.schedule(30, 3);
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        assert_eq!(sim.run_until(SimTime::from_micros(20)), 2);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.run(), 1);
        let order: Vec<u32> = sim.world().fired.iter().map(|&(e, _)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);

        let mut sim =
            Simulation::with_backend(Recorder { fired: vec![] }, SchedulerBackend::Calendar, 0);
        for i in 0..50 {
            sim.schedule(5, i);
        }
        sim.run();
        let order: Vec<u32> = sim.world().fired.iter().map(|&(e, _)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pushback_then_earlier_schedule_stays_ordered() {
        // Regression: run_until pops a far-future event, pushes it back,
        // and the caller then schedules an *earlier* event. The calendar's
        // search floor had advanced to the far event's time during the pop;
        // without the unpop rewind, the later schedule lands below the
        // search window and the far event drains first (debug builds panic
        // on "time must not run backwards").
        let run = |backend| {
            let mut sim = Simulation::with_backend(Recorder { fired: vec![] }, backend, 0);
            sim.schedule(5, 0);
            sim.schedule(1_000_000, 1);
            assert_eq!(sim.run_until(SimTime::from_micros(10)), 1);
            sim.schedule(100, 2); // earlier than the pushed-back event
            sim.run();
            sim.into_world().fired
        };
        let heap = run(SchedulerBackend::Heap);
        let calendar = run(SchedulerBackend::Calendar);
        let order: Vec<u32> = heap.iter().map(|&(e, _)| e).collect();
        assert_eq!(order, vec![0, 2, 1]);
        assert_eq!(heap, calendar);
    }

    #[test]
    fn scheduled_stays_compact() {
        // The hot-loop entry must remain two comparison words plus payload.
        assert_eq!(std::mem::size_of::<Scheduled<()>>(), 16);
        assert!(std::mem::size_of::<Scheduled<u64>>() <= 24);
    }

    #[test]
    fn into_world_returns_state() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(1, 7);
        sim.run();
        let world = sim.into_world();
        assert_eq!(world.fired.len(), 1);
    }
}
