//! Event scheduling and the simulation main loop.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The behaviour of a simulated system: how it reacts to each event.
///
/// Handlers receive the event and the [`Scheduler`], from which they can read
/// the current time and schedule follow-up events. Keeping the world and the
/// scheduler separate sidesteps borrow conflicts between simulation state and
/// the event queue.
pub trait World {
    /// The event type driving this world.
    type Event;

    /// Reacts to one event. The current time is `sched.now()`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// One pending event. Ordered by time, then by insertion sequence so that
/// simultaneous events run in FIFO order (deterministic replay).
///
/// Layout note: `at` and `seq` lead so the comparison key sits in the first
/// 16 bytes; with a zero-sized or small event payload the whole entry packs
/// into one or two cache lines' worth of heap slots (see the
/// `scheduled_stays_compact` test).
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event queue and virtual clock of a simulation.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
}

impl<E> std::fmt::Debug for Scheduled<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Self::with_capacity(0)
    }

    fn with_capacity(capacity: usize) -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::with_capacity(capacity),
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay_micros` after the current time.
    #[inline]
    pub fn schedule(&mut self, delay_micros: u64, event: E) {
        self.schedule_at(self.now.saturating_add(delay_micros), event);
    }

    /// Schedules `event` at an absolute time.
    ///
    /// Events scheduled in the past are clamped to fire "now" (they still run
    /// after the current handler returns), preserving causality.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pre-allocates room for at least `additional` more pending events, so
    /// steady-state scheduling never reallocates the heap mid-run.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled<E>> {
        self.queue.pop().map(|Reverse(s)| s)
    }
}

/// A discrete-event simulation: a [`World`] plus its [`Scheduler`].
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero with an empty event queue.
    pub fn new(world: W) -> Self {
        Self {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Creates a simulation whose event queue is pre-sized for `capacity`
    /// concurrent pending events. Drivers that know their steady-state
    /// event population (e.g. one in-flight event per simulated user) avoid
    /// every mid-run heap reallocation this way.
    pub fn with_capacity(world: W, capacity: usize) -> Self {
        Self {
            world,
            sched: Scheduler::with_capacity(capacity),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Number of events still pending in the queue.
    pub fn pending(&self) -> usize {
        self.sched.pending()
    }

    /// Pre-allocates room for at least `additional` more pending events.
    pub fn reserve_events(&mut self, additional: usize) {
        self.sched.reserve(additional);
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an initial event `delay_micros` from now.
    pub fn schedule(&mut self, delay_micros: u64, event: W::Event) {
        self.sched.schedule(delay_micros, event);
    }

    /// Runs until the event queue is empty. Returns the number of events
    /// processed.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue is empty or the next event is later than
    /// `deadline` (that event stays queued). Returns the number of events
    /// processed.
    ///
    /// The loop is fused: each event is extracted with a single heap pop
    /// instead of a peek/pop pair, and the rare event beyond the deadline is
    /// pushed back with its original sequence number, which re-inserts it at
    /// exactly its previous position (FIFO order among simultaneous events
    /// is untouched).
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut steps = 0;
        while let Some(ev) = self.sched.pop() {
            if ev.at > deadline {
                self.sched.queue.push(Reverse(ev));
                break;
            }
            debug_assert!(ev.at >= self.sched.now, "time must not run backwards");
            self.sched.now = ev.at;
            self.world.handle(ev.event, &mut self.sched);
            steps += 1;
        }
        steps
    }

    /// Runs at most `max_events` events. Returns the number processed.
    pub fn run_steps(&mut self, max_events: u64) -> u64 {
        let mut steps = 0;
        while steps < max_events {
            let Some(ev) = self.sched.pop() else { break };
            self.sched.now = ev.at;
            self.world.handle(ev.event, &mut self.sched);
            steps += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the order and time at which labeled events fire.
    struct Recorder {
        fired: Vec<(u32, SimTime)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, event: u32, sched: &mut Scheduler<u32>) {
            self.fired.push((event, sched.now()));
            // Event 100 chains a follow-up.
            if event == 100 {
                sched.schedule(10, 101);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(30, 3);
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        let steps = sim.run();
        assert_eq!(steps, 3);
        let order: Vec<u32> = sim.world().fired.iter().map(|&(e, _)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_micros(30));
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        for i in 0..50 {
            sim.schedule(5, i);
        }
        sim.run();
        let order: Vec<u32> = sim.world().fired.iter().map(|&(e, _)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(5, 100);
        sim.run();
        assert_eq!(
            sim.world().fired,
            vec![
                (100, SimTime::from_micros(5)),
                (101, SimTime::from_micros(15))
            ]
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        sim.schedule(30, 3);
        let steps = sim.run_until(SimTime::from_micros(20));
        assert_eq!(steps, 2);
        assert_eq!(sim.now(), SimTime::from_micros(20));
        // The remaining event is still there.
        assert_eq!(sim.run(), 1);
        assert_eq!(sim.now(), SimTime::from_micros(30));
    }

    #[test]
    fn run_steps_bounds_event_count() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        for i in 0..10 {
            sim.schedule(i as u64, i);
        }
        assert_eq!(sim.run_steps(4), 4);
        assert_eq!(sim.world().fired.len(), 4);
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct PastScheduler;
        impl World for PastScheduler {
            type Event = bool;
            fn handle(&mut self, first: bool, sched: &mut Scheduler<bool>) {
                if first {
                    // Try to schedule before "now"; must clamp, not panic.
                    sched.schedule_at(SimTime::ZERO, false);
                }
            }
        }
        let mut sim = Simulation::new(PastScheduler);
        sim.schedule(100, true);
        assert_eq!(sim.run(), 2);
        assert_eq!(sim.now(), SimTime::from_micros(100));
    }

    #[test]
    fn pending_counts_queue() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(1, 1);
        sim.schedule(2, 2);
        assert_eq!(sim.sched.pending(), 2);
        assert_eq!(sim.pending(), 2);
    }

    #[test]
    fn with_capacity_presizes_without_behavior_change() {
        let mut plain = Simulation::new(Recorder { fired: vec![] });
        let mut sized = Simulation::with_capacity(Recorder { fired: vec![] }, 64);
        sized.reserve_events(64);
        for i in 0..50 {
            plain.schedule(100 - i as u64, i);
            sized.schedule(100 - i as u64, i);
        }
        plain.run();
        sized.run();
        assert_eq!(plain.world().fired, sized.world().fired);
    }

    #[test]
    fn run_until_pushback_preserves_fifo_order() {
        // Two events at the same instant beyond the deadline: the popped-
        // then-reinserted head must still fire before its sibling.
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(5, 0);
        sim.schedule(10, 1);
        sim.schedule(10, 2);
        assert_eq!(sim.run_until(SimTime::from_micros(5)), 1);
        assert_eq!(sim.pending(), 2);
        sim.run();
        let order: Vec<u32> = sim.world().fired.iter().map(|&(e, _)| e).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn scheduled_stays_compact() {
        // The hot-loop entry must remain two comparison words plus payload.
        assert_eq!(std::mem::size_of::<Scheduled<()>>(), 16);
        assert!(std::mem::size_of::<Scheduled<u64>>() <= 24);
    }

    #[test]
    fn into_world_returns_state() {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        sim.schedule(1, 7);
        sim.run();
        let world = sim.into_world();
        assert_eq!(world.fired.len(), 1);
    }
}
