//! The virtual clock.
//!
//! The paper measures response times in **microseconds** (Table 5.3), so the
//! simulation clock is an integer microsecond counter. A `u64` holds over
//! half a million simulated years, far beyond any experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds since the start of
/// the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from a millisecond count.
    ///
    /// # Panics
    ///
    /// Panics on overflow (beyond ~584,000 simulated years).
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from a second count.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// The microsecond count since simulation start.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// The time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of a microsecond delay.
    pub const fn saturating_add(self, micros: u64) -> Self {
        SimTime(self.0.saturating_add(micros))
    }

    /// The later of two times.
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Microseconds from `earlier` to `self`, or zero if `earlier` is later.
    pub const fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    /// Adds a microsecond delay.
    ///
    /// # Panics
    ///
    /// Panics on overflow in debug builds.
    fn add(self, micros: u64) -> SimTime {
        SimTime(self.0 + micros)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, micros: u64) {
        self.0 += micros;
    }
}

impl Sub for SimTime {
    type Output = u64;

    /// Microseconds between two times.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self` in debug builds.
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_micros(2_000_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::ZERO.micros(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        assert_eq!((t + 5).micros(), 15);
        assert_eq!(t + 5 - t, 5);
        let mut u = t;
        u += 7;
        assert_eq!(u.micros(), 17);
        assert_eq!(t.max(u), u);
        assert_eq!(u.saturating_since(t), 7);
        assert_eq!(t.saturating_since(u), 0);
    }

    #[test]
    fn saturating_add_caps() {
        assert_eq!(SimTime::MAX.saturating_add(10), SimTime::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_micros(7).to_string(), "7µs");
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn as_secs_f64_converts() {
        assert!((SimTime::from_micros(2_500_000).as_secs_f64() - 2.5).abs() < 1e-12);
    }
}
