//! Discrete-event simulation kernel.
//!
//! The paper's evaluation runs the workload generator against a real SUN NFS
//! installation (a SUN 3/50 client and a SUN 4/490 file server). A
//! reproduction cannot assume that hardware, so the `uswg` workspace replaces
//! the testbed with a queueing simulation: this crate supplies the kernel —
//! a virtual microsecond clock ([`SimTime`]), an event [`Scheduler`], the
//! [`World`] trait that event handlers implement, and FIFO queueing
//! [`Resource`]s with service statistics. The actual file-system timing
//! models (client CPU, network, server, disk) live in `uswg-netfs`.
//!
//! # Example
//!
//! A tiny world that schedules one event and counts it:
//!
//! ```
//! use uswg_sim::{Scheduler, SimTime, Simulation, World};
//!
//! struct Counter(u64);
//! impl World for Counter {
//!     type Event = ();
//!     fn handle(&mut self, _: (), _sched: &mut Scheduler<()>) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter(0));
//! sim.schedule(5, ());
//! sim.run();
//! assert_eq!(sim.world().0, 1);
//! assert_eq!(sim.now(), SimTime::from_micros(5));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calendar;
mod resource;
mod scheduler;
mod time;

pub use resource::{Resource, ResourceId, ResourcePool, ResourceStats, ServiceOutcome};
pub use scheduler::{Scheduler, SchedulerBackend, Simulation, World};
pub use time::SimTime;
